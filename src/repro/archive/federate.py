"""Federated read layer: one query surface over N archive sources.

A shard set (``repro.archive.shard``) splits the write path across
independent :class:`~repro.archive.store.StampedeArchive` files, each
with its own surrogate-key sequences.  Readers must not care:
:class:`FederatedArchive` exposes the same ``query``/``count`` surface
as a single archive, fanning every query out to all sources and merging
the results, so :class:`repro.query.api.StampedeQuery`,
``workflow_statistics``, the dashboard, and ``canonical_dump`` work
unchanged on a shard set.

The one thing that cannot federate as-is are the surrogate ids: shard 0
and shard 1 both hand out ``wf_id=1``.  Federated results therefore
remap every id column into a global namespace::

    global_id = local_id * n_sources + source_index

which is bijective (``divmod(global_id, n_sources)`` recovers the local
id and the source), stable for a fixed source list, and — because every
id column of every entity is remapped with the same rule — keeps foreign
keys consistent across the federated result set.  Queries *against* id
columns are translated back: an ``=``/``in``/``!=`` condition on an id
column is decoded and routed to the source that owns it.  Range
comparisons on id columns are refused loudly — global ids interleave
sources, so ``wf_id > x`` has no meaningful federated reading.

The federation is strictly read-only; every write entry point raises
:class:`FederationError`.
"""
from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Type, TypeVar

from repro.archive.store import StampedeArchive, _to_row
from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobEdgeRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    ObsEventRow,
    RollupHostBucketRow,
    RollupHostRow,
    RollupMetaRow,
    RollupTypeRow,
    RollupWorkflowRow,
    TaskEdgeRow,
    TaskRow,
    WorkflowRow,
    WorkflowStateRow,
)
from repro.orm.query import _sort_key

__all__ = ["FederatedArchive", "FederationError"]

T = TypeVar("T")

#: per-entity surrogate-id columns (primary keys and foreign keys alike);
#: every one of these is remapped into the global id namespace
_ID_COLUMNS: Dict[type, Tuple[str, ...]] = {
    WorkflowRow: ("wf_id", "parent_wf_id", "root_wf_id"),
    WorkflowStateRow: ("wf_id",),
    TaskRow: ("task_id", "wf_id", "job_id"),
    TaskEdgeRow: ("wf_id",),
    JobRow: ("job_id", "wf_id"),
    JobEdgeRow: ("wf_id",),
    JobInstanceRow: ("job_instance_id", "job_id", "host_id", "subwf_id"),
    JobStateRow: ("job_instance_id",),
    InvocationRow: ("invocation_id", "job_instance_id", "wf_id"),
    HostRow: ("host_id", "wf_id"),
    ObsEventRow: ("obs_id",),
    RollupWorkflowRow: ("wf_id", "parent_wf_id", "root_wf_id"),
    RollupTypeRow: ("wf_id",),
    RollupHostRow: ("wf_id",),
    RollupHostBucketRow: ("wf_id",),
    RollupMetaRow: (),
}


class FederationError(RuntimeError):
    """A query or write the federated layer cannot honor."""


class FederatedArchive:
    """Read-only query surface over an ordered list of archives.

    The source *order* is part of the id-namespace contract: the same
    sources in a different order produce different global ids.  A shard
    set always passes its shards in shard order, so global ids are
    stable across re-opens.
    """

    def __init__(self, sources: Sequence[StampedeArchive]):
        if not sources:
            raise FederationError("a federation needs at least one source")
        self.sources: List[StampedeArchive] = list(sources)

    # -- id namespace -------------------------------------------------------
    @property
    def n_sources(self) -> int:
        return len(self.sources)

    def encode_id(self, local_id: int, source_index: int) -> int:
        return local_id * len(self.sources) + source_index

    def decode_id(self, global_id: int) -> Tuple[int, int]:
        """``global_id -> (local_id, source_index)``."""
        return divmod(global_id, len(self.sources))

    # -- read surface (mirrors StampedeArchive) -----------------------------
    def query(self, entity_type: Type[T]) -> "FederatedEntityQuery[T]":
        return FederatedEntityQuery(self, entity_type)

    def count(self, entity_type: type) -> int:
        return sum(source.count(entity_type) for source in self.sources)

    def close(self) -> None:
        for source in self.sources:
            source.close()

    # -- write surface: refused ---------------------------------------------
    def _read_only(self, op: str) -> FederationError:
        return FederationError(
            f"FederatedArchive is read-only ({op} refused); "
            "write through the owning shard instead"
        )

    def insert(self, entity: Any) -> None:
        raise self._read_only("insert")

    def insert_many(self, entities: Any) -> int:
        raise self._read_only("insert_many")

    def update(self, entity_type: type, values: Any, where: Any) -> int:
        raise self._read_only("update")

    def delete(self, entity_type: type, where: Any) -> int:
        raise self._read_only("delete")

    def next_id(self, table_name: str) -> int:
        raise self._read_only("next_id")

    def transaction(self):
        raise self._read_only("transaction")


class FederatedEntityQuery:
    """EntityQuery-compatible fan-out/merge over federation sources.

    Conditions on id columns are decoded and routed; all other
    conditions replicate to every source verbatim.  Ordering is applied
    globally after the merge (same stable multi-key semantics as the
    ORM's ``Query.apply``), then offset/limit.
    """

    def __init__(self, federation: FederatedArchive, entity_type: Type[T]):
        self._federation = federation
        self._entity_type = entity_type
        self._conds: List[Tuple[str, str, Any]] = []
        self._order: List[Tuple[str, bool]] = []
        self._limit: Optional[int] = None
        self._offset: int = 0

    # -- builder (same fluent surface as EntityQuery) -----------------------
    def where(self, column: str, op: str, value: Any) -> "FederatedEntityQuery[T]":
        id_columns = _ID_COLUMNS[self._entity_type]
        if column in id_columns and op not in ("=", "!=", "in"):
            raise FederationError(
                f"cannot federate {op!r} on id column {column!r}: global "
                "ids interleave sources, so range comparisons have no "
                "meaningful shard-set reading"
            )
        self._conds.append((column, op, value))
        return self

    def eq(self, column: str, value: Any) -> "FederatedEntityQuery[T]":
        return self.where(column, "=", value)

    def order_by(
        self, column: str, descending: bool = False
    ) -> "FederatedEntityQuery[T]":
        self._order.append((column, descending))
        return self

    def limit(self, count: int, offset: int = 0) -> "FederatedEntityQuery[T]":
        self._limit = count
        self._offset = offset
        return self

    def copy(self) -> "FederatedEntityQuery[T]":
        clone = FederatedEntityQuery(self._federation, self._entity_type)
        clone._conds = list(self._conds)
        clone._order = list(self._order)
        clone._limit = self._limit
        clone._offset = self._offset
        return clone

    # -- condition routing --------------------------------------------------
    def _source_query(self, source_index: int):
        """Translate this query's conditions for one source.

        Returns the source's EntityQuery, or None when a routed id
        condition proves no row in this source can match.
        """
        fed = self._federation
        n = fed.n_sources
        id_columns = _ID_COLUMNS[self._entity_type]
        query = fed.sources[source_index].query(self._entity_type)
        for column, op, value in self._conds:
            if column not in id_columns or value is None:
                query.where(column, op, value)
                continue
            if op == "=":
                local, idx = divmod(value, n)
                if idx != source_index:
                    return None
                query.eq(column, local)
            elif op == "in":
                locals_here = [
                    lv for lv, idx in (divmod(v, n) for v in value)
                    if idx == source_index
                ]
                if not locals_here:
                    return None
                query.where(column, "in", locals_here)
            else:  # "!=": only the owning source needs the exclusion
                local, idx = divmod(value, n)
                if idx == source_index:
                    query.where(column, "!=", local)
        return query

    def _remap(self, entity: T, source_index: int) -> T:
        fed = self._federation
        row = _to_row(entity)
        for column in _ID_COLUMNS[self._entity_type]:
            value = row.get(column)
            if value is not None:
                row[column] = fed.encode_id(value, source_index)
        return self._entity_type(**row)

    # -- execution ----------------------------------------------------------
    def all(self) -> List[T]:
        fed = self._federation
        merged: List[T] = []
        for index in range(fed.n_sources):
            query = self._source_query(index)
            if query is None:
                continue
            if self._limit is not None and not self._order:
                # unordered + limited: each source needs at most the
                # first offset+limit matches in its own insertion order
                query.limit(self._limit + self._offset)
            merged.extend(self._remap(e, index) for e in query.all())
        if self._order:
            # same stable multi-key semantics as orm.Query.apply, on the
            # *remapped* values so id ordering is globally consistent
            for column, descending in reversed(self._order):
                merged.sort(
                    key=lambda e: _sort_key(getattr(e, column, None)),
                    reverse=descending,
                )
        if self._offset or self._limit is not None:
            end = None if self._limit is None else self._offset + self._limit
            merged = merged[self._offset:end]
        return merged

    def first(self) -> Optional[T]:
        results = self.copy().limit(1).all()
        return results[0] if results else None

    def count(self) -> int:
        if self._limit is not None or self._offset:
            return len(self.all())
        total = 0
        for index in range(self._federation.n_sources):
            query = self._source_query(index)
            if query is not None:
                total += query.count()
        return total
