"""StampedeArchive: typed access to the relational archive.

Wraps a :class:`~repro.orm.Database` with the Fig. 3 tables, surrogate-key
sequences, and entity-typed insert/fetch helpers.  The loader performs the
event-to-row normalization; the query interface reads through this class.
"""
from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import fields
from typing import Any, Dict, Iterable, List, Optional, Type, TypeVar

from repro.archive import ddl
from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobEdgeRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    ObsEventRow,
    RollupHostBucketRow,
    RollupHostRow,
    RollupMetaRow,
    RollupTypeRow,
    RollupWorkflowRow,
    TaskEdgeRow,
    TaskRow,
    WorkflowRow,
    WorkflowStateRow,
)
from repro.orm import Database, Query, Table, connect

__all__ = ["StampedeArchive"]

T = TypeVar("T")

_ENTITY_TABLE = {
    WorkflowRow: ddl.WORKFLOW,
    WorkflowStateRow: ddl.WORKFLOWSTATE,
    TaskRow: ddl.TASK,
    TaskEdgeRow: ddl.TASK_EDGE,
    JobRow: ddl.JOB,
    JobEdgeRow: ddl.JOB_EDGE,
    JobInstanceRow: ddl.JOB_INSTANCE,
    JobStateRow: ddl.JOBSTATE,
    InvocationRow: ddl.INVOCATION,
    HostRow: ddl.HOST,
    ObsEventRow: ddl.OBS_EVENT,
    RollupWorkflowRow: ddl.ROLLUP_WORKFLOW,
    RollupTypeRow: ddl.ROLLUP_TYPE,
    RollupHostRow: ddl.ROLLUP_HOST,
    RollupHostBucketRow: ddl.ROLLUP_HOST_BUCKET,
    RollupMetaRow: ddl.ROLLUP_META,
}


class StampedeArchive:
    """The relational archive: one Database plus schema + sequences."""

    def __init__(self, database: Optional[Database] = None):
        self.db = database if database is not None else connect("sqlite:///:memory:")
        self.db.create_tables(ddl.ALL_TABLES)
        self._sequences: Dict[str, itertools.count] = {}
        self._seq_lock = threading.Lock()
        # self-monitoring hooks (repro.obs); None keeps the write path
        # free of any instrumentation cost
        self._txn_seconds = None
        self._txn_total = None
        self._rows_inserted = None

    def instrument(self, registry) -> "StampedeArchive":
        """Attach a :class:`repro.obs.metrics.MetricsRegistry`.

        Explicit archive transactions are timed into
        ``stampede_archive_transaction_seconds`` and batch inserts
        counted into ``stampede_archive_rows_inserted_total``.
        """
        self._txn_seconds = registry.histogram(
            "stampede_archive_transaction_seconds",
            "Duration of archive write transactions.",
        )
        self._txn_total = registry.counter(
            "stampede_archive_transactions_total",
            "Committed archive write transactions.",
        )
        self._rows_inserted = registry.counter(
            "stampede_archive_rows_inserted_total",
            "Rows written through archive batch inserts.",
        )
        return self

    @classmethod
    def open(cls, conn_string: str) -> "StampedeArchive":
        """Open from a SQLAlchemy-style connection string."""
        return cls(connect(conn_string))

    # -- key generation -----------------------------------------------------
    def next_id(self, table_name: str) -> int:
        """Allocate the next surrogate key for a table.

        Sequences seed from ``MAX(id) + 1``, not row count: with deleted
        rows or two archives reopening the same file the ids are
        non-contiguous and a count-based seed would reissue live keys.
        """
        with self._seq_lock:
            seq = self._sequences.get(table_name)
            if seq is None:
                table = ddl.TABLES[table_name]
                if table.primary_key is not None:
                    current = self.db.max_value(table, table.primary_key.name)
                    start = int(current or 0) + 1
                else:
                    start = self.db.count(table) + 1
                seq = self._sequences[table_name] = itertools.count(start)
            return next(seq)

    # -- generic entity I/O ----------------------------------------------------
    def insert(self, entity: Any) -> None:
        table = _table_for(type(entity))
        self.db.insert(table, _to_row(entity))

    def insert_many(self, entities: Iterable[Any]) -> int:
        """Batch-insert homogeneous entities (one executemany per type)."""
        by_type: Dict[type, List[Dict[str, Any]]] = {}
        for entity in entities:
            by_type.setdefault(type(entity), []).append(_to_row(entity))
        total = 0
        with self.db.transaction():
            for etype, rows in by_type.items():
                total += self.db.insert_many(_table_for(etype), rows)
        if self._rows_inserted is not None:
            self._rows_inserted.inc(total)
        return total

    def transaction(self):
        """Scope archive writes into one atomic backend transaction.

        With an instrumented archive the scope's duration is observed
        into the transaction histogram (successful commits only — a
        rolled-back scope raises through and is not counted).
        """
        if self._txn_seconds is None:
            return self.db.transaction()
        return self._timed_transaction()

    @contextmanager
    def _timed_transaction(self):
        start = time.perf_counter()
        with self.db.transaction():
            yield self.db
        self._txn_seconds.observe(time.perf_counter() - start)
        self._txn_total.inc()

    def query(self, entity_type: Type[T]) -> "EntityQuery[T]":
        return EntityQuery(self, entity_type)

    def count(self, entity_type: type) -> int:
        return self.db.count(_table_for(entity_type))

    def update(
        self, entity_type: type, values: Dict[str, Any], where: Dict[str, Any]
    ) -> int:
        return self.db.update(_table_for(entity_type), values, where)

    def delete(self, entity_type: type, where: Dict[str, Any]) -> int:
        """Delete rows matching ``where``; list values mean SQL ``IN``."""
        return self.db.delete(_table_for(entity_type), where)

    def close(self) -> None:
        self.db.close()


class EntityQuery:
    """Fluent query that materializes entity dataclasses."""

    def __init__(self, archive: StampedeArchive, entity_type: Type[T]):
        self._archive = archive
        self._entity_type = entity_type
        self._query = Query(_table_for(entity_type))

    def where(self, column: str, op: str, value: Any) -> "EntityQuery[T]":
        self._query.where(column, op, value)
        return self

    def eq(self, column: str, value: Any) -> "EntityQuery[T]":
        self._query.eq(column, value)
        return self

    def order_by(self, column: str, descending: bool = False) -> "EntityQuery[T]":
        self._query.order_by(column, descending)
        return self

    def limit(self, count: int, offset: int = 0) -> "EntityQuery[T]":
        self._query.limit(count, offset)
        return self

    def copy(self) -> "EntityQuery[T]":
        clone = EntityQuery(self._archive, self._entity_type)
        clone._query = self._query.copy()
        return clone

    def all(self) -> List[T]:
        rows = self._archive.db.select(self._query)
        return [self._entity_type(**row) for row in rows]

    def first(self) -> Optional[T]:
        # Work on a clone: first() must not mutate this query's limit,
        # or a later .all() on the same object would return one row.
        results = self.copy().limit(1).all()
        return results[0] if results else None

    def count(self) -> int:
        if self._query.limit_count is not None or self._query.offset_count:
            return len(self.all())  # limit/offset semantics need the rows
        return self._archive.db.count_where(self._query)


def _table_for(entity_type: type) -> Table:
    try:
        return _ENTITY_TABLE[entity_type]
    except KeyError:
        raise TypeError(f"not an archive entity type: {entity_type!r}") from None


#: per-entity-type field-name tuples; dataclasses.fields() resolves the
#: class metadata on every call, which dominates the row-building cost
#: at ingest rates — resolve once per type instead.
_FIELD_NAMES: Dict[type, tuple] = {}


def _to_row(entity: Any) -> Dict[str, Any]:
    etype = type(entity)
    names = _FIELD_NAMES.get(etype)
    if names is None:
        names = _FIELD_NAMES[etype] = tuple(f.name for f in fields(etype))
    return {name: getattr(entity, name) for name in names}
