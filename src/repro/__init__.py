"""repro — reproduction of "A General Approach to Real-Time Workflow Monitoring".

The package implements the Stampede monitoring infrastructure (SC 2012):

* :mod:`repro.netlogger` — NetLogger Best Practices log format;
* :mod:`repro.schema` — YANG-modelled event schema + validator;
* :mod:`repro.bus` — AMQP-style topic message bus;
* :mod:`repro.orm` / :mod:`repro.archive` — relational archive (Fig. 3 schema);
* :mod:`repro.loader` — nl_load / stampede_loader;
* :mod:`repro.query` — standard query interface;
* :mod:`repro.core` — stampede_statistics, stampede_analyzer, anomaly
  detection, dashboard;
* :mod:`repro.pegasus` / :mod:`repro.triana` — the two workflow-engine
  substrates the paper integrates;
* :mod:`repro.dart` — the DART music-information-retrieval experiment;
* :mod:`repro.workloads` — synthetic workflow generators.
"""

__version__ = "1.0.0"
