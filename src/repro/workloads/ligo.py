"""LIGO Inspiral-shaped workflows: the gravitational-wave search pipeline
(Triana's home domain, per the paper's §III-A history).

Shape: per analysis block, template-bank generation fans into many
matched-filter inspiral tasks, thinned by a coincidence stage, then a
second inspiral pass and a final trigger aggregation.
"""
from __future__ import annotations

from repro.pegasus.abstract import AbstractTask, AbstractWorkflow

__all__ = ["ligo_inspiral"]


def ligo_inspiral(
    n_blocks: int = 3,
    templates_per_block: int = 6,
    label: str = "ligo-inspiral",
) -> AbstractWorkflow:
    """One inspiral search.

    Task count = n_blocks * (1 + 2*templates_per_block + 1) + 1.
    """
    if n_blocks < 1 or templates_per_block < 1:
        raise ValueError("need at least one block and one template")
    aw = AbstractWorkflow(label)
    aw.add_task(
        AbstractTask("thinca_final", transformation="Thinca",
                     runtime_estimate=20.0)
    )
    for block in range(n_blocks):
        bank = f"tmpltbank_b{block}"
        aw.add_task(
            AbstractTask(bank, transformation="TmpltBank",
                         runtime_estimate=60.0, argv=f"--block {block}")
        )
        coinc = f"thinca_b{block}"
        aw.add_task(
            AbstractTask(coinc, transformation="Thinca", runtime_estimate=10.0)
        )
        for t in range(templates_per_block):
            first = f"inspiral1_b{block}_t{t}"
            second = f"inspiral2_b{block}_t{t}"
            aw.add_task(
                AbstractTask(first, transformation="Inspiral",
                             runtime_estimate=120.0)
            )
            aw.add_task(
                AbstractTask(second, transformation="Inspiral",
                             runtime_estimate=90.0)
            )
            aw.add_dependency(bank, first)
            aw.add_dependency(first, coinc)
            aw.add_dependency(coinc, second)
            aw.add_dependency(second, "thinca_final")
    return aw
