"""CyberShake-shaped workflows (paper refs [13], [28]).

CyberShake is the paper's canonical "large complex workflow": per site of
interest, two huge Strain Green Tensor (SGT) computations fan out into
tens of thousands of seismogram-synthesis tasks, each followed by a peak
ground acceleration extraction, aggregated by a final hazard-curve task.
This generator reproduces that shape at configurable scale (the real runs
hit O(10^6) tasks; the loader-scaling bench sweeps n_ruptures).
"""
from __future__ import annotations

from repro.pegasus.abstract import AbstractTask, AbstractWorkflow

__all__ = ["cybershake"]


def cybershake(
    n_ruptures: int = 100,
    variations_per_rupture: int = 2,
    label: str = "cybershake",
    sgt_runtime: float = 600.0,
    synth_runtime: float = 30.0,
    peak_runtime: float = 2.0,
) -> AbstractWorkflow:
    """One CyberShake site workflow.

    Task count = 2 (SGT) + 2 * n_ruptures * variations_per_rupture + 1.
    """
    if n_ruptures < 1 or variations_per_rupture < 1:
        raise ValueError("need at least one rupture and one variation")
    aw = AbstractWorkflow(label)
    for comp in ("x", "y"):
        aw.add_task(
            AbstractTask(
                f"sgt_{comp}",
                transformation="PreSGT" if comp == "x" else "PostSGT",
                runtime_estimate=sgt_runtime,
                argv=f"--component {comp}",
            )
        )
    aw.add_task(
        AbstractTask(
            "hazard_curve",
            transformation="HazardCurve",
            runtime_estimate=20.0,
        )
    )
    for r in range(n_ruptures):
        for v in range(variations_per_rupture):
            synth = f"synth_r{r:05d}_v{v}"
            peak = f"peak_r{r:05d}_v{v}"
            aw.add_task(
                AbstractTask(
                    synth,
                    transformation="SeismogramSynthesis",
                    runtime_estimate=synth_runtime,
                    argv=f"--rupture {r} --variation {v}",
                )
            )
            aw.add_task(
                AbstractTask(
                    peak,
                    transformation="PeakValCalc",
                    runtime_estimate=peak_runtime,
                )
            )
            aw.add_dependency("sgt_x", synth)
            aw.add_dependency("sgt_y", synth)
            aw.add_dependency(synth, peak)
            aw.add_dependency(peak, "hazard_curve")
    return aw
