"""Synthetic abstract-workflow generators.

Shapes used across tests and benchmarks: chains, diamonds, fan-out/fan-in,
and seeded random layered DAGs.  All return
:class:`~repro.pegasus.abstract.AbstractWorkflow` objects that either
engine (after conversion) can execute.
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from repro.pegasus.abstract import AbstractTask, AbstractWorkflow

__all__ = ["chain", "diamond", "fan", "random_layered_dag"]


def chain(length: int, runtime: float = 10.0, label: str = "chain") -> AbstractWorkflow:
    """t0 -> t1 -> ... -> t(n-1)."""
    if length < 1:
        raise ValueError("length must be >= 1")
    aw = AbstractWorkflow(label)
    for i in range(length):
        aw.add_task(
            AbstractTask(f"t{i}", transformation="step",
                         runtime_estimate=runtime, argv=f"--stage {i}")
        )
    for i in range(length - 1):
        aw.add_dependency(f"t{i}", f"t{i+1}")
    return aw


def diamond(runtime: float = 10.0, label: str = "diamond") -> AbstractWorkflow:
    """The canonical 4-task diamond: a -> (b, c) -> d."""
    aw = AbstractWorkflow(label)
    for name, tr in (("a", "preprocess"), ("b", "analyze"),
                     ("c", "analyze"), ("d", "combine")):
        aw.add_task(AbstractTask(name, transformation=tr, runtime_estimate=runtime))
    aw.add_dependency("a", "b")
    aw.add_dependency("a", "c")
    aw.add_dependency("b", "d")
    aw.add_dependency("c", "d")
    return aw


def fan(width: int, runtime: float = 10.0, label: str = "fan") -> AbstractWorkflow:
    """split -> width parallel workers -> join (a map-reduce shape)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    aw = AbstractWorkflow(label)
    aw.add_task(AbstractTask("split", transformation="split", runtime_estimate=2.0))
    aw.add_task(AbstractTask("join", transformation="join", runtime_estimate=2.0))
    for i in range(width):
        aw.add_task(
            AbstractTask(f"work{i}", transformation="work",
                         runtime_estimate=runtime, argv=f"--part {i}")
        )
        aw.add_dependency("split", f"work{i}")
        aw.add_dependency(f"work{i}", "join")
    return aw


def random_layered_dag(
    n_tasks: int,
    n_layers: int = 5,
    edge_density: float = 0.3,
    mean_runtime: float = 20.0,
    seed: int = 0,
    label: str = "random",
    n_transformations: int = 4,
) -> AbstractWorkflow:
    """Seeded random DAG: tasks spread over layers, edges only forward.

    Every non-first-layer task gets at least one parent so the graph is
    connected top-down; extra edges appear with ``edge_density``.
    """
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    if n_layers < 1:
        raise ValueError("n_layers must be >= 1")
    n_layers = min(n_layers, n_tasks)
    rng = np.random.Generator(np.random.PCG64(seed))
    aw = AbstractWorkflow(label)
    layers: list = [[] for _ in range(n_layers)]
    for i in range(n_tasks):
        layer = i % n_layers if i < n_layers else int(rng.integers(0, n_layers))
        tid = f"t{i:05d}"
        layers[layer].append(tid)
        aw.add_task(
            AbstractTask(
                tid,
                transformation=f"tr{int(rng.integers(0, n_transformations))}",
                runtime_estimate=float(
                    max(0.5, rng.gamma(4.0, mean_runtime / 4.0))
                ),
            )
        )
    for li in range(1, n_layers):
        prev = layers[li - 1]
        if not prev:
            continue
        for child in layers[li]:
            parent = prev[int(rng.integers(0, len(prev)))]
            aw.add_dependency(parent, child)
            for candidate in prev:
                if candidate != parent and rng.random() < edge_density / len(prev):
                    aw.add_dependency(candidate, child)
    return aw
