"""Synthetic workflow generators: generic shapes, CyberShake, Montage,
Epigenomics, LIGO Inspiral."""
from repro.workloads.cybershake import cybershake
from repro.workloads.epigenomics import epigenomics
from repro.workloads.generators import chain, diamond, fan, random_layered_dag
from repro.workloads.ligo import ligo_inspiral
from repro.workloads.montage import montage

__all__ = [
    "cybershake",
    "epigenomics",
    "chain",
    "diamond",
    "fan",
    "random_layered_dag",
    "ligo_inspiral",
    "montage",
]
