"""Montage-shaped workflows (paper ref [27]).

Montage builds astronomical image mosaics: reproject each input image,
compute pairwise overlap differences, fit a background model, correct
every image, and assemble the mosaic.  The shape is the standard workflow
benchmark alongside CyberShake; the level structure exercises clustering
(many small mProjectPP/mDiffFit tasks at one level).
"""
from __future__ import annotations

from repro.pegasus.abstract import AbstractTask, AbstractWorkflow

__all__ = ["montage"]


def montage(
    n_images: int = 20,
    overlap_fraction: float = 0.5,
    label: str = "montage",
) -> AbstractWorkflow:
    """One Montage mosaic workflow over ``n_images`` input images.

    Overlap pairs are consecutive images (ring topology thinned by
    ``overlap_fraction``) — enough to preserve the level structure without
    quadratic blowup.
    """
    if n_images < 2:
        raise ValueError("montage needs at least 2 images")
    aw = AbstractWorkflow(label)
    projects = []
    for i in range(n_images):
        tid = f"mProjectPP_{i:04d}"
        projects.append(tid)
        aw.add_task(
            AbstractTask(tid, transformation="mProjectPP",
                         runtime_estimate=12.0, argv=f"--image {i}")
        )
    # overlap differences between neighbouring projections
    diffs = []
    n_pairs = max(1, int((n_images - 1) * overlap_fraction))
    for k in range(n_pairs):
        i, j = k, k + 1
        tid = f"mDiffFit_{i:04d}_{j:04d}"
        diffs.append(tid)
        aw.add_task(
            AbstractTask(tid, transformation="mDiffFit", runtime_estimate=4.0)
        )
        aw.add_dependency(projects[i], tid)
        aw.add_dependency(projects[j], tid)
    aw.add_task(
        AbstractTask("mConcatFit", transformation="mConcatFit",
                     runtime_estimate=8.0)
    )
    for d in diffs:
        aw.add_dependency(d, "mConcatFit")
    aw.add_task(
        AbstractTask("mBgModel", transformation="mBgModel", runtime_estimate=10.0)
    )
    aw.add_dependency("mConcatFit", "mBgModel")
    backgrounds = []
    for i in range(n_images):
        tid = f"mBackground_{i:04d}"
        backgrounds.append(tid)
        aw.add_task(
            AbstractTask(tid, transformation="mBackground", runtime_estimate=3.0)
        )
        aw.add_dependency(projects[i], tid)
        aw.add_dependency("mBgModel", tid)
    aw.add_task(
        AbstractTask("mImgtbl", transformation="mImgtbl", runtime_estimate=4.0)
    )
    for b in backgrounds:
        aw.add_dependency(b, "mImgtbl")
    aw.add_task(AbstractTask("mAdd", transformation="mAdd", runtime_estimate=30.0))
    aw.add_dependency("mImgtbl", "mAdd")
    aw.add_task(
        AbstractTask("mShrink", transformation="mShrink", runtime_estimate=5.0)
    )
    aw.add_dependency("mAdd", "mShrink")
    aw.add_task(AbstractTask("mJPEG", transformation="mJPEG", runtime_estimate=2.0))
    aw.add_dependency("mShrink", "mJPEG")
    return aw
