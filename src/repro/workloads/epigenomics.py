"""Epigenomics-shaped workflows (the classic Pegasus workflow-gallery
pipeline): parallel lanes of chained sequence-processing steps that merge
into a genome-wide aggregation."""
from __future__ import annotations

from repro.pegasus.abstract import AbstractTask, AbstractWorkflow

__all__ = ["epigenomics"]

_LANE_STEPS = [
    ("fastqSplit", 5.0),
    ("filterContams", 12.0),
    ("sol2sanger", 8.0),
    ("fastq2bfq", 6.0),
    ("map", 80.0),
]


def epigenomics(
    n_lanes: int = 4,
    splits_per_lane: int = 4,
    label: str = "epigenomics",
) -> AbstractWorkflow:
    """One Epigenomics run: lanes × splits chains, merged per lane, then
    globally, ending in the index/qc tail.

    Task count = n_lanes * (splits_per_lane * 5 + 1) + 3.
    """
    if n_lanes < 1 or splits_per_lane < 1:
        raise ValueError("need at least one lane and one split")
    aw = AbstractWorkflow(label)
    lane_merges = []
    for lane in range(n_lanes):
        merge_id = f"mapMerge_l{lane}"
        aw.add_task(
            AbstractTask(merge_id, transformation="mapMerge",
                         runtime_estimate=15.0)
        )
        lane_merges.append(merge_id)
        for split in range(splits_per_lane):
            prev = None
            for step_name, runtime in _LANE_STEPS:
                tid = f"{step_name}_l{lane}_s{split}"
                aw.add_task(
                    AbstractTask(
                        tid,
                        transformation=step_name,
                        runtime_estimate=runtime,
                        argv=f"--lane {lane} --split {split}",
                    )
                )
                if prev is not None:
                    aw.add_dependency(prev, tid)
                prev = tid
            aw.add_dependency(prev, merge_id)
    aw.add_task(
        AbstractTask("mapMergeGlobal", transformation="mapMerge",
                     runtime_estimate=25.0)
    )
    for merge in lane_merges:
        aw.add_dependency(merge, "mapMergeGlobal")
    aw.add_task(
        AbstractTask("maqIndex", transformation="maqIndex",
                     runtime_estimate=40.0)
    )
    aw.add_dependency("mapMergeGlobal", "maqIndex")
    aw.add_task(
        AbstractTask("pileup", transformation="pileup", runtime_estimate=50.0)
    )
    aw.add_dependency("maqIndex", "pileup")
    return aw
