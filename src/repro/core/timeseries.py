"""Time-series views of workflow progress (paper Fig. 7).

``bundle_progress`` reconstructs the paper's "progress to completion"
figure: for each sub-workflow bundle, the cumulative runtime of its
completed invocations as a function of wall-clock time.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.query.api import StampedeQuery

__all__ = ["ProgressSeries", "GanttRow", "bundle_progress", "gantt",
           "throughput_series"]


@dataclass
class ProgressSeries:
    """One line of Fig. 7: cumulative completed runtime over wall clock."""

    label: str
    wf_id: int
    # (wall-clock offset from origin, cumulative runtime) step points
    points: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def final_cumulative_runtime(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    @property
    def completion_time(self) -> float:
        return self.points[-1][0] if self.points else 0.0

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Cumulative runtime at each requested wall-clock offset."""
        if not self.points:
            return np.zeros_like(times, dtype=float)
        xs = np.array([p[0] for p in self.points])
        ys = np.array([p[1] for p in self.points])
        idx = np.searchsorted(xs, times, side="right") - 1
        out = np.where(idx >= 0, ys[np.clip(idx, 0, len(ys) - 1)], 0.0)
        return out.astype(float)


def bundle_progress(
    query: StampedeQuery,
    root_wf_id: int,
    origin: Optional[float] = None,
) -> List[ProgressSeries]:
    """Fig. 7 data: one ProgressSeries per sub-workflow of the root.

    Each invocation completion adds its remote duration to its bundle's
    running total at the wall-clock instant it finished.
    """
    subs = query.sub_workflows(root_wf_id)
    if origin is None:
        states = query.workflow_states(root_wf_id)
        origin = states[0].timestamp if states else 0.0
    series: List[ProgressSeries] = []
    for index, sub in enumerate(subs):
        completions: List[Tuple[float, float]] = []
        for inv in query.invocations(sub.wf_id):
            finish = inv.start_time + inv.remote_duration
            completions.append((finish - origin, inv.remote_duration))
        completions.sort()
        cumulative = 0.0
        points: List[Tuple[float, float]] = []
        for offset, duration in completions:
            cumulative += duration
            points.append((offset, cumulative))
        series.append(
            ProgressSeries(
                label=sub.dag_file_name or f"bundle-{index}",
                wf_id=sub.wf_id,
                points=points,
            )
        )
    return series


@dataclass
class GanttRow:
    """One job instance's execution span, for Gantt-style host views."""

    exec_job_id: str
    try_number: int
    hostname: str
    submit: Optional[float]  # offsets from the workflow start
    start: Optional[float]
    end: Optional[float]

    @property
    def queue_span(self) -> Optional[Tuple[float, float]]:
        if self.submit is None or self.start is None:
            return None
        return (self.submit, self.start)

    @property
    def run_span(self) -> Optional[Tuple[float, float]]:
        if self.start is None or self.end is None:
            return None
        return (self.start, self.end)


def gantt(
    query: StampedeQuery, wf_id: int, origin: Optional[float] = None
) -> List[GanttRow]:
    """Per-job-instance execution spans (submit/start/end), host-labelled.

    The data behind a host-utilization Gantt chart; offsets are relative
    to the workflow's first recorded state (or ``origin``).
    """
    if origin is None:
        states = query.workflow_states(wf_id)
        origin = states[0].timestamp if states else 0.0
    hosts = {h.host_id: h.hostname for h in query.hosts(wf_id)}
    jobs = {j.job_id: j.exec_job_id for j in query.jobs(wf_id)}
    rows: List[GanttRow] = []
    for inst in query.job_instances(wf_id):
        if inst.job_id not in jobs:
            continue
        times = {
            s.state: s.timestamp
            for s in query.job_states(inst.job_instance_id)
        }
        submit = times.get("SUBMIT")
        start = times.get("EXECUTE")
        end = times.get("JOB_SUCCESS", times.get("JOB_FAILURE"))
        rows.append(
            GanttRow(
                exec_job_id=jobs[inst.job_id],
                try_number=inst.job_submit_seq,
                hostname=hosts.get(inst.host_id, "unknown"),
                submit=None if submit is None else submit - origin,
                start=None if start is None else start - origin,
                end=None if end is None else end - origin,
            )
        )
    rows.sort(key=lambda r: (r.start if r.start is not None else float("inf"),
                             r.exec_job_id))
    return rows


def throughput_series(
    query: StampedeQuery,
    wf_id: int,
    bin_seconds: float = 30.0,
    include_descendants: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Invocation completions per time bin — the run's throughput curve."""
    wf_ids = [wf_id] + (
        [w.wf_id for w in query.descendant_workflows(wf_id)]
        if include_descendants
        else []
    )
    finishes: List[float] = []
    for current in wf_ids:
        for inv in query.invocations(current):
            finishes.append(inv.start_time + inv.remote_duration)
    if not finishes:
        return np.array([]), np.array([])
    arr = np.array(finishes)
    origin = arr.min()
    bins = ((arr - origin) // bin_seconds).astype(int)
    n_bins = int(bins.max()) + 1
    counts = np.bincount(bins, minlength=n_bins)
    times = origin + np.arange(n_bins) * bin_seconds
    return times, counts
