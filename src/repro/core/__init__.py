"""Stampede analysis tools: statistics, analyzer, time series, anomaly
detection, failure/runtime prediction, and the embedded dashboard."""
from repro.core.analyzer import (
    FailedJobReport,
    WorkflowAnalysis,
    analyze,
    render_analysis,
)
from repro.core.anomaly import (
    Anomaly,
    EwmaDetector,
    RobustRuntimeDetector,
    detector_from_events,
    scan_archive,
)
from repro.core.corpus import (
    CorpusReport,
    SiteProfile,
    TransformationProfile,
    build_corpus_report,
    predict_workflow_runtime,
)
from repro.core.dashboard import Dashboard, DashboardData
from repro.core.prediction import (
    FailureSignals,
    RuntimeEstimate,
    estimate_remaining_runtime,
    failure_score,
    failure_signals,
)
from repro.core.reports import (
    render_all,
    render_breakdown,
    render_hosts,
    render_jobs,
    render_jobs_timing,
    render_summary,
)
from repro.core.statistics import (
    HostUsage,
    TypeBreakdown,
    WorkflowStatistics,
    host_breakdown,
    job_rows,
    job_type_breakdown,
    workflow_statistics,
)
from repro.core.timeseries import (
    GanttRow,
    ProgressSeries,
    bundle_progress,
    gantt,
    throughput_series,
)

__all__ = [
    "FailedJobReport",
    "WorkflowAnalysis",
    "analyze",
    "render_analysis",
    "Anomaly",
    "EwmaDetector",
    "RobustRuntimeDetector",
    "detector_from_events",
    "scan_archive",
    "CorpusReport",
    "SiteProfile",
    "TransformationProfile",
    "build_corpus_report",
    "predict_workflow_runtime",
    "Dashboard",
    "DashboardData",
    "FailureSignals",
    "RuntimeEstimate",
    "estimate_remaining_runtime",
    "failure_score",
    "failure_signals",
    "render_all",
    "render_breakdown",
    "render_hosts",
    "render_jobs",
    "render_jobs_timing",
    "render_summary",
    "HostUsage",
    "TypeBreakdown",
    "WorkflowStatistics",
    "host_breakdown",
    "job_rows",
    "job_type_breakdown",
    "workflow_statistics",
    "GanttRow",
    "ProgressSeries",
    "bundle_progress",
    "gantt",
    "throughput_series",
]
