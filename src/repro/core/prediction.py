"""Workflow-level prediction (paper §IV, §VIII).

Two capabilities the paper attributes to the Stampede analysis layer:

* **Runtime prediction** — estimate remaining wall time of a running
  workflow from per-type mean runtimes and the observed parallelism, the
  "baseline run + extrapolation" provisioning workflow of §VII.
* **Failure prediction** — score the probability that a run will end in
  failure from basic windowed aggregations of high-level statistics
  (failure fraction, retry pressure, stall time), following the
  workflow-level analysis of Samak et al. [37].
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.query.api import StampedeQuery
from repro.schema.stampede import SUCCESS

__all__ = [
    "RuntimeEstimate",
    "FailureSignals",
    "estimate_remaining_runtime",
    "failure_signals",
    "failure_score",
]


@dataclass
class RuntimeEstimate:
    """Remaining-work estimate for a (possibly running) workflow."""

    completed_invocations: int
    pending_tasks: int
    mean_runtime_by_type: Dict[str, float]
    remaining_serial_seconds: float
    observed_parallelism: float
    remaining_wall_seconds: float


@dataclass
class FailureSignals:
    """Windowed aggregations used as failure-prediction features."""

    jobs_seen: int
    failure_fraction: float
    retry_fraction: float
    recent_failure_fraction: float  # over the trailing window
    held_fraction: float


def estimate_remaining_runtime(
    query: StampedeQuery,
    wf_id: int,
    include_descendants: bool = True,
    default_runtime: Optional[float] = None,
) -> RuntimeEstimate:
    """Predict remaining wall time from per-type means and parallelism.

    Unseen task types fall back to ``default_runtime`` (or the global mean
    of observed runtimes when not given).
    """
    wf_ids = [wf_id] + (
        [w.wf_id for w in query.descendant_workflows(wf_id)]
        if include_descendants
        else []
    )
    runtimes_by_type: Dict[str, List[float]] = {}
    completed_tasks = set()
    spans: List[tuple] = []
    n_invocations = 0
    for current in wf_ids:
        for inv in query.invocations(current):
            n_invocations += 1
            runtimes_by_type.setdefault(inv.transformation, []).append(
                inv.remote_duration
            )
            spans.append((inv.start_time, inv.start_time + inv.remote_duration))
            if inv.abs_task_id is not None and inv.exitcode == SUCCESS:
                completed_tasks.add((current, inv.abs_task_id))

    means = {t: float(np.mean(v)) for t, v in runtimes_by_type.items()}
    all_runtimes = [r for v in runtimes_by_type.values() for r in v]
    fallback = (
        default_runtime
        if default_runtime is not None
        else (float(np.mean(all_runtimes)) if all_runtimes else 0.0)
    )

    remaining_serial = 0.0
    pending = 0
    for current in wf_ids:
        for task in query.tasks(current):
            if (current, task.abs_task_id) in completed_tasks:
                continue
            pending += 1
            remaining_serial += means.get(task.transformation, fallback)

    parallelism = _observed_parallelism(spans)
    remaining_wall = remaining_serial / parallelism if parallelism > 0 else remaining_serial
    return RuntimeEstimate(
        completed_invocations=n_invocations,
        pending_tasks=pending,
        mean_runtime_by_type=means,
        remaining_serial_seconds=remaining_serial,
        observed_parallelism=parallelism,
        remaining_wall_seconds=remaining_wall,
    )


def _observed_parallelism(spans: List[tuple]) -> float:
    """Mean number of concurrently running invocations over the busy time."""
    if not spans:
        return 1.0
    total_busy = sum(end - start for start, end in spans)
    wall = max(end for _, end in spans) - min(start for start, _ in spans)
    if wall <= 0:
        return float(len(spans))
    return max(1.0, total_busy / wall)


def failure_signals(
    query: StampedeQuery,
    wf_id: int,
    include_descendants: bool = True,
    window: int = 20,
) -> FailureSignals:
    """Compute the windowed aggregation features over job instances."""
    wf_ids = [wf_id] + (
        [w.wf_id for w in query.descendant_workflows(wf_id)]
        if include_descendants
        else []
    )
    outcomes: List[int] = []  # exitcodes in completion order
    retries = 0
    held = 0
    total_instances = 0
    for current in wf_ids:
        instances = query.job_instances(current)
        by_job: Dict[int, int] = {}
        for inst in instances:
            total_instances += 1
            by_job[inst.job_id] = max(by_job.get(inst.job_id, 0), inst.job_submit_seq)
            if inst.exitcode is not None:
                outcomes.append(inst.exitcode)
            states = [s.state for s in query.job_states(inst.job_instance_id)]
            if "JOB_HELD" in states:
                held += 1
        retries += sum(max(0, seq - 1) for seq in by_job.values())

    jobs_seen = len(outcomes)
    failure_fraction = (
        sum(1 for e in outcomes if e != 0) / jobs_seen if jobs_seen else 0.0
    )
    recent = outcomes[-window:]
    recent_failure_fraction = (
        sum(1 for e in recent if e != 0) / len(recent) if recent else 0.0
    )
    return FailureSignals(
        jobs_seen=jobs_seen,
        failure_fraction=failure_fraction,
        retry_fraction=retries / total_instances if total_instances else 0.0,
        recent_failure_fraction=recent_failure_fraction,
        held_fraction=held / total_instances if total_instances else 0.0,
    )


def failure_score(signals: FailureSignals) -> float:
    """Map the signals to a [0, 1] failure-risk score.

    A fixed logistic combination: recent failures dominate (a burst of
    failures late in the run is the classic precursor), overall failure
    fraction and retry pressure contribute, held jobs add drag.  Weights
    were chosen so an all-success run scores ~0 and a run whose trailing
    window is mostly failures scores > 0.9.
    """
    z = (
        -4.0
        + 6.0 * signals.recent_failure_fraction
        + 4.0 * signals.failure_fraction
        + 3.0 * signals.retry_fraction
        + 2.0 * signals.held_fraction
    )
    return float(1.0 / (1.0 + np.exp(-z)))
