"""stampede_statistics: performance metrics for workflow runs (paper §VII).

Provides the workflow-level and job-level statistics the paper lists:

* workflow wall time;
* workflow cumulative job wall time;
* breakdown of jobs by count and by runtime per job type (breakdown.txt,
  Table II);
* per-job rows with try / site / invocation duration / queue time /
  runtime / exit code / host (jobs.txt, Tables III & IV);
* breakdown of tasks and jobs over time on hosts.

All numbers derive from the archive through the standard query interface.
"""
from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.query.api import JobInstanceDetail, StampedeQuery, WorkflowSummaryCounts

__all__ = [
    "TypeBreakdown",
    "HostUsage",
    "WorkflowStatistics",
    "job_type_breakdown",
    "job_rows",
    "host_breakdown",
    "workflow_statistics",
    "main",
]


@dataclass
class TypeBreakdown:
    """Aggregate runtimes of one job type (one row of breakdown.txt)."""

    type_name: str
    count: int = 0
    succeeded: int = 0
    failed: int = 0
    min_runtime: float = float("inf")
    max_runtime: float = 0.0
    total_runtime: float = 0.0

    @property
    def mean_runtime(self) -> float:
        return self.total_runtime / self.count if self.count else 0.0

    def add(self, runtime: float, success: bool) -> None:
        self.count += 1
        if success:
            self.succeeded += 1
        else:
            self.failed += 1
        self.min_runtime = min(self.min_runtime, runtime)
        self.max_runtime = max(self.max_runtime, runtime)
        self.total_runtime += runtime


@dataclass
class HostUsage:
    """Jobs and runtime executed by one host (optionally per time bin)."""

    hostname: str
    jobs: int = 0
    total_runtime: float = 0.0
    bins: Dict[int, float] = field(default_factory=dict)  # bin index -> runtime


@dataclass
class WorkflowStatistics:
    """Everything stampede_statistics reports for one workflow."""

    wf_id: int
    wf_uuid: str
    wall_time: Optional[float]
    cumulative_job_wall_time: float
    counts: WorkflowSummaryCounts
    breakdown: List[TypeBreakdown]
    jobs: List[JobInstanceDetail]
    hosts: List[HostUsage]


def job_type_breakdown(
    query: StampedeQuery, wf_id: int, include_descendants: bool = False
) -> List[TypeBreakdown]:
    """Per-type count/success/fail/min/max/mean/total over invocations.

    Types follow the paper's Table II: the transformation name of each
    invocation (``exec0``, ``file.Output_0`` …).
    """
    wf_ids = [wf_id] + (
        [w.wf_id for w in query.descendant_workflows(wf_id)]
        if include_descendants
        else []
    )
    table: Dict[str, TypeBreakdown] = {}
    for current in wf_ids:
        for inv in query.invocations(current):
            row = table.setdefault(inv.transformation, TypeBreakdown(inv.transformation))
            row.add(inv.remote_duration, inv.exitcode == 0)
    return sorted(table.values(), key=lambda r: r.type_name)


def job_rows(query: StampedeQuery, wf_id: int) -> List[JobInstanceDetail]:
    """The jobs.txt rows (Tables III and IV) for one workflow."""
    return query.job_details(wf_id)


def host_breakdown(
    query: StampedeQuery,
    wf_id: int,
    include_descendants: bool = True,
    bin_seconds: float = 60.0,
) -> List[HostUsage]:
    """Breakdown of jobs and runtime over hosts (and time bins)."""
    wf_ids = [wf_id] + (
        [w.wf_id for w in query.descendant_workflows(wf_id)]
        if include_descendants
        else []
    )
    usage: Dict[str, HostUsage] = {}
    origin: Optional[float] = None
    for current in wf_ids:
        start = None
        states = query.workflow_states(current)
        if states:
            start = states[0].timestamp
        if origin is None or (start is not None and start < origin):
            origin = start
    origin = origin or 0.0
    for current in wf_ids:
        hosts_by_id = {h.host_id: h for h in query.hosts(current)}
        jobs_by_id = {j.job_id: j for j in query.jobs(current)}
        for inst in query.job_instances(current):
            if inst.job_id not in jobs_by_id:
                continue
            host = hosts_by_id.get(inst.host_id) if inst.host_id else None
            hostname = host.hostname if host else "unknown"
            entry = usage.setdefault(hostname, HostUsage(hostname))
            entry.jobs += 1
            runtime = inst.local_duration or 0.0
            entry.total_runtime += runtime
            for inv in query.invocations_for_instance(inst.job_instance_id):
                bin_index = int((inv.start_time - origin) // bin_seconds)
                entry.bins[bin_index] = entry.bins.get(bin_index, 0.0) + inv.remote_duration
    return sorted(usage.values(), key=lambda u: u.hostname)


def workflow_statistics(
    archive_or_query,
    wf_id: Optional[int] = None,
    wf_uuid: Optional[str] = None,
    include_descendants: bool = True,
    include_jobs: bool = True,
    prefer_rollup: bool = True,
) -> WorkflowStatistics:
    """Compute the full statistics bundle for one workflow run.

    When the archive carries materialized rollups (``repro.core.rollup``)
    the aggregates are served from them — O(descendants) point lookups
    instead of full-table scans — falling back to the scan for archives
    without coverage.  ``include_jobs=False`` skips the per-job-instance
    detail rows (the dashboard summary path does not render them, and
    they are the one remaining per-instance query).
    """
    query = (
        archive_or_query
        if isinstance(archive_or_query, StampedeQuery)
        else StampedeQuery(archive_or_query)
    )
    if prefer_rollup:
        from repro.core.rollup import rollup_statistics

        stats = rollup_statistics(
            query,
            wf_id=wf_id,
            wf_uuid=wf_uuid,
            include_descendants=include_descendants,
            include_jobs=include_jobs,
        )
        if stats is not None:
            return stats
    if wf_id is None:
        if wf_uuid is not None:
            wf = query.workflow_by_uuid(wf_uuid)
            if wf is None:
                raise ValueError(f"no workflow with uuid {wf_uuid!r}")
        else:
            roots = query.root_workflows()
            if len(roots) != 1:
                raise ValueError(
                    f"archive holds {len(roots)} root workflows; specify wf_id"
                )
            wf = roots[0]
        wf_id = wf.wf_id
    else:
        wf = query.workflow(wf_id)
        if wf is None:
            raise ValueError(f"no workflow with wf_id {wf_id}")
    return WorkflowStatistics(
        wf_id=wf_id,
        wf_uuid=wf.wf_uuid,
        wall_time=query.workflow_wall_time(wf_id),
        cumulative_job_wall_time=query.cumulative_job_wall_time(
            wf_id, include_descendants
        ),
        counts=query.summary_counts(wf_id, include_descendants),
        breakdown=job_type_breakdown(query, wf_id, include_descendants),
        jobs=job_rows(query, wf_id) if include_jobs else [],
        hosts=host_breakdown(query, wf_id, include_descendants),
    )


def main(argv: Optional[list] = None) -> int:
    """Command line: print the Table I / II / III-IV reports for a run."""
    from repro.core.reports import render_breakdown, render_jobs, render_summary

    parser = argparse.ArgumentParser(
        prog="stampede-statistics",
        description="Workflow and job statistics from a Stampede archive.",
    )
    parser.add_argument(
        "connString",
        help="archive to read: a connection string (sqlite:///run.db), a "
        "plain sqlite path, a shard directory (shards.json inside), or a "
        "glob of shard files ('shards/*.db') — shard sets are queried "
        "through the federated layer transparently",
    )
    parser.add_argument("--wf-uuid", help="workflow to report (defaults to the root)")
    parser.add_argument(
        "--no-descendants",
        action="store_true",
        help="exclude sub-workflows from aggregates",
    )
    parser.add_argument(
        "-o", "--output-dir",
        help="also write summary.txt / breakdown.txt / jobs.txt / hosts.txt here",
    )
    args = parser.parse_args(argv)
    from repro.archive.shard import open_archive

    archive = open_archive(args.connString)
    stats = workflow_statistics(
        archive,
        wf_uuid=args.wf_uuid,
        include_descendants=not args.no_descendants,
    )
    print(render_summary(stats))
    print()
    print(render_breakdown(stats.breakdown))
    print()
    print(render_jobs(stats.jobs))
    if args.output_dir:
        from repro.core.reports import write_report_files

        for path in write_report_files(stats, args.output_dir):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
