"""Cross-run corpus analysis (paper §VIII future work).

"Stampede also provides analysis components that give insight into the
workflow execution to enable performance prediction and fault diagnosis...
In future, we plan to do similar analysis on larger corpus of workflow
runs."  This module performs that analysis over everything in one
archive: per-transformation runtime distributions across runs, per-site
reliability, and simple cross-run runtime prediction for new workflows.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.pegasus.abstract import AbstractWorkflow
from repro.query.api import StampedeQuery

__all__ = [
    "TransformationProfile",
    "SiteProfile",
    "CorpusReport",
    "build_corpus_report",
    "predict_workflow_runtime",
]


@dataclass
class TransformationProfile:
    """Runtime distribution of one transformation across all runs."""

    transformation: str
    invocations: int = 0
    failures: int = 0
    runtimes: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.runtimes)) if self.runtimes else 0.0

    @property
    def median(self) -> float:
        return float(np.median(self.runtimes)) if self.runtimes else 0.0

    @property
    def p95(self) -> float:
        return float(np.percentile(self.runtimes, 95)) if self.runtimes else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.runtimes)) if self.runtimes else 0.0

    @property
    def failure_rate(self) -> float:
        return self.failures / self.invocations if self.invocations else 0.0


@dataclass
class SiteProfile:
    """Reliability and queueing behaviour of one site across all runs."""

    site: str
    instances: int = 0
    failures: int = 0
    queue_times: List[float] = field(default_factory=list)

    @property
    def failure_rate(self) -> float:
        return self.failures / self.instances if self.instances else 0.0

    @property
    def mean_queue_time(self) -> float:
        return float(np.mean(self.queue_times)) if self.queue_times else 0.0


@dataclass
class CorpusReport:
    """The corpus-wide mined statistics."""

    workflows: int
    total_invocations: int
    transformations: Dict[str, TransformationProfile]
    sites: Dict[str, SiteProfile]

    def slowest_transformations(self, top: int = 5) -> List[TransformationProfile]:
        ranked = sorted(
            self.transformations.values(), key=lambda p: p.mean, reverse=True
        )
        return ranked[:top]

    def least_reliable_sites(self, top: int = 5) -> List[SiteProfile]:
        ranked = sorted(
            self.sites.values(), key=lambda p: p.failure_rate, reverse=True
        )
        return ranked[:top]


def build_corpus_report(query: StampedeQuery) -> CorpusReport:
    """Mine every workflow in the archive."""
    transformations: Dict[str, TransformationProfile] = {}
    sites: Dict[str, SiteProfile] = {}
    workflows = query.workflows()
    total_invocations = 0
    for wf in workflows:
        for inv in query.invocations(wf.wf_id):
            total_invocations += 1
            profile = transformations.setdefault(
                inv.transformation, TransformationProfile(inv.transformation)
            )
            profile.invocations += 1
            profile.runtimes.append(inv.remote_duration)
            if inv.exitcode != 0:
                profile.failures += 1
        for detail in query.job_details(wf.wf_id):
            site_name = detail.site or "unknown"
            site = sites.setdefault(site_name, SiteProfile(site_name))
            site.instances += 1
            if detail.exitcode not in (None, 0):
                site.failures += 1
            if detail.queue_time is not None:
                site.queue_times.append(detail.queue_time)
    return CorpusReport(
        workflows=len(workflows),
        total_invocations=total_invocations,
        transformations=transformations,
        sites=sites,
    )


def predict_workflow_runtime(
    aw: AbstractWorkflow,
    corpus: CorpusReport,
    parallelism: float = 1.0,
    default_runtime: Optional[float] = None,
) -> Dict[str, float]:
    """Predict a new workflow's runtime from corpus history.

    The "baseline run + extrapolate" provisioning flow of §VII: per-task
    estimates come from the corpus's per-transformation means; the serial
    total divided by target parallelism bounds the wall time below by the
    corpus-estimated critical path.
    """
    if parallelism <= 0:
        raise ValueError("parallelism must be positive")
    known = {t: p.mean for t, p in corpus.transformations.items() if p.runtimes}
    fallback = (
        default_runtime
        if default_runtime is not None
        else (float(np.mean(list(known.values()))) if known else 0.0)
    )

    def estimate(task_id: str) -> float:
        task = aw.task(task_id)
        return known.get(task.transformation, fallback)

    serial = sum(estimate(t.task_id) for t in aw.tasks())
    critical = aw.critical_path(estimate) if len(aw) else 0.0
    # queue overhead: each DAG level waits in the remote queue once, at the
    # corpus-observed mean (weighted by instances per site)
    total_instances = sum(s.instances for s in corpus.sites.values())
    mean_queue = (
        sum(s.mean_queue_time * s.instances for s in corpus.sites.values())
        / total_instances
        if total_instances
        else 0.0
    )
    n_levels = (max(aw.levels().values()) + 1) if len(aw) else 0
    queue_overhead = n_levels * mean_queue
    wall = max(critical, serial / parallelism) + queue_overhead
    coverage = (
        sum(1 for t in aw.tasks() if t.transformation in known) / len(aw)
        if len(aw)
        else 0.0
    )
    return {
        "serial_seconds": serial,
        "critical_path_seconds": critical,
        "queue_overhead_seconds": queue_overhead,
        "predicted_wall_seconds": wall,
        "coverage": coverage,
    }
