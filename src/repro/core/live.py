"""Streaming read layer for the dashboard (``repro.core.live``).

Dashboards are read-heavy and bursty: N browser tabs hitting
``/api/workflows`` every second must not cost N full computations per
second.  Two pieces keep the read path flat:

* :class:`ReadCache` — a single-flight read-through cache whose
  invalidation signal is the **rollup commit sequence**
  (:func:`repro.core.rollup.commit_seq`), not a TTL.  The sequence bumps
  exactly once per loader flush that changed rollup state, inside the
  same transaction as the data itself, so a cached payload is valid
  precisely until the sequence moves — never stale, never expiring
  while the archive is quiet.  Concurrent requests for the same key
  coalesce: one leader computes while the rest park on an event and
  receive the leader's result (the "N viewers cost one computation"
  contract).

* :class:`LiveFeed` — push-style change delivery over the same
  sequence.  ``wait_for_change`` long-polls the commit sequence;
  ``sse_events`` yields Server-Sent-Event frames carrying monotonic
  per-workflow progress snapshots read from the O(1) rollup rows.
  Because every snapshot is a point read of ``rollup_workflow``, a
  streaming viewer costs microseconds per emitted event regardless of
  archive size.

Archives without rollup coverage (loader ran with ``rollup=False`` and
no rebuild) report ``commit_seq == 0``; the cache then bypasses itself
— every request computes — because no safe invalidation signal exists.
:func:`bind_live` exports cache hit/miss totals and the rollup
commit-sequence / lag gauges through the PR 5 metrics registry.
"""
from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.rollup import commit_seq, last_commit_ts
from repro.model.entities import RollupWorkflowRow
from repro.obs.metrics import MetricsRegistry
from repro.schema.stampede import SUCCESS

__all__ = ["ReadCache", "LiveFeed", "bind_live"]


class _Flight:
    """One in-progress computation other requests can wait on."""

    __slots__ = ("event", "version", "value", "error")

    def __init__(self, version: int):
        self.event = threading.Event()
        self.version = version
        self.value: Any = None
        self.error: Optional[BaseException] = None


class ReadCache:
    """Single-flight read-through cache keyed on the rollup commit seq.

    ``get(key, compute)`` returns the cached value when its recorded
    version equals the archive's current commit sequence; otherwise one
    caller (the *leader*) runs ``compute`` while concurrent callers for
    the same key wait and share the result.  A leader failure wakes the
    waiters, one of which retries as the new leader — an exception never
    poisons the key.

    Counters (mirrored to metrics by :func:`bind_live`):

    * ``hits`` — served from cache or coalesced onto a leader;
    * ``misses`` — computations actually run (including bypasses on
      archives without rollup coverage).
    """

    def __init__(self, archive: Any):
        self.archive = archive
        self._lock = threading.Lock()
        self._entries: Dict[Any, Tuple[int, Any]] = {}
        self._inflight: Dict[Any, _Flight] = {}
        self.hits = 0
        self.misses = 0

    def version(self) -> int:
        """Current invalidation version (0 = no rollup coverage)."""
        return commit_seq(self.archive)

    def _count_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def _count_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def get(self, key: Any, compute: Callable[[], Any]) -> Any:
        version = self.version()
        if version <= 0:
            # no commit sequence to invalidate on: caching would serve
            # stale data forever, so compute every time (an honest miss)
            self._count_miss()
            return compute()
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and entry[0] == version:
                    self.hits += 1
                    return entry[1]
                flight = self._inflight.get(key)
                if flight is None or flight.version != version:
                    flight = _Flight(version)
                    self._inflight[key] = flight
                    leader = True
                else:
                    leader = False
            if not leader:
                flight.event.wait()
                if flight.error is None:
                    self._count_hit()
                    return flight.value
                continue  # leader failed; loop — this caller may lead next
            try:
                value = compute()
            except BaseException as exc:
                flight.error = exc
                with self._lock:
                    if self._inflight.get(key) is flight:
                        del self._inflight[key]
                flight.event.set()
                raise
            flight.value = value
            with self._lock:
                # stored under the version sampled *before* compute: if
                # the archive moved mid-compute the next reader sees a
                # higher sequence and recomputes, so a torn read can
                # never outlive one commit
                self._entries[key] = (version, value)
                self.misses += 1
                if self._inflight.get(key) is flight:
                    del self._inflight[key]
            flight.event.set()
            return value

    def invalidate(self) -> None:
        """Drop every cached entry (tests; not needed in operation)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }


def _wf_state(row: RollupWorkflowRow) -> str:
    if row.ended is None or row.status is None:
        return "running"
    return "success" if row.status == SUCCESS else "failed"


class LiveFeed:
    """Push-style change delivery over the rollup commit sequence.

    The feed polls :func:`commit_seq` at ``poll_interval`` — a cheap
    point read of ``rollup_meta`` — and surfaces changes as long-poll
    returns or SSE frames.  Progress payloads come from the
    ``rollup_workflow`` rows, so every field a viewer watches (events,
    task/job counters, state) is **monotone** across frames of one
    stream: counters only grow, ``running`` only resolves forward into
    ``success``/``failed``.
    """

    def __init__(self, archive: Any, poll_interval: float = 0.05):
        self.archive = archive
        self.poll_interval = poll_interval
        #: streams served and events emitted (for bind_live)
        self.streams_opened = 0
        self.events_emitted = 0
        self._lock = threading.Lock()

    def version(self) -> int:
        return commit_seq(self.archive)

    def wait_for_change(self, since: int, timeout: float) -> int:
        """Block until the commit sequence differs from ``since`` or
        ``timeout`` elapses; returns the current sequence either way."""
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            current = self.version()
            if current != since or time.monotonic() >= deadline:
                return current
            time.sleep(min(self.poll_interval, max(0.0, deadline - time.monotonic())))

    # -- progress snapshots --------------------------------------------------
    def _progress_row(self, row: RollupWorkflowRow) -> Dict[str, Any]:
        return {
            "wf_id": row.wf_id,
            "wf_uuid": row.wf_uuid,
            "state": _wf_state(row),
            "events": row.events,
            "tasks_total": row.tasks_total,
            "tasks_succeeded": row.tasks_succeeded,
            "tasks_failed": row.tasks_failed,
            "jobs_total": row.jobs_total,
            "jobs_succeeded": row.jobs_succeeded,
            "jobs_failed": row.jobs_failed,
            "invocations": row.invocations,
            "restarts": row.restarts,
            "updated_seq": row.updated_seq,
        }

    def snapshot(self, wf_id: Optional[int] = None) -> Dict[str, Any]:
        """Current progress: one workflow or the whole archive.

        Raises ``KeyError`` when ``wf_id`` names no workflow (the
        dashboard's 404 contract).  A workflow that exists but has no
        rollup row (rollups disabled) degrades to a state-only entry.
        """
        seq = self.version()
        if wf_id is None:
            rows = self.archive.query(RollupWorkflowRow).order_by("wf_id").all()
            return {
                "commit_seq": seq,
                "workflows": [self._progress_row(r) for r in rows],
            }
        row = self.archive.query(RollupWorkflowRow).eq("wf_id", wf_id).first()
        if row is not None:
            payload = self._progress_row(row)
        else:
            from repro.query.api import StampedeQuery

            query = StampedeQuery(self.archive)
            if query.workflow(wf_id) is None:
                raise KeyError(f"no workflow with wf_id={wf_id}")
            status = query.workflow_status(wf_id)
            payload = {
                "wf_id": wf_id,
                "state": (
                    "running"
                    if status is None
                    else ("success" if status == SUCCESS else "failed")
                ),
            }
        payload["commit_seq"] = seq
        return payload

    # -- server-sent events --------------------------------------------------
    def sse_events(
        self,
        wf_id: Optional[int] = None,
        limit: Optional[int] = None,
        timeout: float = 30.0,
    ) -> Iterator[bytes]:
        """Yield SSE frames: an immediate snapshot, then one frame per
        commit-sequence change.

        ``limit`` caps emitted ``progress`` events (the stream closes
        after that many — connect with ``?limit=N`` to make a client
        testable); ``timeout`` bounds the wait for *each* change — when
        it elapses with no change the stream emits a final ``idle``
        frame and closes, so an abandoned viewer never pins a server
        thread forever.
        """
        with self._lock:
            self.streams_opened += 1
        emitted = 0
        # connect mid-load: the first frame is the current state, so a
        # late viewer starts from truth rather than from zero
        snap = self.snapshot(wf_id)
        yield _sse_frame("progress", snap)
        emitted += 1
        with self._lock:
            self.events_emitted += 1
        seq = snap["commit_seq"]
        while limit is None or emitted < limit:
            current = self.wait_for_change(seq, timeout)
            if current == seq:
                yield _sse_frame("idle", {"commit_seq": seq})
                return
            seq = current
            snap = self.snapshot(wf_id)
            # the snapshot may already be ahead of the sequence that
            # woke us; adopt its sequence so we never emit twice for one
            # commit
            seq = max(seq, snap["commit_seq"])
            yield _sse_frame("progress", snap)
            emitted += 1
            with self._lock:
                self.events_emitted += 1


def _sse_frame(event: str, payload: Dict[str, Any]) -> bytes:
    data = json.dumps(payload, separators=(",", ":"))
    seq = payload.get("commit_seq")
    id_line = f"id: {seq}\n" if seq is not None else ""
    return f"event: {event}\n{id_line}data: {data}\n\n".encode()


def bind_live(
    registry: MetricsRegistry,
    cache: Optional[ReadCache] = None,
    feed: Optional[LiveFeed] = None,
    archive: Any = None,
) -> None:
    """Export the streaming read layer through the metrics registry.

    Scrape-time collectors (zero hot-path cost, same convention as
    :mod:`repro.obs.instrument`):

    * ``stampede_dashboard_cache_hits_total`` / ``_misses_total`` —
      mirrored from the :class:`ReadCache` tallies;
    * ``stampede_dashboard_streams_total`` / ``_stream_events_total`` —
      SSE streams opened and frames emitted;
    * ``stampede_rollup_commit_seq`` — the archive's current rollup
      commit sequence (monotone; flat while idle);
    * ``stampede_rollup_lag_seconds`` — wall seconds since the last
      rollup commit (0 when the archive has no rollups yet).
    """
    target = archive
    if target is None and cache is not None:
        target = cache.archive
    if target is None and feed is not None:
        target = feed.archive

    def collect(reg: MetricsRegistry) -> None:
        if cache is not None:
            stats = cache.stats()
            reg.counter(
                "stampede_dashboard_cache_hits_total",
                "Dashboard reads served from the commit-seq cache "
                "(including coalesced concurrent requests).",
            ).set_total(stats["hits"])
            reg.counter(
                "stampede_dashboard_cache_misses_total",
                "Dashboard reads that ran the underlying computation.",
            ).set_total(stats["misses"])
        if feed is not None:
            reg.counter(
                "stampede_dashboard_streams_total",
                "SSE progress streams opened.",
            ).set_total(feed.streams_opened)
            reg.counter(
                "stampede_dashboard_stream_events_total",
                "SSE progress frames emitted across all streams.",
            ).set_total(feed.events_emitted)
        if target is not None:
            reg.gauge(
                "stampede_rollup_commit_seq",
                "Rollup commit sequence (bumps once per flush that "
                "changed rollup state; cache invalidation signal).",
            ).set(commit_seq(target))
            ts = last_commit_ts(target)
            lag = max(0.0, time.time() - ts) if ts else 0.0
            reg.gauge(
                "stampede_rollup_lag_seconds",
                "Wall seconds since the last rollup commit.",
            ).set(lag)

    registry.register_collector(collect)
