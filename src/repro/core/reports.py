"""Text renderers for the stampede-statistics outputs.

Reproduces the human-readable formats of the paper's Tables I–IV:
the summary block, ``breakdown.txt`` and both ``jobs.txt`` sections.
"""
from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.statistics import (
    HostUsage,
    TypeBreakdown,
    WorkflowStatistics,
    workflow_statistics,
)
from repro.query.api import JobInstanceDetail, StampedeQuery
from repro.util.text import render_table
from repro.util.timeutil import format_duration

__all__ = [
    "render_summary",
    "render_breakdown",
    "render_jobs",
    "render_jobs_timing",
    "render_hosts",
    "render_host_timeline",
    "render_gantt",
    "render_all",
    "write_report_files",
    "main",
]


def render_summary(stats: WorkflowStatistics) -> str:
    """The Table I block: outcome counts + wall times."""
    c = stats.counts
    rows = [
        ["Tasks", c.tasks_succeeded, c.tasks_failed, c.tasks_incomplete,
         c.tasks_total, c.tasks_retries, c.tasks_total + c.tasks_retries],
        ["Jobs", c.jobs_succeeded, c.jobs_failed, c.jobs_incomplete,
         c.jobs_total, c.jobs_retries, c.jobs_total + c.jobs_retries],
        ["Sub Workflows", c.subwf_succeeded, c.subwf_failed, c.subwf_incomplete,
         c.subwf_total, c.subwf_retries, c.subwf_total + c.subwf_retries],
    ]
    table = render_table(
        ["Type", "Succeeded", "Failed", "Incomplete", "Total", "Retries",
         "Total+Retries"],
        rows,
    )
    lines = [table, ""]
    if stats.wall_time is not None:
        lines.append(
            f"Workflow wall time                          : "
            f"{format_duration(stats.wall_time)}, ({stats.wall_time:.0f} seconds)"
        )
    else:
        lines.append("Workflow wall time                          : (still running)")
    cum = stats.cumulative_job_wall_time
    lines.append(
        f"Workflow cumulative job wall time           : "
        f"{format_duration(cum)}, ({cum:.0f} seconds)"
    )
    return "\n".join(lines)


def render_breakdown(breakdown: List[TypeBreakdown]) -> str:
    """breakdown.txt (Table II): per-type count/success/fail/min/max/mean/total."""
    rows = [
        [
            b.type_name,
            b.count,
            b.succeeded,
            b.failed,
            f"{b.min_runtime:.1f}",
            f"{b.max_runtime:.1f}",
            f"{b.mean_runtime:.1f}",
            f"{b.total_runtime:.1f}",
        ]
        for b in breakdown
    ]
    return render_table(
        ["Type", "Count", "Success", "Failed", "Min", "Max", "Mean", "Total"], rows
    )


def render_jobs(jobs: List[JobInstanceDetail]) -> str:
    """jobs.txt, first section (Table III): job / try / site / invocation dur."""
    rows = [
        [
            j.exec_job_id,
            j.try_number,
            j.site or "None",
            f"{j.invocation_duration:.1f}" if j.invocation_duration is not None else "-",
        ]
        for j in jobs
    ]
    return render_table(["Job", "Try", "Site", "InvocationDuration"], rows)


def render_jobs_timing(jobs: List[JobInstanceDetail]) -> str:
    """jobs.txt, second section (Table IV): queue time / runtime / exit / host."""
    rows = [
        [
            j.exec_job_id,
            f"{j.queue_time:.2f}" if j.queue_time is not None else "-",
            f"{j.runtime:.1f}" if j.runtime is not None else "-",
            j.exitcode if j.exitcode is not None else "-",
            j.hostname or "None",
        ]
        for j in jobs
    ]
    return render_table(["Job", "QueueTime", "Runtime", "Exit", "Host"], rows)


def render_hosts(hosts: List[HostUsage]) -> str:
    """Breakdown of jobs and total runtime per host."""
    rows = [
        [h.hostname, h.jobs, f"{h.total_runtime:.1f}"]
        for h in hosts
    ]
    return render_table(["Host", "Jobs", "TotalRuntime"], rows)


def render_host_timeline(hosts: List[HostUsage], bin_seconds: float = 60.0) -> str:
    """The "breakdown of tasks and jobs over time on hosts" view: one row
    per host, one column per time bin, cells are the runtime executed in
    that bin (seconds)."""
    if not hosts:
        return "(no host usage recorded)"
    max_bin = max((max(h.bins) for h in hosts if h.bins), default=0)
    headers = ["Host"] + [
        f"t{int(i * bin_seconds)}" for i in range(max_bin + 1)
    ]
    rows = []
    for h in hosts:
        rows.append(
            [h.hostname]
            + [f"{h.bins.get(i, 0.0):.0f}" for i in range(max_bin + 1)]
        )
    return render_table(headers, rows)


def write_report_files(stats: WorkflowStatistics, directory) -> List[str]:
    """Write the stampede-statistics output files the paper describes —
    ``summary.txt``, ``breakdown.txt``, ``jobs.txt`` — into ``directory``.
    Returns the paths written."""
    import os

    os.makedirs(directory, exist_ok=True)
    outputs = {
        "summary.txt": render_summary(stats),
        "breakdown.txt": render_breakdown(stats.breakdown),
        "jobs.txt": render_jobs(stats.jobs) + "\n\n" + render_jobs_timing(stats.jobs),
        "hosts.txt": render_hosts(stats.hosts) + "\n\n"
        + render_host_timeline(stats.hosts),
    }
    paths = []
    for name, text in outputs.items():
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        paths.append(path)
    return paths


def render_gantt(rows, width: int = 60) -> str:
    """ASCII Gantt chart of job instances: '.' queued, '#' running.

    ``rows`` are :class:`~repro.core.timeseries.GanttRow` objects; the time
    axis spans from the earliest submit to the latest end.
    """
    timed = [r for r in rows if r.submit is not None]
    if not timed:
        return "(no timed job instances)"
    t_min = min(r.submit for r in timed)
    t_max = max((r.end if r.end is not None else r.submit) for r in timed)
    span = max(t_max - t_min, 1e-9)

    def col(t: float) -> int:
        return min(width - 1, int((t - t_min) / span * width))

    lines = [f"time {t_min:.0f}s .. {t_max:.0f}s   ('.' queued, '#' running)"]
    for r in timed:
        cells = [" "] * width
        start = r.start if r.start is not None else t_max
        end = r.end if r.end is not None else t_max
        for c in range(col(r.submit), col(start) + 1):
            cells[c] = "."
        if r.start is not None:
            for c in range(col(start), col(end) + 1):
                cells[c] = "#"
        label = f"{r.exec_job_id[:20]:<20} {r.hostname[:14]:<14}"
        lines.append(f"{label} |{''.join(cells)}|")
    return "\n".join(lines)


def render_all(stats: WorkflowStatistics) -> str:
    """Every report in one document (what the CLI prints)."""
    parts = [
        f"# Workflow {stats.wf_uuid} (wf_id={stats.wf_id})",
        "",
        render_summary(stats),
        "",
        "## breakdown.txt",
        render_breakdown(stats.breakdown),
        "",
        "## jobs.txt",
        render_jobs(stats.jobs),
        "",
        render_jobs_timing(stats.jobs),
        "",
        "## hosts",
        render_hosts(stats.hosts),
    ]
    return "\n".join(parts)


def main(argv: Optional[list] = None) -> int:
    """Command line: the full report document for one (or every) run.

    Accepts the same archive specs as ``stampede-statistics``: a
    connection string, a plain sqlite path, a shard directory, or a glob
    of shard files — shard sets read through the federated query layer.
    """
    parser = argparse.ArgumentParser(
        prog="stampede-reports",
        description="Render the Tables I-IV report document from a "
        "Stampede archive or shard set.",
    )
    parser.add_argument(
        "connString",
        help="sqlite:///run.db, a sqlite path, a shard directory, or a "
        "glob like 'shards/*.db'",
    )
    parser.add_argument(
        "--wf-uuid", help="workflow to report (defaults to the root)"
    )
    parser.add_argument(
        "--all-roots",
        action="store_true",
        help="render one report per root workflow instead of just the first",
    )
    parser.add_argument(
        "--no-descendants",
        action="store_true",
        help="exclude sub-workflows from aggregates",
    )
    parser.add_argument(
        "-o",
        "--output-dir",
        help="also write summary.txt / breakdown.txt / jobs.txt / hosts.txt here",
    )
    args = parser.parse_args(argv)
    from repro.archive.shard import open_archive

    archive = open_archive(args.connString)
    try:
        if args.all_roots:
            uuids = [w.wf_uuid for w in StampedeQuery(archive).root_workflows()]
        else:
            uuids = [args.wf_uuid]
        first = True
        for wf_uuid in uuids:
            stats = workflow_statistics(
                archive,
                wf_uuid=wf_uuid,
                include_descendants=not args.no_descendants,
            )
            if not first:
                print()
            print(render_all(stats))
            first = False
            if args.output_dir:
                directory = (
                    f"{args.output_dir}/{stats.wf_uuid}"
                    if args.all_roots
                    else args.output_dir
                )
                for path in write_report_files(stats, directory):
                    print(f"wrote {path}", file=sys.stderr)
    finally:
        archive.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
