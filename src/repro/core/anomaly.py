"""Online anomaly detection for workflow runs.

Reproduces the analysis layer the paper inherits from Samak et al.
("Online fault and anomaly detection for large-scale scientific
workflows", HPCC 2011): streaming per-job-type runtime models that
distinguish actual anomalies from normal variation.

Two detectors are provided:

* :class:`RobustRuntimeDetector` — per-transformation median/MAD score
  over a sliding window (robust z-score).  Insensitive to the heavy right
  tail of job runtimes.
* :class:`EwmaDetector` — exponentially weighted mean/variance, O(1)
  memory per type, for very-high-throughput streams.

Both consume invocation completions — either live from the message bus
(``watch_bus``) or post hoc from the archive (``scan_archive``).
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

import numpy as np

from repro.netlogger.events import NLEvent
from repro.query.api import StampedeQuery
from repro.schema.stampede import Events

__all__ = [
    "Anomaly",
    "RobustRuntimeDetector",
    "EwmaDetector",
    "scan_archive",
    "detector_from_events",
]

# Consistency constant: MAD of a normal distribution is 0.6745 sigma.
_MAD_TO_SIGMA = 1.4826


@dataclass(frozen=True)
class Anomaly:
    """One flagged observation."""

    transformation: str
    runtime: float
    score: float
    kind: str  # 'slow' | 'fast' | 'failure'
    job_id: Optional[str] = None
    timestamp: float = 0.0

    def __str__(self) -> str:
        return (
            f"[{self.kind}] {self.transformation} job={self.job_id} "
            f"runtime={self.runtime:.1f}s score={self.score:.2f}"
        )


class RobustRuntimeDetector:
    """Sliding-window median/MAD anomaly detector, per job type.

    An observation is anomalous when its robust z-score exceeds
    ``threshold``.  The first ``min_samples`` observations of each type
    only train the model (no alerts) — cold-start suppression.
    """

    def __init__(
        self,
        threshold: float = 4.0,
        window: int = 200,
        min_samples: int = 5,
        flag_failures: bool = True,
    ):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.window = window
        self.min_samples = min_samples
        self.flag_failures = flag_failures
        self._samples: Dict[str, Deque[float]] = {}
        self.anomalies: List[Anomaly] = []
        self.observations = 0

    def observe(
        self,
        transformation: str,
        runtime: float,
        exitcode: int = 0,
        job_id: Optional[str] = None,
        timestamp: float = 0.0,
    ) -> Optional[Anomaly]:
        """Feed one completed invocation; returns an Anomaly if flagged."""
        self.observations += 1
        if exitcode != 0 and self.flag_failures:
            anomaly = Anomaly(transformation, runtime, float("inf"), "failure",
                              job_id, timestamp)
            self.anomalies.append(anomaly)
            return anomaly
        window = self._samples.setdefault(transformation, deque(maxlen=self.window))
        anomaly: Optional[Anomaly] = None
        if len(window) >= self.min_samples:
            arr = np.asarray(window)
            med = float(np.median(arr))
            mad = float(np.median(np.abs(arr - med)))
            sigma = _MAD_TO_SIGMA * mad
            if sigma <= 0:
                # Degenerate window (constant runtimes): any deviation
                # beyond 10% of the median is suspicious.
                if med > 0 and abs(runtime - med) > 0.1 * med:
                    score = abs(runtime - med) / (0.1 * med) * self.threshold
                    kind = "slow" if runtime > med else "fast"
                    anomaly = Anomaly(transformation, runtime, score, kind,
                                      job_id, timestamp)
            else:
                score = (runtime - med) / sigma
                if abs(score) > self.threshold:
                    kind = "slow" if score > 0 else "fast"
                    anomaly = Anomaly(transformation, runtime, abs(score), kind,
                                      job_id, timestamp)
        window.append(runtime)
        if anomaly is not None:
            self.anomalies.append(anomaly)
        return anomaly

    def observe_event(self, event: NLEvent) -> Optional[Anomaly]:
        """Feed a stampede.inv.end event directly."""
        if event.event != Events.INV_END:
            return None
        return self.observe(
            transformation=str(event.get("transformation", "")),
            runtime=float(event.get("dur", 0.0)),
            exitcode=int(event.get("exitcode", 0)),
            job_id=str(event.get("job.id", "")) or None,
            timestamp=event.ts,
        )

    def baseline(self, transformation: str) -> Optional[float]:
        """Current median runtime for a type, or None if unseen."""
        window = self._samples.get(transformation)
        if not window:
            return None
        return float(np.median(np.asarray(window)))


class EwmaDetector:
    """Exponentially weighted mean/std anomaly detector, per job type."""

    def __init__(self, alpha: float = 0.1, threshold: float = 4.0,
                 min_samples: int = 5):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.threshold = threshold
        self.min_samples = min_samples
        # transformation -> (count, mean, variance)
        self._state: Dict[str, List[float]] = {}
        self.anomalies: List[Anomaly] = []

    def observe(
        self,
        transformation: str,
        runtime: float,
        job_id: Optional[str] = None,
        timestamp: float = 0.0,
    ) -> Optional[Anomaly]:
        state = self._state.get(transformation)
        anomaly: Optional[Anomaly] = None
        if state is None:
            self._state[transformation] = [1, runtime, 0.0]
            return None
        count, mean, var = state
        if count >= self.min_samples and var > 0:
            score = (runtime - mean) / np.sqrt(var)
            if abs(score) > self.threshold:
                kind = "slow" if score > 0 else "fast"
                anomaly = Anomaly(transformation, runtime, abs(score), kind,
                                  job_id, timestamp)
                self.anomalies.append(anomaly)
        delta = runtime - mean
        mean += self.alpha * delta
        var = (1 - self.alpha) * (var + self.alpha * delta * delta)
        self._state[transformation] = [count + 1, mean, var]
        return anomaly

    def mean(self, transformation: str) -> Optional[float]:
        state = self._state.get(transformation)
        return state[1] if state else None


def detector_from_events(
    events: Iterable[NLEvent], detector: Optional[RobustRuntimeDetector] = None
) -> RobustRuntimeDetector:
    """Run a detector over an event stream (live-bus or replayed log)."""
    if detector is None:
        detector = RobustRuntimeDetector()
    for event in events:
        detector.observe_event(event)
    return detector


def scan_archive(
    query: StampedeQuery,
    wf_id: int,
    include_descendants: bool = True,
    detector: Optional[RobustRuntimeDetector] = None,
) -> RobustRuntimeDetector:
    """Post-hoc scan: replay archived invocations through a detector."""
    if detector is None:
        detector = RobustRuntimeDetector()
    wf_ids = [wf_id] + (
        [w.wf_id for w in query.descendant_workflows(wf_id)]
        if include_descendants
        else []
    )
    records = []
    for current in wf_ids:
        for inv in query.invocations(current):
            records.append(inv)
    records.sort(key=lambda i: i.start_time + i.remote_duration)
    for inv in records:
        detector.observe(
            transformation=inv.transformation,
            runtime=inv.remote_duration,
            exitcode=inv.exitcode,
            job_id=inv.abs_task_id,
            timestamp=inv.start_time + inv.remote_duration,
        )
    return detector
