"""Lightweight performance dashboard (paper §IV-F).

"A very lightweight performance dashboard that enables easy monitoring and
online exploration of workflows based on an embedded web server written
entirely in Python."  This module implements it over the stdlib
``http.server``: JSON endpoints backed by the query interface plus a
minimal HTML index.

Endpoints:
  GET /                      — HTML overview of all workflows
  GET /api/workflows         — all workflow runs with status
  GET /api/workflow/<id>     — summary statistics for one run
  GET /api/workflow/<id>/jobs— jobs.txt rows as JSON
  GET /api/stream            — SSE progress stream for the whole archive
  GET /api/workflow/<id>/stream — SSE progress stream for one run
  GET /api/workflow/<id>/poll   — long-poll: ?since=<seq>&timeout=<s>
  GET /metrics               — Prometheus exposition of the process registry

Every JSON payload is served through a :class:`repro.core.live.ReadCache`
invalidated by the rollup commit sequence: N concurrent viewers of the
same endpoint cost one computation per archive commit, not N per
request.  The SSE endpoints accept ``?limit=N`` (close after N progress
frames) and ``?timeout=S`` (idle-close after S seconds without a
commit) so streaming clients are testable and abandoned viewers cannot
pin server threads.

Error contract: an unknown workflow id is 404; a malformed API path
(e.g. a non-numeric id) is 400.
"""
from __future__ import annotations

import json
import re
import threading
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qsl

from repro.archive.store import StampedeArchive
from repro.core.live import LiveFeed, ReadCache, bind_live
from repro.core.statistics import workflow_statistics
from repro.obs.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.query.api import StampedeQuery
from repro.schema.stampede import SUCCESS

__all__ = ["DashboardData", "Dashboard"]

#: long-poll/SSE waits are capped so a bogus ?timeout can't pin a thread
_MAX_WAIT_SECONDS = 120.0


class DashboardData:
    """The dashboard's data layer — also usable without HTTP (tests, CLIs).

    All payload builders run through ``self.cache``; identical requests
    between two rollup commits share one computation (single-flight),
    and the cache invalidates the moment the loader commits — no TTL.
    """

    def __init__(self, archive: StampedeArchive):
        self.archive = archive
        self.query = StampedeQuery(archive)
        self.cache = ReadCache(archive)
        self.feed = LiveFeed(archive)

    def _require_workflow(self, wf_id: int) -> int:
        """Raise ``KeyError`` (HTTP 404) when no such run exists —
        payload builders otherwise fabricate empty stats for any id."""
        if self.query.workflow(wf_id) is None:
            raise KeyError(f"no workflow with wf_id={wf_id}")
        return wf_id

    def workflows_payload(self) -> dict:
        return self.cache.get("workflows", self._workflows_uncached)

    def _workflows_uncached(self) -> dict:
        rows = []
        for wf in self.query.workflows():
            status = self.query.workflow_status(wf.wf_id)
            rows.append(
                {
                    "wf_id": wf.wf_id,
                    "wf_uuid": wf.wf_uuid,
                    "dag_file_name": wf.dag_file_name,
                    "parent_wf_id": wf.parent_wf_id,
                    "state": (
                        "running"
                        if status is None
                        else ("success" if status == SUCCESS else "failed")
                    ),
                }
            )
        return {"workflows": rows}

    def workflow_payload(self, wf_id: int) -> dict:
        return self.cache.get(
            ("workflow", wf_id), lambda: self._workflow_uncached(wf_id)
        )

    def _workflow_uncached(self, wf_id: int) -> dict:
        # the summary payload renders no per-job rows: include_jobs=False
        # keeps this a pure rollup point read on covered archives
        stats = workflow_statistics(
            self.query, wf_id=self._require_workflow(wf_id), include_jobs=False
        )
        return {
            "wf_id": stats.wf_id,
            "wf_uuid": stats.wf_uuid,
            "wall_time": stats.wall_time,
            "cumulative_job_wall_time": stats.cumulative_job_wall_time,
            "counts": asdict(stats.counts),
            "breakdown": [
                {
                    "type": b.type_name,
                    "count": b.count,
                    "succeeded": b.succeeded,
                    "failed": b.failed,
                    "min": b.min_runtime,
                    "max": b.max_runtime,
                    "mean": b.mean_runtime,
                    "total": b.total_runtime,
                }
                for b in stats.breakdown
            ],
        }

    def jobs_payload(self, wf_id: int) -> dict:
        return self.cache.get(("jobs", wf_id), lambda: self._jobs_uncached(wf_id))

    def _jobs_uncached(self, wf_id: int) -> dict:
        self._require_workflow(wf_id)
        return {"jobs": [asdict(j) for j in self.query.job_details(wf_id)]}

    def poll_payload(self, wf_id: Optional[int], since: int, timeout: float) -> dict:
        """Long-poll: block until the commit sequence moves past ``since``
        (or ``timeout`` elapses), then return the current progress
        snapshot.  ``since=-1`` returns immediately."""
        self.feed.wait_for_change(since, min(timeout, _MAX_WAIT_SECONDS))
        return self.feed.snapshot(wf_id)

    def progress_payload(self, wf_id: int) -> dict:
        """Fig. 7 data: per-sub-workflow cumulative-runtime step series."""
        return self.cache.get(
            ("progress", wf_id), lambda: self._progress_uncached(wf_id)
        )

    def _progress_uncached(self, wf_id: int) -> dict:
        from repro.core.timeseries import bundle_progress

        series = bundle_progress(self.query, self._require_workflow(wf_id))
        return {
            "series": [
                {
                    "label": s.label,
                    "wf_id": s.wf_id,
                    "points": [[round(t, 3), round(v, 3)] for t, v in s.points],
                }
                for s in series
            ]
        }

    def gantt_payload(self, wf_id: int) -> dict:
        """Per-instance execution spans for a host Gantt view."""
        return self.cache.get(("gantt", wf_id), lambda: self._gantt_uncached(wf_id))

    def _gantt_uncached(self, wf_id: int) -> dict:
        from repro.core.timeseries import gantt

        self._require_workflow(wf_id)
        return {
            "rows": [
                {
                    "job": r.exec_job_id,
                    "try": r.try_number,
                    "host": r.hostname,
                    "submit": r.submit,
                    "start": r.start,
                    "end": r.end,
                }
                for r in gantt(self.query, wf_id)
            ]
        }

    def anomalies_payload(self, wf_id: int) -> dict:
        """Post-hoc anomaly scan of one workflow (and its descendants)."""
        return self.cache.get(
            ("anomalies", wf_id), lambda: self._anomalies_uncached(wf_id)
        )

    def _anomalies_uncached(self, wf_id: int) -> dict:
        from repro.core.anomaly import scan_archive

        detector = scan_archive(self.query, self._require_workflow(wf_id))
        return {
            "observations": detector.observations,
            "anomalies": [
                {
                    "transformation": a.transformation,
                    "kind": a.kind,
                    "runtime": a.runtime,
                    "score": a.score if a.score != float("inf") else None,
                    "job": a.job_id,
                    "timestamp": a.timestamp,
                }
                for a in detector.anomalies
            ],
        }

    def index_html(self) -> str:
        payload = self.workflows_payload()["workflows"]
        rows = "\n".join(
            f"<tr><td><a href='/api/workflow/{w['wf_id']}'>{w['wf_id']}</a></td>"
            f"<td>{w['wf_uuid']}</td><td>{w['dag_file_name']}</td>"
            f"<td>{w['state']}</td></tr>"
            for w in payload
        )
        return (
            "<!doctype html><html><head><title>Stampede Dashboard</title></head>"
            "<body><h1>Stampede Dashboard</h1>"
            "<table border='1'><tr><th>wf_id</th><th>uuid</th>"
            f"<th>dag</th><th>state</th></tr>{rows}</table></body></html>"
        )


class _Handler(BaseHTTPRequestHandler):
    data: DashboardData  # injected by Dashboard
    metrics: Optional[MetricsRegistry]  # injected by Dashboard

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path, _, raw_query = self.path.partition("?")
        try:
            params = dict(parse_qsl(raw_query))
        except Exception:  # pragma: no cover - parse_qsl is lenient
            params = {}
        if path == "/api/stream" or re.fullmatch(r"/api/workflow/(\d+)/stream", path):
            self._serve_stream(path, params)
            return
        try:
            body, content_type = self._route(path, params)
        except KeyError:
            self.send_error(404)
            return
        except ValueError as exc:
            self.send_error(400, str(exc))
            return
        except Exception as exc:  # pragma: no cover - defensive
            self.send_error(500, str(exc))
            return
        encoded = body.encode()
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _serve_stream(self, path: str, params: dict) -> None:
        """Serve ``text/event-stream`` — headers after the first frame is
        known, so an unknown workflow is still a clean 404."""
        m = re.fullmatch(r"/api/workflow/(\d+)/stream", path)
        wf_id = int(m.group(1)) if m else None
        try:
            limit = int(params["limit"]) if "limit" in params else None
            timeout = min(float(params.get("timeout", 30.0)), _MAX_WAIT_SECONDS)
            frames = self.data.feed.sse_events(wf_id=wf_id, limit=limit, timeout=timeout)
            first = next(frames)
        except KeyError:
            self.send_error(404)
            return
        except ValueError as exc:
            self.send_error(400, str(exc))
            return
        except StopIteration:  # pragma: no cover - limit=0
            first = b""
            frames = iter(())
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            self.wfile.write(first)
            self.wfile.flush()
            for frame in frames:
                self.wfile.write(frame)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            # the viewer closed its end mid-stream: a normal disconnect,
            # not a server error
            pass

    def _route(self, path: str, params: Optional[dict] = None) -> Tuple[str, str]:
        params = params or {}
        if path == "/" or path == "/index.html":
            return self.data.index_html(), "text/html"
        if path == "/metrics":
            registry = self.metrics if self.metrics is not None else get_registry()
            return render_prometheus(registry), PROMETHEUS_CONTENT_TYPE
        if path == "/api/workflows":
            return json.dumps(self.data.workflows_payload()), "application/json"
        m = re.fullmatch(r"/api/workflow/(\d+)", path)
        if m:
            return (
                json.dumps(self.data.workflow_payload(int(m.group(1)))),
                "application/json",
            )
        m = re.fullmatch(r"/api/workflow/(\d+)/jobs", path)
        if m:
            return (
                json.dumps(self.data.jobs_payload(int(m.group(1)))),
                "application/json",
            )
        m = re.fullmatch(r"/api/workflow/(\d+)/progress", path)
        if m:
            return (
                json.dumps(self.data.progress_payload(int(m.group(1)))),
                "application/json",
            )
        m = re.fullmatch(r"/api/workflow/(\d+)/anomalies", path)
        if m:
            return (
                json.dumps(self.data.anomalies_payload(int(m.group(1)))),
                "application/json",
            )
        m = re.fullmatch(r"/api/workflow/(\d+)/gantt", path)
        if m:
            return (
                json.dumps(self.data.gantt_payload(int(m.group(1)))),
                "application/json",
            )
        m = re.fullmatch(r"/api/poll", path) or re.fullmatch(
            r"/api/workflow/(\d+)/poll", path
        )
        if m:
            wf_id = int(m.group(1)) if m.groups() else None
            since = int(params.get("since", -1))
            timeout = float(params.get("timeout", 25.0))
            return (
                json.dumps(self.data.poll_payload(wf_id, since, timeout)),
                "application/json",
            )
        if path.startswith("/api/"):
            # a recognizably-API path that matched no route: the request
            # itself is malformed (non-numeric id, bogus sub-resource)
            raise ValueError(f"malformed API path {path!r}")
        raise KeyError(path)

    def log_message(self, *args) -> None:  # silence request logging
        pass


class Dashboard:
    """The embedded web server; serves a StampedeArchive on localhost.

    ``metrics`` selects the registry behind ``/metrics``; the default
    (None) resolves the process registry lazily per scrape, so a
    dashboard started before instrumentation still sees it.
    """

    def __init__(
        self,
        archive: StampedeArchive,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.data = DashboardData(archive)
        if metrics is not None:
            bind_live(
                metrics, cache=self.data.cache, feed=self.data.feed, archive=archive
            )
        handler = type(
            "BoundHandler", (_Handler,), {"data": self.data, "metrics": metrics}
        )
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "Dashboard":
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "Dashboard":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def main(argv=None) -> int:
    """stampede-dashboard: serve an archive file over HTTP.

    Example::

        stampede-dashboard sqlite:///run.db --port 8080
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="stampede-dashboard",
        description="Serve the Stampede performance dashboard for an archive.",
    )
    parser.add_argument("connString", help="e.g. sqlite:///run.db")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="port to bind (default: ephemeral)")
    parser.add_argument(
        "--once", action="store_true",
        help="print the URL and exit immediately (for scripting/tests)",
    )
    args = parser.parse_args(argv)
    archive = StampedeArchive.open(args.connString)
    dashboard = Dashboard(archive, host=args.host, port=args.port).start()
    print(f"stampede dashboard at {dashboard.url}")
    if args.once:
        dashboard.stop()
        return 0
    try:  # pragma: no cover - interactive loop
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover
        dashboard.stop()
    return 0
