"""Incremental rollups: materialized statistics maintained at the writer.

The full-scan read path (``workflow_statistics``) recomputes Table I/II
aggregates from the base tables on every request — O(archive) per query.
This module maintains the same aggregates *incrementally*, inside the
loader's flush transaction, so dashboard reads become O(1) point lookups
regardless of archive size (the CMS-dashboard / WMArchive
rollup-near-the-writer pattern from PAPERS.md).

Consistency contract
--------------------
:class:`RollupMaintainer` observes the loader's journal: every buffered
insert/update is folded into an in-memory delta bundle, and
:meth:`RollupMaintainer.apply` replays that bundle inside the same
backend transaction that commits the batch rows and the checkpoint.
Therefore:

* rollup rows are exactly as durable and exactly as current as the
  event rows they summarize — a kill at any point leaves both sides of
  the boundary consistent, and resume re-derives the same deltas;
* every delta is **additive** or a **monotone merge** (min ``started``,
  max ``ended``/``restarts``, min/max runtimes), so re-running the
  read-modify-write after a transient rollback converges;
* ``rollup_meta.commit_seq`` increments once per applying flush — read
  caches invalidate on it instead of a TTL.

Reads (:func:`rollup_statistics`) return ``None`` when the archive has
no (or incomplete) rollup coverage, and ``workflow_statistics`` falls
back to the full scan; :func:`rebuild_rollups` backfills legacy
archives and :func:`verify_rollups` asserts parity with the scan.
"""
from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobEdgeRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    RollupHostBucketRow,
    RollupHostRow,
    RollupMetaRow,
    RollupTypeRow,
    RollupWorkflowRow,
    TaskEdgeRow,
    TaskRow,
    WorkflowRow,
    WorkflowStateRow,
)
from repro.model.states import WorkflowState
from repro.schema.stampede import SUCCESS

__all__ = [
    "TIERS",
    "UNKNOWN_HOST",
    "RollupMaintainer",
    "commit_seq",
    "last_commit_ts",
    "rollup_statistics",
    "rebuild_rollups",
    "verify_rollups",
    "drop_rollups",
    "main",
]

#: downsampling tiers for the per-host time series, in seconds; buckets
#: are epoch-aligned (``floor(start_time / tier)``) so they merge across
#: workflows, shards, and rebuilds without re-binning
TIERS: Tuple[int, ...] = (60, 600, 3600)

#: hostname bucket for job instances not (yet) attached to a host —
#: mirrors the scan's ``hostname = "unknown"`` attribution
UNKNOWN_HOST = "unknown"

_META_SEQ = "commit_seq"
_META_TS = "last_commit_ts"


class _Bundle:
    """Pending rollup deltas for the next flush transaction."""

    __slots__ = (
        "wf_new",
        "wf_add",
        "wf_started",
        "wf_ended",
        "wf_restarts",
        "types",
        "hosts",
        "buckets",
    )

    def __init__(self) -> None:
        # wf_id -> identity fields of a brand-new rollup_workflow row
        self.wf_new: Dict[int, Dict[str, Any]] = {}
        # wf_id -> {column: additive delta} (may be negative: outcome moves)
        self.wf_add: Dict[int, Dict[str, float]] = {}
        self.wf_started: Dict[int, float] = {}  # min-merge
        self.wf_ended: Dict[int, Tuple[float, Optional[int]]] = {}  # max-merge
        self.wf_restarts: Dict[int, int] = {}  # max-merge
        # (wf_id, transformation) -> [count, succ, fail, min, max, total]
        self.types: Dict[Tuple[int, str], List[float]] = {}
        # (wf_id, hostname) -> [jobs, runtime]
        self.hosts: Dict[Tuple[int, str], List[float]] = {}
        # (wf_id, hostname, tier, bucket) -> runtime
        self.buckets: Dict[Tuple[int, str, int, int], float] = {}

    def empty(self) -> bool:
        return not (
            self.wf_new
            or self.wf_add
            or self.wf_started
            or self.wf_ended
            or self.wf_restarts
            or self.types
            or self.hosts
            or self.buckets
        )


class RollupMaintainer:
    """Folds the loader journal into rollup deltas; applies them in-txn.

    Observation happens as the loader buffers work (``observe_insert`` /
    ``observe_update``), tracking state (task outcomes, last attempts,
    host attachments) lives in JSON-serializable maps that ride the
    loader checkpoint, and :meth:`apply` runs inside ``_flush_once`` so
    a retried transaction re-reads and re-merges idempotently.  The
    bundle is cleared by :meth:`commit` only after the flush commits —
    a failed flush keeps both the journal and the bundle for the retry.
    """

    def __init__(self, archive: Any):
        self.archive = archive
        self._bundle = _Bundle()
        # -- tracking state (checkpointed) ---------------------------------
        # wf_id -> known abs_task_ids (tasks with a TaskRow)
        self._task_rows: Dict[int, Set[str]] = {}
        # wf_id -> {abs_task_id: counted outcome exitcode}
        self._task_outcome: Dict[int, Dict[str, int]] = {}
        # wf_id -> {abs_task_id: outcome seen before its task.info}
        self._orphan_outcome: Dict[int, Dict[str, int]] = {}
        # job_id -> [wf_id, attempts, max_submit_seq, last_exit or None]
        self._jobs: Dict[int, List[Any]] = {}
        # job_instance_id -> [wf_id, job_id, submit_seq]
        self._inst: Dict[int, List[int]] = {}
        # job_instance_id -> attached hostname
        self._inst_host: Dict[int, str] = {}
        # job instances marked as sub-workflow wrappers
        self._inst_subwf: Set[int] = set()
        # job_instance_id -> invocation wall already credited (for the
        # retroactive subtraction when a subwf mapping attaches later)
        self._inst_wall: Dict[int, float] = {}
        # host_id -> hostname
        self._hosts: Dict[int, str] = {}
        # unattached instances' credits parked under UNKNOWN_HOST:
        # job_instance_id -> [jobs, runtime, {(tier, bucket): runtime}]
        self._pending_host: Dict[int, List[Any]] = {}

    # -- delta helpers -------------------------------------------------------
    def _add(self, wf_id: int, column: str, delta: float) -> None:
        cols = self._bundle.wf_add.setdefault(wf_id, {})
        cols[column] = cols.get(column, 0) + delta

    def _host_add(self, wf_id: int, hostname: str, jobs: int, runtime: float) -> None:
        entry = self._bundle.hosts.setdefault((wf_id, hostname), [0, 0.0])
        entry[0] += jobs
        entry[1] += runtime

    def _bucket_add(
        self, wf_id: int, hostname: str, tier: int, bucket: int, runtime: float
    ) -> None:
        key = (wf_id, hostname, tier, bucket)
        self._bundle.buckets[key] = self._bundle.buckets.get(key, 0.0) + runtime

    # -- journal observation -------------------------------------------------
    def observe_insert(self, entity: Any) -> None:
        etype = type(entity)
        if etype is JobStateRow:
            inst = self._inst.get(entity.job_instance_id)
            if inst is not None:
                self._add(inst[0], "events", 1)
        elif etype is InvocationRow:
            self._on_invocation(entity)
        elif etype is JobInstanceRow:
            self._on_job_instance(entity)
        elif etype is TaskRow:
            self._on_task(entity)
        elif etype is JobRow:
            self._jobs[entity.job_id] = [entity.wf_id, 0, -1, None]
            self._add(entity.wf_id, "jobs_total", 1)
            self._add(entity.wf_id, "events", 1)
        elif etype is HostRow:
            self._hosts[entity.host_id] = entity.hostname
            self._add(entity.wf_id, "events", 1)
        elif etype is WorkflowStateRow:
            self._on_workflow_state(entity)
        elif etype is WorkflowRow:
            self._bundle.wf_new[entity.wf_id] = {
                "wf_uuid": entity.wf_uuid,
                "parent_wf_id": entity.parent_wf_id,
                "root_wf_id": entity.root_wf_id,
            }
            self._add(entity.wf_id, "events", 1)
        elif etype in (TaskEdgeRow, JobEdgeRow):
            self._add(entity.wf_id, "events", 1)
        # ObsEventRow and anything else: workflow-independent, no rollup

    def observe_update(
        self, etype: type, values: Dict[str, Any], where: Dict[str, Any]
    ) -> None:
        if etype is not JobInstanceRow:
            return
        ji_id = where.get("job_instance_id")
        if ji_id is None:
            return
        if "host_id" in values:
            self._on_host_attach(ji_id, values["host_id"])
        if "subwf_id" in values:
            self._on_subwf_attach(ji_id)
        if "exitcode" in values:
            self._on_instance_end(
                ji_id, values.get("exitcode"), values.get("local_duration")
            )

    # -- per-entity logic ----------------------------------------------------
    def _on_task(self, task: TaskRow) -> None:
        wf_id = task.wf_id
        self._task_rows.setdefault(wf_id, set()).add(task.abs_task_id)
        self._add(wf_id, "tasks_total", 1)
        self._add(wf_id, "events", 1)
        # an outcome that arrived before its task.info (tolerant-mode
        # ordering violation) starts counting now, like the scan would
        orphan = self._orphan_outcome.get(wf_id, {}).pop(task.abs_task_id, None)
        if orphan is not None:
            self._task_outcome.setdefault(wf_id, {})[task.abs_task_id] = orphan
            self._add(
                wf_id,
                "tasks_succeeded" if orphan == SUCCESS else "tasks_failed",
                1,
            )

    def _on_workflow_state(self, state: WorkflowStateRow) -> None:
        wf_id = state.wf_id
        bundle = self._bundle
        self._add(wf_id, "events", 1)
        restarts = bundle.wf_restarts.get(wf_id, 0)
        if state.restart_count > restarts:
            bundle.wf_restarts[wf_id] = state.restart_count
        if state.state == WorkflowState.WORKFLOW_STARTED.value:
            started = bundle.wf_started.get(wf_id)
            if started is None or state.timestamp < started:
                bundle.wf_started[wf_id] = state.timestamp
        elif state.state == WorkflowState.WORKFLOW_TERMINATED.value:
            ended = bundle.wf_ended.get(wf_id)
            # ties go to the later-observed event, matching the scan's
            # "last terminated state in timestamp order" rule
            if ended is None or state.timestamp >= ended[0]:
                bundle.wf_ended[wf_id] = (state.timestamp, state.status)

    def _on_job_instance(self, inst: JobInstanceRow) -> None:
        job = self._jobs.get(inst.job_id)
        if job is None:
            return  # instance of a job this maintainer never saw
        wf_id = job[0]
        seq = inst.job_submit_seq
        self._inst[inst.job_instance_id] = [wf_id, inst.job_id, seq]
        self._add(wf_id, "job_instances", 1)
        self._add(wf_id, "events", 1)
        job[1] += 1  # attempts
        if job[1] > 1:
            self._add(wf_id, "jobs_retries", 1)
        if seq >= job[2]:
            # this attempt is now the job's last: the previous last
            # attempt's outcome no longer decides the job
            last_exit = job[3]
            if last_exit is not None:
                self._add(
                    wf_id,
                    "jobs_succeeded" if last_exit == SUCCESS else "jobs_failed",
                    -1,
                )
            job[2] = seq
            job[3] = None
        # until a host attaches, the instance counts under "unknown"
        self._pending_host[inst.job_instance_id] = [1, 0.0, {}]
        self._host_add(wf_id, UNKNOWN_HOST, 1, 0.0)

    def _on_instance_end(
        self, ji_id: int, exitcode: Optional[int], local_duration: Optional[float]
    ) -> None:
        inst = self._inst.get(ji_id)
        if inst is None:
            return
        wf_id, job_id, seq = inst
        job = self._jobs.get(job_id)
        if job is not None and seq == job[2] and exitcode is not None:
            if job[3] is not None:
                self._add(
                    wf_id,
                    "jobs_succeeded" if job[3] == SUCCESS else "jobs_failed",
                    -1,
                )
            job[3] = exitcode
            self._add(
                wf_id,
                "jobs_succeeded" if exitcode == SUCCESS else "jobs_failed",
                1,
            )
        runtime = local_duration or 0.0
        if runtime:
            hostname = self._inst_host.get(ji_id)
            if hostname is None:
                pending = self._pending_host.setdefault(ji_id, [0, 0.0, {}])
                pending[1] += runtime
                self._host_add(wf_id, UNKNOWN_HOST, 0, runtime)
            else:
                self._host_add(wf_id, hostname, 0, runtime)

    def _on_host_attach(self, ji_id: int, host_id: Optional[int]) -> None:
        inst = self._inst.get(ji_id)
        hostname = self._hosts.get(host_id) if host_id is not None else None
        if inst is None or hostname is None:
            return
        if ji_id in self._inst_host:
            return  # engines emit one host_info per instance; dedupe
        wf_id = inst[0]
        self._inst_host[ji_id] = hostname
        pending = self._pending_host.pop(ji_id, None)
        if pending is not None:
            jobs, runtime, bins = pending
            if jobs or runtime:
                self._host_add(wf_id, UNKNOWN_HOST, -jobs, -runtime)
                self._host_add(wf_id, hostname, jobs, runtime)
            for (tier, bucket), dur in bins.items():
                self._bucket_add(wf_id, UNKNOWN_HOST, tier, bucket, -dur)
                self._bucket_add(wf_id, hostname, tier, bucket, dur)

    def _on_subwf_attach(self, ji_id: int) -> None:
        if ji_id in self._inst_subwf:
            return  # a re-resolved deferred map after a failed flush
        self._inst_subwf.add(ji_id)
        inst = self._inst.get(ji_id)
        credited = self._inst_wall.pop(ji_id, 0.0)
        if inst is not None and credited:
            # its invocations span the child run, whose own invocations
            # are already counted: take the credit back
            self._add(inst[0], "invocation_wall", -credited)

    def _on_invocation(self, inv: InvocationRow) -> None:
        wf_id = inv.wf_id
        ji_id = inv.job_instance_id
        duration = inv.remote_duration or 0.0
        ok = inv.exitcode == SUCCESS
        self._add(wf_id, "invocations", 1)
        self._add(wf_id, "events", 1)
        if ji_id not in self._inst_subwf:
            self._add(wf_id, "invocation_wall", duration)
            self._inst_wall[ji_id] = self._inst_wall.get(ji_id, 0.0) + duration
        # per-transformation breakdown (Table II)
        entry = self._bundle.types.get((wf_id, inv.transformation))
        if entry is None:
            self._bundle.types[(wf_id, inv.transformation)] = [
                1, 1 if ok else 0, 0 if ok else 1, duration, duration, duration,
            ]
        else:
            entry[0] += 1
            entry[1 if ok else 2] += 1
            entry[3] = min(entry[3], duration)
            entry[4] = max(entry[4], duration)
            entry[5] += duration
        # task outcome: any success wins (scan's _accumulate_counts rule)
        if inv.abs_task_id is not None:
            self._merge_task_outcome(wf_id, inv.abs_task_id, inv.exitcode)
        # per-host time series, one bucket per downsampling tier
        hostname = self._inst_host.get(ji_id)
        bins = None
        if hostname is None:
            pending = self._pending_host.setdefault(ji_id, [0, 0.0, {}])
            bins = pending[2]
            hostname = UNKNOWN_HOST
        for tier in TIERS:
            bucket = int(inv.start_time // tier)
            self._bucket_add(wf_id, hostname, tier, bucket, duration)
            if bins is not None:
                key = (tier, bucket)
                bins[key] = bins.get(key, 0.0) + duration

    def _merge_task_outcome(self, wf_id: int, abs_task_id: str, exitcode: int) -> None:
        if abs_task_id in self._task_rows.get(wf_id, ()):
            outcomes = self._task_outcome.setdefault(wf_id, {})
            prev = outcomes.get(abs_task_id)
            if prev is None:
                outcomes[abs_task_id] = exitcode
                self._add(
                    wf_id,
                    "tasks_succeeded" if exitcode == SUCCESS else "tasks_failed",
                    1,
                )
            elif prev != SUCCESS:
                if exitcode == SUCCESS:
                    self._add(wf_id, "tasks_failed", -1)
                    self._add(wf_id, "tasks_succeeded", 1)
                outcomes[abs_task_id] = exitcode
        else:
            orphans = self._orphan_outcome.setdefault(wf_id, {})
            prev = orphans.get(abs_task_id)
            if prev is None or prev != SUCCESS:
                orphans[abs_task_id] = exitcode

    # -- transactional apply -------------------------------------------------
    def apply(self, archive: Optional[Any] = None) -> Tuple[int, int]:
        """Merge the pending bundle into the rollup tables.

        Must run inside the flush transaction.  Read-modify-write per
        key: a transient rollback re-runs this against the restored
        rows, so the merge converges to the same state on every
        attempt.  Returns ``(rows_inserted, rows_updated)``.
        """
        archive = archive if archive is not None else self.archive
        bundle = self._bundle
        if bundle.empty():
            return (0, 0)
        inserted = updated = 0
        seq = int(_meta_value(archive, _META_SEQ, 0.0)) + 1
        wf_ids = (
            set(bundle.wf_new)
            | set(bundle.wf_add)
            | set(bundle.wf_started)
            | set(bundle.wf_ended)
            | set(bundle.wf_restarts)
        )
        for wf_id in sorted(wf_ids):
            row = (
                archive.query(RollupWorkflowRow).eq("wf_id", wf_id).first()
            )
            new = bundle.wf_new.get(wf_id, {})
            if row is None:
                row = RollupWorkflowRow(wf_id=wf_id, wf_uuid="")
                fresh = True
            else:
                fresh = False
            for column, value in new.items():
                setattr(row, column, value)
            for column, delta in bundle.wf_add.get(wf_id, {}).items():
                setattr(row, column, getattr(row, column) + delta)
            started = bundle.wf_started.get(wf_id)
            if started is not None and (row.started is None or started < row.started):
                row.started = started
            ended = bundle.wf_ended.get(wf_id)
            if ended is not None and (row.ended is None or ended[0] >= row.ended):
                row.ended, row.status = ended
            restarts = bundle.wf_restarts.get(wf_id)
            if restarts is not None and restarts > row.restarts:
                row.restarts = restarts
            row.updated_seq = seq
            if fresh:
                archive.insert(row)
                inserted += 1
            else:
                values = {f: getattr(row, f) for f in _WF_MUTABLE}
                archive.update(RollupWorkflowRow, values, {"wf_id": wf_id})
                updated += 1
        for (wf_id, transformation), delta in bundle.types.items():
            row = (
                archive.query(RollupTypeRow)
                .eq("wf_id", wf_id)
                .eq("transformation", transformation)
                .first()
            )
            if row is None:
                archive.insert(
                    RollupTypeRow(
                        wf_id=wf_id,
                        transformation=transformation,
                        count=int(delta[0]),
                        succeeded=int(delta[1]),
                        failed=int(delta[2]),
                        min_runtime=delta[3],
                        max_runtime=delta[4],
                        total_runtime=delta[5],
                    )
                )
                inserted += 1
            else:
                archive.update(
                    RollupTypeRow,
                    {
                        "count": row.count + int(delta[0]),
                        "succeeded": row.succeeded + int(delta[1]),
                        "failed": row.failed + int(delta[2]),
                        "min_runtime": min(row.min_runtime, delta[3]),
                        "max_runtime": max(row.max_runtime, delta[4]),
                        "total_runtime": row.total_runtime + delta[5],
                    },
                    {"wf_id": wf_id, "transformation": transformation},
                )
                updated += 1
        for (wf_id, hostname), (jobs, runtime) in bundle.hosts.items():
            row = (
                archive.query(RollupHostRow)
                .eq("wf_id", wf_id)
                .eq("hostname", hostname)
                .first()
            )
            if row is None:
                archive.insert(
                    RollupHostRow(
                        wf_id=wf_id,
                        hostname=hostname,
                        jobs=int(jobs),
                        runtime=runtime,
                    )
                )
                inserted += 1
            else:
                archive.update(
                    RollupHostRow,
                    {"jobs": row.jobs + int(jobs), "runtime": row.runtime + runtime},
                    {"wf_id": wf_id, "hostname": hostname},
                )
                updated += 1
        for (wf_id, hostname, tier, bucket), runtime in bundle.buckets.items():
            row = (
                archive.query(RollupHostBucketRow)
                .eq("wf_id", wf_id)
                .eq("hostname", hostname)
                .eq("tier", tier)
                .eq("bucket", bucket)
                .first()
            )
            if row is None:
                archive.insert(
                    RollupHostBucketRow(
                        wf_id=wf_id,
                        hostname=hostname,
                        tier=tier,
                        bucket=bucket,
                        runtime=runtime,
                    )
                )
                inserted += 1
            else:
                archive.update(
                    RollupHostBucketRow,
                    {"runtime": row.runtime + runtime},
                    {
                        "wf_id": wf_id,
                        "hostname": hostname,
                        "tier": tier,
                        "bucket": bucket,
                    },
                )
                updated += 1
        _meta_set(archive, _META_SEQ, float(seq))
        _meta_set(archive, _META_TS, time.time())
        return (inserted, updated)

    def commit(self) -> None:
        """Discard the applied bundle (call only after the flush commits)."""
        self._bundle = _Bundle()

    # -- checkpoint state ----------------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        """JSON-serializable tracking state (the bundle is *not* included:
        it commits in the same transaction as the checkpoint, so a resume
        re-derives any unflushed deltas from the re-read events)."""
        return {
            "task_rows": {
                str(wf): sorted(tasks) for wf, tasks in self._task_rows.items()
            },
            "task_outcome": {
                str(wf): dict(outcomes)
                for wf, outcomes in self._task_outcome.items()
            },
            "orphan_outcome": {
                str(wf): dict(outcomes)
                for wf, outcomes in self._orphan_outcome.items()
            },
            "jobs": {str(job): list(entry) for job, entry in self._jobs.items()},
            "inst": {str(ji): list(entry) for ji, entry in self._inst.items()},
            "inst_host": {str(ji): host for ji, host in self._inst_host.items()},
            "inst_subwf": sorted(self._inst_subwf),
            "inst_wall": {str(ji): wall for ji, wall in self._inst_wall.items()},
            "hosts": {str(hid): name for hid, name in self._hosts.items()},
            "pending_host": {
                str(ji): [
                    entry[0],
                    entry[1],
                    [[tier, bucket, dur] for (tier, bucket), dur in entry[2].items()],
                ]
                for ji, entry in self._pending_host.items()
            },
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._bundle = _Bundle()
        self._task_rows = {
            int(wf): set(tasks) for wf, tasks in state.get("task_rows", {}).items()
        }
        self._task_outcome = {
            int(wf): {str(t): int(e) for t, e in outcomes.items()}
            for wf, outcomes in state.get("task_outcome", {}).items()
        }
        self._orphan_outcome = {
            int(wf): {str(t): int(e) for t, e in outcomes.items()}
            for wf, outcomes in state.get("orphan_outcome", {}).items()
        }
        self._jobs = {
            int(job): [
                int(entry[0]),
                int(entry[1]),
                int(entry[2]),
                None if entry[3] is None else int(entry[3]),
            ]
            for job, entry in state.get("jobs", {}).items()
        }
        self._inst = {
            int(ji): [int(v) for v in entry]
            for ji, entry in state.get("inst", {}).items()
        }
        self._inst_host = {
            int(ji): str(host) for ji, host in state.get("inst_host", {}).items()
        }
        self._inst_subwf = {int(ji) for ji in state.get("inst_subwf", [])}
        self._inst_wall = {
            int(ji): float(wall) for ji, wall in state.get("inst_wall", {}).items()
        }
        self._hosts = {
            int(hid): str(name) for hid, name in state.get("hosts", {}).items()
        }
        self._pending_host = {
            int(ji): [
                int(entry[0]),
                float(entry[1]),
                {
                    (int(tier), int(bucket)): float(dur)
                    for tier, bucket, dur in entry[2]
                },
            ]
            for ji, entry in state.get("pending_host", {}).items()
        }


#: rollup_workflow columns apply() may change after the insert
_WF_MUTABLE = (
    "wf_uuid",
    "parent_wf_id",
    "root_wf_id",
    "events",
    "tasks_total",
    "tasks_succeeded",
    "tasks_failed",
    "jobs_total",
    "jobs_succeeded",
    "jobs_failed",
    "jobs_retries",
    "job_instances",
    "invocations",
    "invocation_wall",
    "started",
    "ended",
    "status",
    "restarts",
    "updated_seq",
)


# -- rollup_meta ------------------------------------------------------------
def _meta_value(archive: Any, key: str, default: float) -> float:
    row = archive.query(RollupMetaRow).eq("key", key).first()
    return row.value if row is not None else default


def _meta_set(archive: Any, key: str, value: float) -> None:
    if archive.update(RollupMetaRow, {"value": value}, {"key": key}) == 0:
        archive.insert(RollupMetaRow(key=key, value=value))


def commit_seq(archive: Any) -> int:
    """The rollup commit sequence: bumps once per applying flush.

    On a federated archive every source contributes its own counter;
    the sum is monotone across the set, which is all a cache-version
    needs.  Returns 0 for an archive with no rollups yet.
    """
    rows = archive.query(RollupMetaRow).eq("key", _META_SEQ).all()
    return int(sum(row.value for row in rows))


def last_commit_ts(archive: Any) -> Optional[float]:
    """Wall-clock time of the newest rollup commit (None before any)."""
    rows = archive.query(RollupMetaRow).eq("key", _META_TS).all()
    return max((row.value for row in rows), default=None)


def drop_rollups(archive: Any, wf_ids: List[int]) -> int:
    """Delete the rollup rows of the given workflows (tiering path).

    Runs in the caller's transaction; bumps the commit sequence so read
    caches notice the disappearance.  Returns rows removed.
    """
    if not wf_ids:
        return 0
    removed = 0
    for etype in (
        RollupWorkflowRow,
        RollupTypeRow,
        RollupHostRow,
        RollupHostBucketRow,
    ):
        removed += archive.delete(etype, {"wf_id": list(wf_ids)})
    if removed:
        _meta_set(archive, _META_SEQ, _meta_value(archive, _META_SEQ, 0.0) + 1)
        _meta_set(archive, _META_TS, time.time())
    return removed


# -- read path --------------------------------------------------------------
def rollup_statistics(
    archive_or_query: Any,
    wf_id: Optional[int] = None,
    wf_uuid: Optional[str] = None,
    include_descendants: bool = True,
    include_jobs: bool = True,
):
    """The ``workflow_statistics`` bundle served from rollup rows.

    O(descendants) point lookups instead of O(archive) scans.  Returns
    ``None`` when the workflow (or any descendant) has no rollup row —
    the caller falls back to the full scan.  The ``hosts`` breakdown
    keys its ``bins`` by the epoch-aligned 60 s bucket index rather
    than the scan's origin-relative bin; bin *sums* are identical.
    """
    from repro.core.statistics import (
        HostUsage,
        TypeBreakdown,
        WorkflowStatistics,
    )
    from repro.query.api import StampedeQuery, WorkflowSummaryCounts

    query = (
        archive_or_query
        if isinstance(archive_or_query, StampedeQuery)
        else StampedeQuery(archive_or_query)
    )
    archive = query.archive
    if wf_id is None:
        if wf_uuid is not None:
            wf = query.workflow_by_uuid(wf_uuid)
            if wf is None:
                raise ValueError(f"no workflow with uuid {wf_uuid!r}")
        else:
            roots = query.root_workflows()
            if len(roots) != 1:
                raise ValueError(
                    f"archive holds {len(roots)} root workflows; specify wf_id"
                )
            wf = roots[0]
        wf_id = wf.wf_id
    else:
        wf = query.workflow(wf_id)
        if wf is None:
            raise ValueError(f"no workflow with wf_id {wf_id}")

    descendants = query.descendant_workflows(wf_id) if include_descendants else []
    wf_ids = [wf_id] + [w.wf_id for w in descendants]
    rollups: Dict[int, RollupWorkflowRow] = {}
    for current in wf_ids:
        row = archive.query(RollupWorkflowRow).eq("wf_id", current).first()
        if row is None:
            return None  # incomplete coverage: let the scan answer
        rollups[current] = row

    counts = WorkflowSummaryCounts()
    cumulative = 0.0
    for current in wf_ids:
        row = rollups[current]
        counts.tasks_total += row.tasks_total
        counts.tasks_succeeded += row.tasks_succeeded
        counts.tasks_failed += row.tasks_failed
        counts.jobs_total += row.jobs_total
        counts.jobs_succeeded += row.jobs_succeeded
        counts.jobs_failed += row.jobs_failed
        counts.jobs_retries += row.jobs_retries
        cumulative += row.invocation_wall
    counts.tasks_incomplete = (
        counts.tasks_total - counts.tasks_succeeded - counts.tasks_failed
    )
    counts.jobs_incomplete = (
        counts.jobs_total - counts.jobs_succeeded - counts.jobs_failed
    )
    for sub in descendants:
        row = rollups[sub.wf_id]
        counts.subwf_total += 1
        if row.ended is None:
            counts.subwf_incomplete += 1
        elif row.status == SUCCESS:
            counts.subwf_succeeded += 1
        else:
            counts.subwf_failed += 1
        counts.subwf_retries += row.restarts

    root_row = rollups[wf_id]
    wall_time = (
        root_row.ended - root_row.started
        if root_row.started is not None and root_row.ended is not None
        else None
    )

    breakdown: Dict[str, TypeBreakdown] = {}
    for current in wf_ids:
        for trow in archive.query(RollupTypeRow).eq("wf_id", current).all():
            entry = breakdown.get(trow.transformation)
            if entry is None:
                breakdown[trow.transformation] = TypeBreakdown(
                    type_name=trow.transformation,
                    count=trow.count,
                    succeeded=trow.succeeded,
                    failed=trow.failed,
                    min_runtime=trow.min_runtime,
                    max_runtime=trow.max_runtime,
                    total_runtime=trow.total_runtime,
                )
            else:
                entry.count += trow.count
                entry.succeeded += trow.succeeded
                entry.failed += trow.failed
                entry.min_runtime = min(entry.min_runtime, trow.min_runtime)
                entry.max_runtime = max(entry.max_runtime, trow.max_runtime)
                entry.total_runtime += trow.total_runtime

    hosts: Dict[str, HostUsage] = {}
    for current in wf_ids:
        for hrow in archive.query(RollupHostRow).eq("wf_id", current).all():
            if not hrow.jobs and abs(hrow.runtime) <= 1e-9:
                continue  # fully moved off "unknown": an empty residue row
            usage = hosts.setdefault(hrow.hostname, HostUsage(hrow.hostname))
            usage.jobs += hrow.jobs
            usage.total_runtime += hrow.runtime
        for brow in (
            archive.query(RollupHostBucketRow)
            .eq("wf_id", current)
            .eq("tier", TIERS[0])
            .all()
        ):
            if abs(brow.runtime) <= 1e-9 and brow.hostname not in hosts:
                continue  # moved-off residue for a host with no real usage
            usage = hosts.setdefault(brow.hostname, HostUsage(brow.hostname))
            usage.bins[brow.bucket] = usage.bins.get(brow.bucket, 0.0) + brow.runtime

    return WorkflowStatistics(
        wf_id=wf_id,
        wf_uuid=wf.wf_uuid,
        wall_time=wall_time,
        cumulative_job_wall_time=cumulative,
        counts=counts,
        breakdown=sorted(breakdown.values(), key=lambda b: b.type_name),
        jobs=query.job_details(wf_id) if include_jobs else [],
        hosts=sorted(hosts.values(), key=lambda u: u.hostname),
    )


# -- rebuild / verify -------------------------------------------------------
def _scan_rollup(query: Any, wf: WorkflowRow) -> Tuple[
    RollupWorkflowRow,
    List[RollupTypeRow],
    List[RollupHostRow],
    List[RollupHostBucketRow],
]:
    """Compute one workflow's rollup rows from the base tables."""
    wf_id = wf.wf_id
    states = query.workflow_states(wf_id)
    started = next(
        (s.timestamp for s in states
         if s.state == WorkflowState.WORKFLOW_STARTED.value),
        None,
    )
    ended = status = None
    for s in states:
        if s.state == WorkflowState.WORKFLOW_TERMINATED.value:
            if ended is None or s.timestamp >= ended:
                ended, status = s.timestamp, s.status
    restarts = max((s.restart_count for s in states), default=0)

    tasks = query.tasks(wf_id)
    invocations = query.invocations(wf_id)
    task_outcome: Dict[str, int] = {}
    for inv in invocations:
        if inv.abs_task_id is not None:
            prev = task_outcome.get(inv.abs_task_id)
            if prev is None or prev != SUCCESS:
                task_outcome[inv.abs_task_id] = inv.exitcode
    tasks_succeeded = tasks_failed = 0
    for task in tasks:
        outcome = task_outcome.get(task.abs_task_id)
        if outcome is None:
            continue
        if outcome == SUCCESS:
            tasks_succeeded += 1
        else:
            tasks_failed += 1

    jobs = query.jobs(wf_id)
    instances = query.job_instances(wf_id)
    by_job: Dict[int, List[Any]] = {}
    for inst in instances:
        by_job.setdefault(inst.job_id, []).append(inst)
    jobs_succeeded = jobs_failed = jobs_retries = 0
    for job in jobs:
        attempts = sorted(by_job.get(job.job_id, []), key=lambda i: i.job_submit_seq)
        jobs_retries += max(0, len(attempts) - 1)
        if attempts and attempts[-1].exitcode is not None:
            if attempts[-1].exitcode == SUCCESS:
                jobs_succeeded += 1
            else:
                jobs_failed += 1

    subwf_instances = {
        inst.job_instance_id for inst in instances if inst.subwf_id is not None
    }
    invocation_wall = sum(
        inv.remote_duration
        for inv in invocations
        if inv.job_instance_id not in subwf_instances
    )

    types: Dict[str, List[float]] = {}
    for inv in invocations:
        duration = inv.remote_duration or 0.0
        ok = inv.exitcode == SUCCESS
        entry = types.get(inv.transformation)
        if entry is None:
            types[inv.transformation] = [
                1, 1 if ok else 0, 0 if ok else 1, duration, duration, duration,
            ]
        else:
            entry[0] += 1
            entry[1 if ok else 2] += 1
            entry[3] = min(entry[3], duration)
            entry[4] = max(entry[4], duration)
            entry[5] += duration

    hosts_by_id = {h.host_id: h for h in query.hosts(wf_id)}
    jobs_by_id = {j.job_id: j for j in jobs}
    host_usage: Dict[str, List[float]] = {}
    buckets: Dict[Tuple[str, int, int], float] = {}
    inv_by_instance: Dict[int, List[Any]] = {}
    for inv in invocations:
        inv_by_instance.setdefault(inv.job_instance_id, []).append(inv)
    for inst in instances:
        if inst.job_id not in jobs_by_id:
            continue
        host = hosts_by_id.get(inst.host_id) if inst.host_id else None
        hostname = host.hostname if host else UNKNOWN_HOST
        entry = host_usage.setdefault(hostname, [0, 0.0])
        entry[0] += 1
        entry[1] += inst.local_duration or 0.0
        for inv in inv_by_instance.get(inst.job_instance_id, []):
            for tier in TIERS:
                key = (hostname, tier, int(inv.start_time // tier))
                buckets[key] = buckets.get(key, 0.0) + inv.remote_duration

    # mirror the maintainer's tally exactly: every observed row insert of
    # this workflow counts — the workflow row itself, states, tasks and
    # task edges, jobs and job edges, instances, per-instance jobstates,
    # invocations, and host registrations
    jobstates = sum(
        len(query.job_states(inst.job_instance_id)) for inst in instances
    )
    events = (
        1
        + len(states)
        + len(tasks)
        + len(query.task_edges(wf_id))
        + len(jobs)
        + len(query.job_edges(wf_id))
        + len(instances)
        + jobstates
        + len(invocations)
        + len(query.hosts(wf_id))
    )
    row = RollupWorkflowRow(
        wf_id=wf_id,
        wf_uuid=wf.wf_uuid,
        parent_wf_id=wf.parent_wf_id,
        root_wf_id=wf.root_wf_id,
        events=events,
        tasks_total=len(tasks),
        tasks_succeeded=tasks_succeeded,
        tasks_failed=tasks_failed,
        jobs_total=len(jobs),
        jobs_succeeded=jobs_succeeded,
        jobs_failed=jobs_failed,
        jobs_retries=jobs_retries,
        job_instances=len(instances),
        invocations=len(invocations),
        invocation_wall=invocation_wall,
        started=started,
        ended=ended,
        status=status,
        restarts=restarts,
    )
    type_rows = [
        RollupTypeRow(
            wf_id=wf_id,
            transformation=name,
            count=int(e[0]),
            succeeded=int(e[1]),
            failed=int(e[2]),
            min_runtime=e[3],
            max_runtime=e[4],
            total_runtime=e[5],
        )
        for name, e in sorted(types.items())
    ]
    host_rows = [
        RollupHostRow(wf_id=wf_id, hostname=name, jobs=int(e[0]), runtime=e[1])
        for name, e in sorted(host_usage.items())
    ]
    bucket_rows = [
        RollupHostBucketRow(
            wf_id=wf_id, hostname=name, tier=tier, bucket=bucket, runtime=runtime
        )
        for (name, tier, bucket), runtime in sorted(buckets.items())
    ]
    return row, type_rows, host_rows, bucket_rows


def rebuild_rollups(archive: Any) -> int:
    """Backfill rollup rows for an existing archive from a full scan.

    Drops any existing rollup rows and recomputes everything in one
    transaction, then bumps the commit sequence.  Returns the number of
    workflows rolled up.
    """
    from repro.query.api import StampedeQuery

    query = StampedeQuery(archive)
    workflows = query.workflows()
    with archive.transaction():
        for etype in (
            RollupWorkflowRow,
            RollupTypeRow,
            RollupHostRow,
            RollupHostBucketRow,
        ):
            archive.delete(etype, {})
        seq = int(_meta_value(archive, _META_SEQ, 0.0)) + 1
        for wf in workflows:
            row, type_rows, host_rows, bucket_rows = _scan_rollup(query, wf)
            row.updated_seq = seq
            archive.insert(row)
            for entity in type_rows + host_rows + bucket_rows:
                archive.insert(entity)
        _meta_set(archive, _META_SEQ, float(seq))
        _meta_set(archive, _META_TS, time.time())
    return len(workflows)


def verify_rollups(archive: Any, tolerance: float = 1e-6) -> List[str]:
    """Assert rollup reads match the full-scan computation.

    Compares every workflow without descendants and every root with
    them.  Returns a list of human-readable mismatches (empty = parity).
    The host time bins are compared by *sum* — the rollup keys buckets
    absolutely while the scan bins relative to the run origin.
    """
    from repro.core.statistics import workflow_statistics
    from repro.query.api import StampedeQuery

    query = StampedeQuery(archive)
    mismatches: List[str] = []
    workflows = query.workflows()
    targets = [(w, False) for w in workflows]
    targets += [(w, True) for w in workflows if w.parent_wf_id is None]
    for wf, include_descendants in targets:
        rolled = rollup_statistics(
            query,
            wf_id=wf.wf_id,
            include_descendants=include_descendants,
            include_jobs=False,
        )
        label = f"wf_id={wf.wf_id} descendants={include_descendants}"
        if rolled is None:
            mismatches.append(f"{label}: no rollup coverage")
            continue
        scanned = workflow_statistics(
            query,
            wf_id=wf.wf_id,
            include_descendants=include_descendants,
            include_jobs=False,
            prefer_rollup=False,
        )
        mismatches.extend(
            f"{label}: {issue}"
            for issue in _diff_statistics(rolled, scanned, tolerance)
        )
    return mismatches


def _diff_statistics(rolled: Any, scanned: Any, tolerance: float) -> List[str]:
    issues: List[str] = []

    def close(a: Optional[float], b: Optional[float]) -> bool:
        if a is None or b is None:
            return a is None and b is None
        return abs(a - b) <= tolerance

    if not close(rolled.wall_time, scanned.wall_time):
        issues.append(f"wall_time {rolled.wall_time} != {scanned.wall_time}")
    if not close(rolled.cumulative_job_wall_time, scanned.cumulative_job_wall_time):
        issues.append(
            "cumulative_job_wall_time "
            f"{rolled.cumulative_job_wall_time} != "
            f"{scanned.cumulative_job_wall_time}"
        )
    for field in (
        "tasks_total", "tasks_succeeded", "tasks_failed", "tasks_incomplete",
        "jobs_total", "jobs_succeeded", "jobs_failed", "jobs_incomplete",
        "jobs_retries", "subwf_total", "subwf_succeeded", "subwf_failed",
        "subwf_incomplete", "subwf_retries",
    ):
        a = getattr(rolled.counts, field)
        b = getattr(scanned.counts, field)
        if a != b:
            issues.append(f"counts.{field} {a} != {b}")
    rolled_types = {b.type_name: b for b in rolled.breakdown}
    scanned_types = {b.type_name: b for b in scanned.breakdown}
    if set(rolled_types) != set(scanned_types):
        issues.append(
            f"breakdown types {sorted(rolled_types)} != {sorted(scanned_types)}"
        )
    else:
        for name, a in rolled_types.items():
            b = scanned_types[name]
            for attr in (
                "count", "succeeded", "failed",
                "min_runtime", "max_runtime", "total_runtime",
            ):
                if not close(getattr(a, attr), getattr(b, attr)):
                    issues.append(
                        f"breakdown[{name}].{attr} "
                        f"{getattr(a, attr)} != {getattr(b, attr)}"
                    )
    rolled_hosts = {u.hostname: u for u in rolled.hosts}
    scanned_hosts = {u.hostname: u for u in scanned.hosts}
    if set(rolled_hosts) != set(scanned_hosts):
        issues.append(
            f"hosts {sorted(rolled_hosts)} != {sorted(scanned_hosts)}"
        )
    else:
        for name, a in rolled_hosts.items():
            b = scanned_hosts[name]
            if a.jobs != b.jobs:
                issues.append(f"hosts[{name}].jobs {a.jobs} != {b.jobs}")
            if not close(a.total_runtime, b.total_runtime):
                issues.append(
                    f"hosts[{name}].total_runtime "
                    f"{a.total_runtime} != {b.total_runtime}"
                )
            if not close(sum(a.bins.values()), sum(b.bins.values())):
                issues.append(
                    f"hosts[{name}] bin sum "
                    f"{sum(a.bins.values())} != {sum(b.bins.values())}"
                )
    return issues


# -- CLI --------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    """``stampede-rollup``: rebuild / verify / inspect archive rollups."""
    parser = argparse.ArgumentParser(
        prog="stampede-rollup",
        description="Maintain and verify the archive's materialized rollups.",
    )
    parser.add_argument(
        "command",
        choices=("rebuild", "verify", "status"),
        help="rebuild: backfill rollups from a full scan; verify: assert "
        "rollup/scan parity; status: print commit sequence and coverage",
    )
    parser.add_argument(
        "connString",
        help="archive to operate on (connection string, sqlite path, or "
        "shard directory — rebuild/verify visit every shard)",
    )
    args = parser.parse_args(argv)
    from repro.archive.shard import open_archive

    target = open_archive(args.connString)
    archives = getattr(target, "sources", [target])
    if args.command == "rebuild":
        total = 0
        for archive in archives:
            total += rebuild_rollups(archive)
        print(f"rebuilt rollups for {total} workflow(s)")
        return 0
    if args.command == "verify":
        failures = 0
        for archive in archives:
            for issue in verify_rollups(archive):
                print(f"MISMATCH {issue}")
                failures += 1
        if failures:
            print(f"{failures} mismatch(es)")
            return 1
        print("rollups match the full-scan statistics")
        return 0
    # status
    for index, archive in enumerate(archives):
        seq = commit_seq(archive)
        ts = last_commit_ts(archive)
        lag = time.time() - ts if ts is not None else None
        covered = archive.count(RollupWorkflowRow)
        workflows = archive.count(WorkflowRow)
        print(
            f"source {index}: commit_seq={seq} "
            f"coverage={covered}/{workflows} workflows "
            + (f"lag={lag:.1f}s" if lag is not None else "lag=n/a")
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
