"""stampede_analyzer: interactive workflow troubleshooting (paper §VII-B).

Connects to the Stampede data store, summarizes how many jobs succeeded
and failed, and for each failed job prints its last known state, the
location of its output and error files, and any captured stdout/stderr.
For hierarchical workflows it identifies failures at the top level and
lets the user drill down into the failed sub-workflows.
"""
from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import List, Optional

from repro.archive.store import StampedeArchive
from repro.model.entities import JobInstanceRow, JobRow
from repro.query.api import StampedeQuery
from repro.schema.stampede import SUCCESS

__all__ = ["FailedJobReport", "WorkflowAnalysis", "analyze", "render_analysis", "main"]


@dataclass
class FailedJobReport:
    """Diagnostic bundle for one failed job instance."""

    exec_job_id: str
    try_number: int
    last_state: Optional[str]
    exitcode: Optional[int]
    site: Optional[str]
    hostname: Optional[str]
    stdout_file: Optional[str]
    stderr_file: Optional[str]
    stdout_text: Optional[str]
    stderr_text: Optional[str]


@dataclass
class WorkflowAnalysis:
    """stampede_analyzer output for one workflow (recursively)."""

    wf_id: int
    wf_uuid: str
    dag_file_name: str
    status: Optional[int]  # None = running
    total_jobs: int
    succeeded: int
    failed: int
    incomplete: int
    failed_jobs: List[FailedJobReport] = field(default_factory=list)
    sub_analyses: List["WorkflowAnalysis"] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failed == 0 and all(s.ok for s in self.sub_analyses)


def analyze(
    archive_or_query,
    wf_id: Optional[int] = None,
    wf_uuid: Optional[str] = None,
    recurse: bool = True,
    recurse_into_successful: bool = False,
) -> WorkflowAnalysis:
    """Analyze one workflow; drill down into failed sub-workflows.

    ``recurse_into_successful`` forces full hierarchy traversal; the default
    mirrors the paper's tool, which "first identifies for users the failures
    at the top level workflow and then allows them to drill down".
    """
    query = (
        archive_or_query
        if isinstance(archive_or_query, StampedeQuery)
        else StampedeQuery(archive_or_query)
    )
    if wf_id is None:
        if wf_uuid is None:
            roots = query.root_workflows()
            if len(roots) != 1:
                raise ValueError(
                    f"archive holds {len(roots)} root workflows; specify one"
                )
            wf = roots[0]
        else:
            wf = query.workflow_by_uuid(wf_uuid)
            if wf is None:
                raise ValueError(f"no workflow with uuid {wf_uuid!r}")
        wf_id = wf.wf_id
    else:
        wf = query.workflow(wf_id)
        if wf is None:
            raise ValueError(f"no workflow with wf_id {wf_id}")

    jobs = query.jobs(wf_id)
    instances = query.job_instances(wf_id)
    latest: dict = {}
    for inst in instances:
        prev = latest.get(inst.job_id)
        if prev is None or inst.job_submit_seq > prev.job_submit_seq:
            latest[inst.job_id] = inst

    succeeded = failed = incomplete = 0
    failed_pairs: List[tuple] = []
    for job in jobs:
        inst = latest.get(job.job_id)
        if inst is None or inst.exitcode is None:
            incomplete += 1
        elif inst.exitcode == SUCCESS:
            succeeded += 1
        else:
            failed += 1
            failed_pairs.append((job, inst))

    analysis = WorkflowAnalysis(
        wf_id=wf_id,
        wf_uuid=wf.wf_uuid,
        dag_file_name=wf.dag_file_name,
        status=query.workflow_status(wf_id),
        total_jobs=len(jobs),
        succeeded=succeeded,
        failed=failed,
        incomplete=incomplete,
        failed_jobs=[_failed_report(query, job, inst) for job, inst in failed_pairs],
    )
    if recurse:
        for sub in query.sub_workflows(wf_id):
            sub_status = query.workflow_status(sub.wf_id)
            if recurse_into_successful or sub_status != SUCCESS:
                analysis.sub_analyses.append(
                    analyze(
                        query,
                        wf_id=sub.wf_id,
                        recurse=True,
                        recurse_into_successful=recurse_into_successful,
                    )
                )
    return analysis


def _failed_report(
    query: StampedeQuery, job: JobRow, inst: JobInstanceRow
) -> FailedJobReport:
    last = query.last_job_state(inst.job_instance_id)
    hostname = None
    if inst.host_id is not None:
        host = query.host(inst.host_id)
        hostname = host.hostname if host else None
    return FailedJobReport(
        exec_job_id=job.exec_job_id,
        try_number=inst.job_submit_seq,
        last_state=last.state if last else None,
        exitcode=inst.exitcode,
        site=inst.site,
        hostname=hostname,
        stdout_file=inst.stdout_file,
        stderr_file=inst.stderr_file,
        stdout_text=inst.stdout_text,
        stderr_text=inst.stderr_text,
    )


def render_analysis(analysis: WorkflowAnalysis, depth: int = 0) -> str:
    """Human-readable analyzer output, indented per hierarchy level."""
    pad = "  " * depth
    status = (
        "running"
        if analysis.status is None
        else ("success" if analysis.status == SUCCESS else "FAILED")
    )
    lines = [
        f"{pad}************** Workflow {analysis.wf_uuid} "
        f"({analysis.dag_file_name or 'n/a'}) — {status} **************",
        f"{pad} total jobs: {analysis.total_jobs}   "
        f"succeeded: {analysis.succeeded}   failed: {analysis.failed}   "
        f"incomplete: {analysis.incomplete}",
    ]
    for fj in analysis.failed_jobs:
        lines.append(f"{pad} -- failed job {fj.exec_job_id} (try {fj.try_number})")
        lines.append(
            f"{pad}    last state: {fj.last_state}   exitcode: {fj.exitcode}   "
            f"site: {fj.site}   host: {fj.hostname}"
        )
        if fj.stdout_file or fj.stderr_file:
            lines.append(
                f"{pad}    stdout: {fj.stdout_file or '-'}   "
                f"stderr: {fj.stderr_file or '-'}"
            )
        if fj.stdout_text:
            lines.append(f"{pad}    captured stdout: {fj.stdout_text}")
        if fj.stderr_text:
            lines.append(f"{pad}    captured stderr: {fj.stderr_text}")
    for sub in analysis.sub_analyses:
        lines.append(render_analysis(sub, depth + 1))
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="stampede-analyzer",
        description="Debug failed jobs in a Stampede archive.",
    )
    parser.add_argument("connString", help="e.g. sqlite:///run.db")
    parser.add_argument("--wf-uuid", help="workflow to analyze (defaults to the root)")
    parser.add_argument(
        "--all",
        action="store_true",
        help="recurse into successful sub-workflows as well",
    )
    args = parser.parse_args(argv)
    archive = StampedeArchive.open(args.connString)
    analysis = analyze(
        archive, wf_uuid=args.wf_uuid, recurse_into_successful=args.all
    )
    print(render_analysis(analysis))
    return 0 if analysis.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
