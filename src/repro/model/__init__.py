"""Stampede data-model entities and state vocabularies."""
from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobEdgeRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    TaskEdgeRow,
    TaskRow,
    WorkflowRow,
    WorkflowStateRow,
)
from repro.model.states import TERMINAL_JOB_STATES, JobState, WorkflowState

__all__ = [
    "HostRow",
    "InvocationRow",
    "JobEdgeRow",
    "JobInstanceRow",
    "JobRow",
    "JobStateRow",
    "TaskEdgeRow",
    "TaskRow",
    "WorkflowRow",
    "WorkflowStateRow",
    "TERMINAL_JOB_STATES",
    "JobState",
    "WorkflowState",
]
