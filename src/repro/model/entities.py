"""Typed entity records for the Stampede data model (paper Fig. 2 / Fig. 3).

These dataclasses mirror the rows of the relational archive; the query
interface returns them so analysis tools never touch raw dicts.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "WorkflowRow",
    "WorkflowStateRow",
    "TaskRow",
    "TaskEdgeRow",
    "JobRow",
    "JobEdgeRow",
    "JobInstanceRow",
    "JobStateRow",
    "InvocationRow",
    "HostRow",
    "ObsEventRow",
    "RollupWorkflowRow",
    "RollupTypeRow",
    "RollupHostRow",
    "RollupHostBucketRow",
    "RollupMetaRow",
]


@dataclass
class WorkflowRow:
    """One run of a workflow (a row of the ``workflow`` table)."""

    wf_id: int
    wf_uuid: str
    dag_file_name: str = ""
    timestamp: float = 0.0
    submit_hostname: str = ""
    submit_dir: str = ""
    planner_version: str = ""
    user: Optional[str] = None
    grid_dn: Optional[str] = None
    planner_arguments: Optional[str] = None
    dax_label: Optional[str] = None
    dax_version: Optional[str] = None
    dax_file: Optional[str] = None
    parent_wf_id: Optional[int] = None
    root_wf_id: Optional[int] = None


@dataclass
class WorkflowStateRow:
    wf_id: int
    state: str
    timestamp: float
    restart_count: int = 0
    status: Optional[int] = None


@dataclass
class TaskRow:
    """One task of the abstract workflow."""

    task_id: int
    wf_id: int
    abs_task_id: str
    job_id: Optional[int] = None
    transformation: str = ""
    argv: Optional[str] = None
    type_desc: str = ""


@dataclass
class TaskEdgeRow:
    wf_id: int
    parent_abs_task_id: str
    child_abs_task_id: str


@dataclass
class JobRow:
    """One job (node) of the executable workflow."""

    job_id: int
    wf_id: int
    exec_job_id: str
    submit_file: Optional[str] = None
    type_desc: str = ""
    clustered: bool = False
    max_retries: int = 0
    executable: str = ""
    argv: Optional[str] = None
    task_count: int = 0


@dataclass
class JobEdgeRow:
    wf_id: int
    parent_exec_job_id: str
    child_exec_job_id: str


@dataclass
class JobInstanceRow:
    """One scheduling attempt of a job (retries create new instances)."""

    job_instance_id: int
    job_id: int
    job_submit_seq: int
    host_id: Optional[int] = None
    sched_id: Optional[str] = None
    site: Optional[str] = None
    user: Optional[str] = None
    work_dir: Optional[str] = None
    local_duration: Optional[float] = None
    subwf_id: Optional[int] = None
    stdout_file: Optional[str] = None
    stdout_text: Optional[str] = None
    stderr_file: Optional[str] = None
    stderr_text: Optional[str] = None
    multiplier_factor: int = 1
    exitcode: Optional[int] = None


@dataclass
class JobStateRow:
    job_instance_id: int
    state: str
    timestamp: float
    jobstate_submit_seq: int = 0


@dataclass
class InvocationRow:
    """One invocation of an executable on a remote node."""

    invocation_id: int
    job_instance_id: int
    wf_id: int
    task_submit_seq: int
    start_time: float = 0.0
    remote_duration: float = 0.0
    remote_cpu_time: Optional[float] = None
    exitcode: int = 0
    transformation: str = ""
    executable: str = ""
    argv: Optional[str] = None
    abs_task_id: Optional[str] = None


@dataclass
class HostRow:
    host_id: int
    wf_id: int
    site: str
    hostname: str
    ip: Optional[str] = None
    uname: Optional[str] = None
    total_memory: Optional[int] = None


@dataclass
class ObsEventRow:
    """One self-monitoring telemetry sample (a ``stampede.obs.*`` event).

    The monitor's own metrics and spans, loaded through the same
    ``nl_load`` path as workflow events so they are queryable alongside
    the workflows they describe.  ``payload`` holds the event's full
    attribute map as JSON; hot keys (metric/span name, value, component)
    are denormalized into columns for indexed queries.
    """

    obs_id: int
    ts: float
    event: str
    name: str = ""
    component: str = ""
    value: Optional[float] = None
    payload: str = ""


@dataclass
class RollupWorkflowRow:
    """Materialized per-workflow counters (``rollup_workflow``).

    Maintained incrementally by :class:`repro.core.rollup.RollupMaintainer`
    inside the loader's flush transaction; every field is either an
    additive counter or a monotone merge (``started``/``ended``/``status``).
    """

    wf_id: int
    wf_uuid: str
    parent_wf_id: Optional[int] = None
    root_wf_id: Optional[int] = None
    events: int = 0
    tasks_total: int = 0
    tasks_succeeded: int = 0
    tasks_failed: int = 0
    jobs_total: int = 0
    jobs_succeeded: int = 0
    jobs_failed: int = 0
    jobs_retries: int = 0
    job_instances: int = 0
    invocations: int = 0
    invocation_wall: float = 0.0
    started: Optional[float] = None
    ended: Optional[float] = None
    status: Optional[int] = None
    restarts: int = 0
    updated_seq: int = 0


@dataclass
class RollupTypeRow:
    """Per-transformation runtime breakdown (``rollup_type``)."""

    wf_id: int
    transformation: str
    count: int = 0
    succeeded: int = 0
    failed: int = 0
    min_runtime: float = 0.0
    max_runtime: float = 0.0
    total_runtime: float = 0.0


@dataclass
class RollupHostRow:
    """Per-host job/runtime totals (``rollup_host``)."""

    wf_id: int
    hostname: str
    jobs: int = 0
    runtime: float = 0.0


@dataclass
class RollupHostBucketRow:
    """Downsampled per-host time series (``rollup_host_bucket``).

    ``tier`` is the bucket width in seconds; ``bucket`` is the
    epoch-aligned index ``floor(start_time / tier)``.
    """

    wf_id: int
    hostname: str
    tier: int
    bucket: int
    runtime: float = 0.0


@dataclass
class RollupMetaRow:
    """Rollup bookkeeping (``rollup_meta``): commit sequence etc."""

    key: str
    value: float = 0.0
