"""State vocabularies for workflows and jobs (Stampede data model).

Workflows and jobs are "associated with any number of time-stamped and
named states" (paper §IV-D); these enums are the canonical names recorded
in the ``workflowstate`` and ``jobstate`` tables.
"""
from __future__ import annotations

import enum

__all__ = ["WorkflowState", "JobState", "TERMINAL_JOB_STATES"]


class WorkflowState(enum.Enum):
    WORKFLOW_STARTED = "WORKFLOW_STARTED"
    WORKFLOW_TERMINATED = "WORKFLOW_TERMINATED"

    def __str__(self) -> str:
        return self.value


class JobState(enum.Enum):
    """Job-instance lifecycle states, in DAGMan/Condor terminology."""

    PRE_SCRIPT_STARTED = "PRE_SCRIPT_STARTED"
    PRE_SCRIPT_TERMINATED = "PRE_SCRIPT_TERMINATED"
    PRE_SCRIPT_SUCCESS = "PRE_SCRIPT_SUCCESS"
    PRE_SCRIPT_FAILURE = "PRE_SCRIPT_FAILURE"
    SUBMIT = "SUBMIT"
    EXECUTE = "EXECUTE"
    JOB_HELD = "JOB_HELD"
    JOB_RELEASED = "JOB_RELEASED"
    JOB_EVICTED = "JOB_EVICTED"
    JOB_TERMINATED = "JOB_TERMINATED"
    JOB_SUCCESS = "JOB_SUCCESS"
    JOB_FAILURE = "JOB_FAILURE"
    JOB_ABORTED = "JOB_ABORTED"
    POST_SCRIPT_STARTED = "POST_SCRIPT_STARTED"
    POST_SCRIPT_TERMINATED = "POST_SCRIPT_TERMINATED"
    POST_SCRIPT_SUCCESS = "POST_SCRIPT_SUCCESS"
    POST_SCRIPT_FAILURE = "POST_SCRIPT_FAILURE"

    def __str__(self) -> str:
        return self.value


TERMINAL_JOB_STATES = frozenset(
    {JobState.JOB_SUCCESS, JobState.JOB_FAILURE, JobState.JOB_ABORTED}
)
