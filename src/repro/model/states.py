"""State vocabularies for workflows and jobs (Stampede data model).

Workflows and jobs are "associated with any number of time-stamped and
named states" (paper §IV-D); these enums are the canonical names recorded
in the ``workflowstate`` and ``jobstate`` tables.

Besides the vocabularies themselves this module carries the explicit
lifecycle state machine: :data:`ALLOWED_TRANSITIONS` enumerates every legal
``current -> next`` job-state transition under DAGMan/Condor semantics and
:func:`is_valid_transition` answers the question the loader, the dashboard
and the ``stampede-lint`` lifecycle analyzer all need: *may this state
follow that one for a single job instance?*
"""
from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Optional, Union

__all__ = [
    "WorkflowState",
    "JobState",
    "TERMINAL_JOB_STATES",
    "INITIAL_JOB_STATES",
    "END_JOB_STATES",
    "ALLOWED_TRANSITIONS",
    "ALLOWED_WORKFLOW_TRANSITIONS",
    "is_valid_transition",
    "allowed_successors",
]


class WorkflowState(enum.Enum):
    WORKFLOW_STARTED = "WORKFLOW_STARTED"
    WORKFLOW_TERMINATED = "WORKFLOW_TERMINATED"

    def __str__(self) -> str:
        return self.value


class JobState(enum.Enum):
    """Job-instance lifecycle states, in DAGMan/Condor terminology."""

    PRE_SCRIPT_STARTED = "PRE_SCRIPT_STARTED"
    PRE_SCRIPT_TERMINATED = "PRE_SCRIPT_TERMINATED"
    PRE_SCRIPT_SUCCESS = "PRE_SCRIPT_SUCCESS"
    PRE_SCRIPT_FAILURE = "PRE_SCRIPT_FAILURE"
    SUBMIT = "SUBMIT"
    EXECUTE = "EXECUTE"
    JOB_HELD = "JOB_HELD"
    JOB_RELEASED = "JOB_RELEASED"
    JOB_EVICTED = "JOB_EVICTED"
    JOB_TERMINATED = "JOB_TERMINATED"
    JOB_SUCCESS = "JOB_SUCCESS"
    JOB_FAILURE = "JOB_FAILURE"
    JOB_ABORTED = "JOB_ABORTED"
    POST_SCRIPT_STARTED = "POST_SCRIPT_STARTED"
    POST_SCRIPT_TERMINATED = "POST_SCRIPT_TERMINATED"
    POST_SCRIPT_SUCCESS = "POST_SCRIPT_SUCCESS"
    POST_SCRIPT_FAILURE = "POST_SCRIPT_FAILURE"

    def __str__(self) -> str:
        return self.value


TERMINAL_JOB_STATES = frozenset(
    {JobState.JOB_SUCCESS, JobState.JOB_FAILURE, JobState.JOB_ABORTED}
)

# States a fresh job instance may enter first: a DAGMan pre-script, or a
# straight submit when the job has no pre-script.
INITIAL_JOB_STATES: FrozenSet[JobState] = frozenset(
    {JobState.PRE_SCRIPT_STARTED, JobState.SUBMIT}
)

# The full legal lifecycle of one job instance.  TERMINAL_JOB_STATES above
# names the *outcome* states (what the job amounted to); post-scripts may
# still run after JOB_SUCCESS / JOB_FAILURE, so the states after which no
# further event is legal are the END_JOB_STATES below.
ALLOWED_TRANSITIONS: Dict[JobState, FrozenSet[JobState]] = {
    JobState.PRE_SCRIPT_STARTED: frozenset({JobState.PRE_SCRIPT_TERMINATED}),
    JobState.PRE_SCRIPT_TERMINATED: frozenset(
        {JobState.PRE_SCRIPT_SUCCESS, JobState.PRE_SCRIPT_FAILURE}
    ),
    JobState.PRE_SCRIPT_SUCCESS: frozenset({JobState.SUBMIT}),
    # a failed pre-script fails the job without it ever being submitted
    JobState.PRE_SCRIPT_FAILURE: frozenset({JobState.JOB_FAILURE}),
    JobState.SUBMIT: frozenset(
        {JobState.EXECUTE, JobState.JOB_HELD, JobState.JOB_ABORTED}
    ),
    JobState.EXECUTE: frozenset(
        {
            JobState.JOB_TERMINATED,
            JobState.JOB_HELD,
            JobState.JOB_EVICTED,
            JobState.JOB_ABORTED,
        }
    ),
    JobState.JOB_HELD: frozenset({JobState.JOB_RELEASED, JobState.JOB_ABORTED}),
    JobState.JOB_RELEASED: frozenset(
        {JobState.EXECUTE, JobState.JOB_HELD, JobState.JOB_ABORTED}
    ),
    # an evicted job is re-run within the same instance
    JobState.JOB_EVICTED: frozenset({JobState.EXECUTE, JobState.JOB_ABORTED}),
    JobState.JOB_TERMINATED: frozenset(
        {JobState.JOB_SUCCESS, JobState.JOB_FAILURE}
    ),
    JobState.JOB_SUCCESS: frozenset({JobState.POST_SCRIPT_STARTED}),
    JobState.JOB_FAILURE: frozenset({JobState.POST_SCRIPT_STARTED}),
    JobState.JOB_ABORTED: frozenset(),
    JobState.POST_SCRIPT_STARTED: frozenset({JobState.POST_SCRIPT_TERMINATED}),
    JobState.POST_SCRIPT_TERMINATED: frozenset(
        {JobState.POST_SCRIPT_SUCCESS, JobState.POST_SCRIPT_FAILURE}
    ),
    JobState.POST_SCRIPT_SUCCESS: frozenset(),
    JobState.POST_SCRIPT_FAILURE: frozenset(),
}

# States with no legal successor: once here, the instance's stream is over.
END_JOB_STATES: FrozenSet[JobState] = frozenset(
    state for state, nxt in ALLOWED_TRANSITIONS.items() if not nxt
)

ALLOWED_WORKFLOW_TRANSITIONS: Dict[WorkflowState, FrozenSet[WorkflowState]] = {
    WorkflowState.WORKFLOW_STARTED: frozenset(
        {WorkflowState.WORKFLOW_TERMINATED}
    ),
    # a restart re-enters WORKFLOW_STARTED after termination
    WorkflowState.WORKFLOW_TERMINATED: frozenset(
        {WorkflowState.WORKFLOW_STARTED}
    ),
}

_State = Union[JobState, WorkflowState]


def allowed_successors(current: Optional[_State]) -> FrozenSet[_State]:
    """Legal next states after ``current`` (``None`` = fresh entity)."""
    if current is None:
        return INITIAL_JOB_STATES
    if isinstance(current, WorkflowState):
        return ALLOWED_WORKFLOW_TRANSITIONS[current]
    return ALLOWED_TRANSITIONS[current]


def is_valid_transition(current: Optional[_State], nxt: _State) -> bool:
    """True when ``nxt`` may legally follow ``current``.

    ``current=None`` asks whether ``nxt`` is a legal *first* state: for jobs
    that means a pre-script start or a submit; a workflow always begins with
    WORKFLOW_STARTED.
    """
    if current is None and isinstance(nxt, WorkflowState):
        return nxt is WorkflowState.WORKFLOW_STARTED
    if current is not None and type(current) is not type(nxt):
        raise TypeError(
            f"cannot mix state vocabularies: {current!r} -> {nxt!r}"
        )
    return nxt in allowed_successors(current)
