"""Shared retry machinery: one policy for every transient-failure site.

The loader, the bus clients, and the chaos-recovery paths all need the
same three things when a dependency hiccups:

* :class:`RetryPolicy` — bounded exponential backoff with optional
  decorrelated jitter and an overall deadline, expressed as data so the
  loader and the bus share one implementation instead of each growing an
  inline ``while/attempt`` loop;
* :class:`CircuitBreaker` — a small closed/open/half-open breaker so a
  component facing a *down* (not merely slow) dependency fails fast and
  probes for recovery instead of sleeping through full retry ladders on
  every call;
* injectable ``sleep`` / ``clock`` / ``rng`` hooks, so tests and the
  deterministic fault-injection suite can drive every branch without
  real time passing.

Decorrelated jitter follows the AWS architecture-blog formulation:
``delay = min(max_delay, uniform(base_delay, prev_delay * 3))`` — each
delay is randomized around the previous one, which spreads thundering
herds better than full-jitter while keeping the expected growth
exponential.
"""
from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Tuple, Type

__all__ = [
    "RetryError",
    "CircuitOpenError",
    "RetryPolicy",
    "CircuitBreaker",
]


class RetryError(RuntimeError):
    """A retried call exhausted its attempts or deadline.

    The final underlying exception is chained as ``__cause__``.
    """


class CircuitOpenError(RuntimeError):
    """The circuit breaker is open: the protected call was not attempted."""


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry schedule shared by the loader and bus clients.

    ``max_retries`` counts *re*-tries: a call may run ``max_retries + 1``
    times in total.  ``deadline`` bounds the whole ladder in seconds
    (attempts stop once the budget is spent, even with retries left).
    ``jitter='decorrelated'`` randomizes each delay between ``base_delay``
    and three times the previous delay; ``jitter='none'`` gives the exact
    ``base_delay * multiplier**n`` ladder (capped at ``max_delay``), which
    is what deterministic tests want.
    """

    max_retries: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: str = "none"  # 'none' | 'decorrelated'
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter not in ("none", "decorrelated"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")

    # -- schedule ------------------------------------------------------------
    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """Yield the sleep before each retry (``max_retries`` values)."""
        prev = self.base_delay
        for attempt in range(self.max_retries):
            if self.jitter == "decorrelated":
                rng = rng if rng is not None else random
                delay = min(self.max_delay, rng.uniform(self.base_delay, prev * 3))
            else:
                delay = min(
                    self.max_delay, self.base_delay * self.multiplier**attempt
                )
            prev = delay
            yield delay

    # -- execution -----------------------------------------------------------
    def call(
        self,
        fn: Callable[[], Any],
        retry_on: Tuple[Type[BaseException], ...],
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
        breaker: Optional["CircuitBreaker"] = None,
    ) -> Any:
        """Run ``fn`` under this policy.

        Exceptions in ``retry_on`` are retried per the schedule; anything
        else propagates immediately.  ``on_retry(attempt, exc)`` fires
        before each sleep (attempt is 1-based).  When the schedule is
        exhausted the *original* exception type propagates, so callers'
        existing ``except TRANSIENT_ERRORS`` handling keeps working.  A
        ``breaker``, when given, is consulted before every attempt and
        fed the outcome of each one.
        """
        started = clock()
        attempt = 0
        delays = self.delays(rng=rng)
        while True:
            if breaker is not None and not breaker.allow():
                raise CircuitOpenError(
                    f"circuit open after {breaker.consecutive_failures} "
                    "consecutive failures"
                )
            try:
                result = fn()
            except retry_on as exc:
                if breaker is not None:
                    breaker.record_failure()
                attempt += 1
                try:
                    delay = next(delays)
                except StopIteration:
                    raise exc
                if (
                    self.deadline is not None
                    and clock() - started + delay > self.deadline
                ):
                    raise exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(delay)
            else:
                if breaker is not None:
                    breaker.record_success()
                return result


@dataclass
class CircuitBreaker:
    """Minimal closed → open → half-open breaker.

    After ``failure_threshold`` consecutive failures the circuit opens:
    :meth:`allow` returns False (fail fast) until ``reset_timeout``
    seconds pass, after which exactly one probe call is let through
    (half-open).  A successful probe closes the circuit; a failed one
    re-opens it for another timeout.
    """

    failure_threshold: int = 5
    reset_timeout: float = 30.0
    clock: Callable[[], float] = time.monotonic
    consecutive_failures: int = 0
    opened_at: Optional[float] = field(default=None)
    _probing: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if self.clock() - self.opened_at >= self.reset_timeout:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May the protected call run right now?"""
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probing:
            self._probing = True  # single probe until its outcome lands
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self._probing = False
        if self.consecutive_failures >= self.failure_threshold:
            self.opened_at = self.clock()
