"""Directed-graph utilities shared by both workflow engines.

The Stampede data model assumes the abstract workflow (AW) is a DAG; Triana
task graphs may additionally contain loops in continuous mode.  This module
provides the small set of graph operations both engines and the analysis
tools need: cycle detection, topological ordering, level assignment,
ancestor/descendant closure and critical-path length.
"""
from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "CycleError",
    "DiGraph",
    "topological_sort",
    "has_cycle",
]


class CycleError(ValueError):
    """Raised when a DAG-only operation meets a cycle."""

    def __init__(self, cycle: Sequence[Hashable]):
        self.cycle = list(cycle)
        super().__init__(f"graph contains a cycle: {' -> '.join(map(str, self.cycle))}")


class DiGraph:
    """Minimal adjacency-list directed graph with deterministic ordering.

    Nodes keep insertion order; edge lists keep insertion order.  That
    determinism matters: engine traces and report rows derive their order
    from graph traversals.
    """

    def __init__(self):
        self._succ: Dict[Hashable, List[Hashable]] = {}
        self._pred: Dict[Hashable, List[Hashable]] = {}

    # -- construction ------------------------------------------------------
    def add_node(self, node: Hashable) -> None:
        if node not in self._succ:
            self._succ[node] = []
            self._pred[node] = []

    def add_edge(self, parent: Hashable, child: Hashable) -> None:
        self.add_node(parent)
        self.add_node(child)
        if child not in self._succ[parent]:
            self._succ[parent].append(child)
            self._pred[child].append(parent)

    def remove_node(self, node: Hashable) -> None:
        for child in self._succ.pop(node, []):
            self._pred[child].remove(node)
        for parent in self._pred.pop(node, []):
            self._succ[parent].remove(node)

    # -- queries -----------------------------------------------------------
    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def nodes(self) -> List[Hashable]:
        return list(self._succ)

    def edges(self) -> List[Tuple[Hashable, Hashable]]:
        return [(p, c) for p, kids in self._succ.items() for c in kids]

    def successors(self, node: Hashable) -> List[Hashable]:
        return list(self._succ[node])

    def predecessors(self, node: Hashable) -> List[Hashable]:
        return list(self._pred[node])

    def in_degree(self, node: Hashable) -> int:
        return len(self._pred[node])

    def out_degree(self, node: Hashable) -> int:
        return len(self._succ[node])

    def roots(self) -> List[Hashable]:
        return [n for n in self._succ if not self._pred[n]]

    def leaves(self) -> List[Hashable]:
        return [n for n in self._succ if not self._succ[n]]

    # -- algorithms ----------------------------------------------------------
    def topological_order(self) -> List[Hashable]:
        """Kahn's algorithm; raises CycleError on cycles."""
        indeg = {n: len(self._pred[n]) for n in self._succ}
        ready = deque(n for n in self._succ if indeg[n] == 0)
        order: List[Hashable] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            for child in self._succ[node]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    ready.append(child)
        if len(order) != len(self._succ):
            raise CycleError(self.find_cycle())
        return order

    def find_cycle(self) -> List[Hashable]:
        """Return one cycle as a node list, or [] if acyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in self._succ}
        parent: Dict[Hashable, Hashable] = {}
        for start in self._succ:
            if color[start] != WHITE:
                continue
            stack = [(start, iter(self._succ[start]))]
            color[start] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for child in it:
                    if color[child] == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append((child, iter(self._succ[child])))
                        advanced = True
                        break
                    if color[child] == GRAY:
                        # back-edge: reconstruct the cycle
                        cycle = [child, node]
                        cur = node
                        while cur != child:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return []

    def is_dag(self) -> bool:
        return not self.find_cycle()

    def levels(self) -> Dict[Hashable, int]:
        """Longest-path depth of each node from any root (root level = 0)."""
        level = {n: 0 for n in self._succ}
        for node in self.topological_order():
            for child in self._succ[node]:
                level[child] = max(level[child], level[node] + 1)
        return level

    def ancestors(self, node: Hashable) -> Set[Hashable]:
        seen: Set[Hashable] = set()
        stack = list(self._pred[node])
        while stack:
            cur = stack.pop()
            if cur not in seen:
                seen.add(cur)
                stack.extend(self._pred[cur])
        return seen

    def descendants(self, node: Hashable) -> Set[Hashable]:
        seen: Set[Hashable] = set()
        stack = list(self._succ[node])
        while stack:
            cur = stack.pop()
            if cur not in seen:
                seen.add(cur)
                stack.extend(self._succ[cur])
        return seen

    def critical_path_length(
        self, weight: Callable[[Hashable], float] = lambda _n: 1.0
    ) -> float:
        """Length of the heaviest root-to-leaf path under node weights."""
        best = 0.0
        dist: Dict[Hashable, float] = {}
        for node in self.topological_order():
            incoming = [dist[p] for p in self._pred[node]] or [0.0]
            dist[node] = max(incoming) + weight(node)
            best = max(best, dist[node])
        return best

    def subgraph(self, keep: Iterable[Hashable]) -> "DiGraph":
        keep_set = set(keep)
        g = DiGraph()
        for node in self._succ:
            if node in keep_set:
                g.add_node(node)
        for parent, child in self.edges():
            if parent in keep_set and child in keep_set:
                g.add_edge(parent, child)
        return g

    def copy(self) -> "DiGraph":
        return self.subgraph(self._succ)


def topological_sort(
    nodes: Iterable[Hashable], edges: Iterable[Tuple[Hashable, Hashable]]
) -> List[Hashable]:
    """Convenience: topological order of (nodes, edges) lists."""
    g = DiGraph()
    for n in nodes:
        g.add_node(n)
    for p, c in edges:
        g.add_edge(p, c)
    return g.topological_order()


def has_cycle(
    nodes: Iterable[Hashable], edges: Iterable[Tuple[Hashable, Hashable]]
) -> bool:
    g = DiGraph()
    for n in nodes:
        g.add_node(n)
    for p, c in edges:
        g.add_edge(p, c)
    return not g.is_dag()
