"""Timestamp handling for NetLogger BP messages and Stampede reports.

NetLogger Best Practices allows timestamps either as ISO8601 strings
(``2012-03-13T12:35:38.000000Z``) or as floating-point seconds since the
Unix epoch.  Everything inside the reproduction works in float epoch
seconds; these helpers convert at the edges.
"""
from __future__ import annotations

import math
import re
from datetime import datetime, timedelta, timezone

__all__ = [
    "format_iso",
    "parse_iso",
    "parse_ts",
    "format_duration",
    "format_hms",
]

_ISO_RE = re.compile(
    r"^(?P<year>\d{4})-(?P<month>\d{2})-(?P<day>\d{2})"
    r"[Tt ](?P<hour>\d{2}):(?P<minute>\d{2}):(?P<second>\d{2})"
    r"(?:\.(?P<frac>\d{1,9}))?"
    r"(?P<tz>[Zz]|[+-]\d{2}:?\d{2})?$"
)

_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)


def format_iso(ts: float, precision: int = 6) -> str:
    """Format epoch seconds as an ISO8601 UTC timestamp.

    >>> format_iso(0.0)
    '1970-01-01T00:00:00.000000Z'
    """
    if not math.isfinite(ts):
        raise ValueError(f"non-finite timestamp: {ts!r}")
    if precision <= 0:
        dt = _EPOCH + timedelta(seconds=round(ts))
        return dt.strftime("%Y-%m-%dT%H:%M:%S") + "Z"
    # Integer arithmetic so the fractional part carries into the seconds
    # correctly (1.9999995 must round to 2.000000, not 1.000000).
    scale = 10 ** precision
    total = round(ts * scale)
    whole, frac_int = divmod(total, scale)
    dt = _EPOCH + timedelta(seconds=whole)
    base = dt.strftime("%Y-%m-%dT%H:%M:%S")
    return f"{base}.{frac_int:0{precision}d}Z"


def parse_iso(text: str) -> float:
    """Parse an ISO8601 timestamp into epoch seconds (UTC assumed if naive)."""
    m = _ISO_RE.match(text.strip())
    if m is None:
        raise ValueError(f"invalid ISO8601 timestamp: {text!r}")
    frac = m.group("frac") or "0"
    micro = int(frac.ljust(9, "0")[:6])
    # Sub-microsecond digits are kept by adding them back as a float.
    extra = 0.0
    if len(frac) > 6:
        extra = int(frac[6:9].ljust(3, "0")) * 1e-9
    dt = datetime(
        int(m.group("year")),
        int(m.group("month")),
        int(m.group("day")),
        int(m.group("hour")),
        int(m.group("minute")),
        int(m.group("second")),
        micro,
        tzinfo=timezone.utc,
    )
    tz = m.group("tz")
    offset = 0.0
    if tz and tz not in ("Z", "z"):
        sign = 1 if tz[0] == "+" else -1
        hh = int(tz[1:3])
        mm = int(tz[-2:])
        offset = sign * (hh * 3600 + mm * 60)
    return (dt - _EPOCH).total_seconds() - offset + extra


def parse_ts(value) -> float:
    """Parse a BP ``ts`` attribute: ISO8601 string or epoch seconds."""
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip()
    try:
        return float(text)
    except ValueError:
        return parse_iso(text)


def format_duration(seconds: float) -> str:
    """Human-readable duration in the stampede-statistics style.

    >>> format_duration(661)
    '11 mins, 1 sec'
    >>> format_duration(40224)
    '11 hrs, 10 mins'
    """
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds!r}")
    total = int(round(seconds))
    if total < 60:
        return f"{total} sec{'s' if total != 1 else ''}"
    parts = []
    days, rem = divmod(total, 86400)
    hrs, rem = divmod(rem, 3600)
    mins, secs = divmod(rem, 60)
    if days:
        parts.append(f"{days} day{'s' if days != 1 else ''}")
    if hrs:
        parts.append(f"{hrs} hr{'s' if hrs != 1 else ''}")
    if mins:
        parts.append(f"{mins} min{'s' if mins != 1 else ''}")
    # Drop the seconds component for hour-plus durations, as the paper's
    # Table I does ("11 hrs, 10 mins").
    if secs and not (days or hrs):
        parts.append(f"{secs} sec{'s' if secs != 1 else ''}")
    return ", ".join(parts[:2]) if len(parts) > 2 else ", ".join(parts)


def format_hms(seconds: float) -> str:
    """Fixed ``H:MM:SS`` rendering used in jobs.txt style reports."""
    total = int(round(seconds))
    hrs, rem = divmod(total, 3600)
    mins, secs = divmod(rem, 60)
    return f"{hrs}:{mins:02d}:{secs:02d}"
