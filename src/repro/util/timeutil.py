"""Timestamp handling for NetLogger BP messages and Stampede reports.

NetLogger Best Practices allows timestamps either as ISO8601 strings
(``2012-03-13T12:35:38.000000Z``) or as floating-point seconds since the
Unix epoch.  Everything inside the reproduction works in float epoch
seconds; these helpers convert at the edges.
"""
from __future__ import annotations

import math
import re
from datetime import datetime, timedelta, timezone
from functools import lru_cache
from typing import Optional

__all__ = [
    "format_iso",
    "parse_iso",
    "parse_ts",
    "parse_ts_cached",
    "format_duration",
    "format_hms",
]

_ISO_RE = re.compile(
    r"^(?P<year>\d{4})-(?P<month>\d{2})-(?P<day>\d{2})"
    r"[Tt ](?P<hour>\d{2}):(?P<minute>\d{2}):(?P<second>\d{2})"
    r"(?:\.(?P<frac>\d{1,9}))?"
    r"(?P<tz>[Zz]|[+-]\d{2}:?\d{2})?$"
)

_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)


def format_iso(ts: float, precision: int = 6) -> str:
    """Format epoch seconds as an ISO8601 UTC timestamp.

    >>> format_iso(0.0)
    '1970-01-01T00:00:00.000000Z'
    """
    if not math.isfinite(ts):
        raise ValueError(f"non-finite timestamp: {ts!r}")
    if precision <= 0:
        dt = _EPOCH + timedelta(seconds=round(ts))
        return dt.strftime("%Y-%m-%dT%H:%M:%S") + "Z"
    # Integer arithmetic so the fractional part carries into the seconds
    # correctly (1.9999995 must round to 2.000000, not 1.000000).
    scale = 10 ** precision
    total = round(ts * scale)
    whole, frac_int = divmod(total, scale)
    dt = _EPOCH + timedelta(seconds=whole)
    base = dt.strftime("%Y-%m-%dT%H:%M:%S")
    return f"{base}.{frac_int:0{precision}d}Z"


def parse_iso(text: str) -> float:
    """Parse an ISO8601 timestamp into epoch seconds (UTC assumed if naive)."""
    m = _ISO_RE.match(text.strip())
    if m is None:
        raise ValueError(f"invalid ISO8601 timestamp: {text!r}")
    frac = m.group("frac") or "0"
    micro = int(frac.ljust(9, "0")[:6])
    # Sub-microsecond digits are kept by adding them back as a float.
    extra = 0.0
    if len(frac) > 6:
        extra = int(frac[6:9].ljust(3, "0")) * 1e-9
    dt = datetime(
        int(m.group("year")),
        int(m.group("month")),
        int(m.group("day")),
        int(m.group("hour")),
        int(m.group("minute")),
        int(m.group("second")),
        micro,
        tzinfo=timezone.utc,
    )
    tz = m.group("tz")
    offset = 0.0
    if tz and tz not in ("Z", "z"):
        sign = 1 if tz[0] == "+" else -1
        hh = int(tz[1:3])
        mm = int(tz[-2:])
        offset = sign * (hh * 3600 + mm * 60)
    return (dt - _EPOCH).total_seconds() - offset + extra


@lru_cache(maxsize=1024)
def _date_epoch_seconds(date_text: str) -> int:
    """Whole epoch seconds at midnight UTC of ``YYYY-MM-DD``.

    Timestamps in a log stream share a handful of calendar dates, so the
    datetime construction — the expensive part of ISO parsing — runs once
    per distinct date instead of once per event.
    """
    dt = datetime(
        int(date_text[:4]),
        int(date_text[5:7]),
        int(date_text[8:10]),
        tzinfo=timezone.utc,
    )
    return int((dt - _EPOCH).total_seconds())


def _fast_iso(text: str) -> Optional[float]:
    """Parse the canonical ``YYYY-MM-DDTHH:MM:SS.ffffffZ`` rendering.

    Bit-identical to :func:`parse_iso` (integer-microsecond arithmetic
    mirrors ``timedelta.total_seconds``); returns None for anything that
    is not exactly the canonical 27-char shape.
    """
    if (
        len(text) != 27
        or text[10] != "T"
        or text[26] != "Z"
        or text[19] != "."
        or text[13] != ":"
        or text[16] != ":"
    ):
        return None
    try:
        seconds = (
            _date_epoch_seconds(text[:10])
            + int(text[11:13]) * 3600
            + int(text[14:16]) * 60
            + int(text[17:19])
        )
        return (seconds * 10**6 + int(text[20:26])) / 10**6
    except ValueError:
        return None


def parse_ts(value) -> float:
    """Parse a BP ``ts`` attribute: ISO8601 string or epoch seconds.

    This is the reference implementation — the oracle the property tests
    compare the optimized path against — so it deliberately stays on the
    original regex/datetime code.  Hot paths use :func:`parse_ts_cached`.
    """
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip()
    try:
        return float(text)
    except ValueError:
        return parse_iso(text)


@lru_cache(maxsize=8192)
def parse_ts_cached(text: str) -> float:
    """Memoized fast-path timestamp parsing, identical to :func:`parse_ts`.

    The ingest hot path sees the same rendered timestamp many times when
    events burst within one clock tick (and identically-stamped static
    events); the LRU turns repeats into one dict hit, and cache misses in
    the canonical ISO shape parse with integer arithmetic instead of the
    regex + datetime machinery.
    """
    fast = _fast_iso(text)
    if fast is not None:
        return fast
    return parse_ts(text)


def format_duration(seconds: float) -> str:
    """Human-readable duration in the stampede-statistics style.

    >>> format_duration(661)
    '11 mins, 1 sec'
    >>> format_duration(40224)
    '11 hrs, 10 mins'
    """
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds!r}")
    total = int(round(seconds))
    if total < 60:
        return f"{total} sec{'s' if total != 1 else ''}"
    parts = []
    days, rem = divmod(total, 86400)
    hrs, rem = divmod(rem, 3600)
    mins, secs = divmod(rem, 60)
    if days:
        parts.append(f"{days} day{'s' if days != 1 else ''}")
    if hrs:
        parts.append(f"{hrs} hr{'s' if hrs != 1 else ''}")
    if mins:
        parts.append(f"{mins} min{'s' if mins != 1 else ''}")
    # Drop the seconds component for hour-plus durations, as the paper's
    # Table I does ("11 hrs, 10 mins").
    if secs and not (days or hrs):
        parts.append(f"{secs} sec{'s' if secs != 1 else ''}")
    return ", ".join(parts[:2]) if len(parts) > 2 else ", ".join(parts)


def format_hms(seconds: float) -> str:
    """Fixed ``H:MM:SS`` rendering used in jobs.txt style reports."""
    total = int(round(seconds))
    hrs, rem = divmod(total, 3600)
    mins, secs = divmod(rem, 60)
    return f"{hrs}:{mins:02d}:{secs:02d}"
