"""Deterministic UUID generation.

Workflow runs, jobs and invocations in Stampede are keyed by UUIDs.  For
reproducible simulations every identifier must be derivable from a seed,
so this module provides a seeded UUID4-shaped factory and a namespaced
UUID5-like derivation (without requiring hashlib's UUID plumbing at the
call sites).
"""
from __future__ import annotations

import hashlib
import uuid

import numpy as np

__all__ = ["UUIDFactory", "derive_uuid"]


class UUIDFactory:
    """Produces RFC-4122 version-4-formatted UUIDs from a seeded RNG.

    The stream is deterministic per seed yet statistically indistinguishable
    from random UUIDs for collision purposes within a run.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.Generator(np.random.PCG64(seed))

    def new(self) -> str:
        raw = bytearray(self._rng.bytes(16))
        raw[6] = (raw[6] & 0x0F) | 0x40  # version 4
        raw[8] = (raw[8] & 0x3F) | 0x80  # RFC-4122 variant
        return str(uuid.UUID(bytes=bytes(raw)))

    def __call__(self) -> str:
        return self.new()


def derive_uuid(namespace: str, name: str) -> str:
    """Deterministically derive a UUID from a namespace and a name.

    Used to key sub-workflows from their parent so re-running with the same
    seed reproduces the same identifier tree.
    """
    digest = hashlib.sha256(f"{namespace}\x00{name}".encode()).digest()
    raw = bytearray(digest[:16])
    raw[6] = (raw[6] & 0x0F) | 0x40
    raw[8] = (raw[8] & 0x3F) | 0x80
    return str(uuid.UUID(bytes=bytes(raw)))
