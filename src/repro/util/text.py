"""Plain-text table rendering for the stampede-statistics style reports."""
from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "indent"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    aligns: Optional[Sequence[str]] = None,
    sep: str = "  ",
) -> str:
    """Render an aligned monospace table.

    ``aligns`` is a per-column sequence of ``'l'`` or ``'r'``; numeric-looking
    columns default to right alignment when omitted.
    """
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    ncols = len(headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(f"row width {len(r)} != header width {ncols}: {r!r}")
    if aligns is None:
        aligns = []
        for col in range(ncols):
            values = [r[col] for r in str_rows]
            numeric = values and all(_is_numeric(v) for v in values)
            aligns.append("r" if numeric else "l")
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, v in enumerate(r):
            widths[i] = max(widths[i], len(v))
    lines = [
        sep.join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        sep.join("-" * widths[i] for i in range(ncols)),
    ]
    for r in str_rows:
        cells = [
            v.rjust(widths[i]) if aligns[i] == "r" else v.ljust(widths[i])
            for i, v in enumerate(r)
        ]
        lines.append(sep.join(cells).rstrip())
    return "\n".join(lines)


def indent(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line if line else line for line in text.splitlines())


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}".rstrip("0").rstrip(".") if value != int(value) else f"{value:.1f}"
    return str(value)


def _is_numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False
