"""Discrete-event simulation clock.

Both workflow-engine substrates (Pegasus-style and Triana-style) execute on
a virtual clock: jobs are scheduled as timed events, and the clock advances
to the next event rather than sleeping.  This keeps full DART-scale runs
under a second of real time while emitting timestamps with the same shape a
wall-clock deployment would produce.
"""
from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["SimClock", "SimEvent"]


class SimEvent:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "action", "cancelled")

    def __init__(self, time: float, seq: int, action: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "SimEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class SimClock:
    """Event-driven virtual clock.

    Events scheduled at equal times run in scheduling order (FIFO), which
    makes engine traces deterministic.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: List[SimEvent] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, action: Callable[[], None]) -> SimEvent:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        event = SimEvent(self._now + delay, next(self._counter), action)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, when: float, action: Callable[[], None]) -> SimEvent:
        """Schedule ``action`` at an absolute virtual time."""
        return self.schedule(when - self._now, action)

    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events until the queue drains (or ``until`` / event budget).

        Returns the final virtual time.  ``max_events`` guards against a
        runaway continuous-mode workflow that never converges.
        """
        executed = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self._now = until
                break
            if executed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events at t={self._now}"
                )
            if self.step():
                executed += 1
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
