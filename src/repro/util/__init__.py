"""Shared utilities: time formats, deterministic UUIDs, virtual clock,
graphs, and the shared retry/backoff policy."""
from repro.util.graph import CycleError, DiGraph, has_cycle, topological_sort
from repro.util.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryError,
    RetryPolicy,
)
from repro.util.simclock import SimClock, SimEvent
from repro.util.text import indent, render_table
from repro.util.timeutil import (
    format_duration,
    format_hms,
    format_iso,
    parse_iso,
    parse_ts,
)
from repro.util.uuidgen import UUIDFactory, derive_uuid

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "RetryError",
    "RetryPolicy",
    "CycleError",
    "DiGraph",
    "has_cycle",
    "topological_sort",
    "SimClock",
    "SimEvent",
    "indent",
    "render_table",
    "format_duration",
    "format_hms",
    "format_iso",
    "parse_iso",
    "parse_ts",
    "UUIDFactory",
    "derive_uuid",
]
