"""``stampede-replay``: record, inspect, compose, replay, and soak.

The operational face of :mod:`repro.replay`:

* ``record`` — tap a running ``tcp://`` bus and write a portable JSONL
  trace (headers and inter-arrival timing preserved);
* ``info`` — summarize a trace (records, span, routing keys, meta);
* ``compose`` — interleave several traces on one timeline, rewriting
  workflow identities so the result is one coherent mixed workload;
* ``replay`` — republish a trace to a live bus at ×N speed or under a
  synthetic shape (constant / burst trains / diurnal);
* ``soak`` — the full storm scenario from :func:`repro.replay.soak.run_soak`:
  mixed five-workload storm, chaos armed mid-replay, loader killed and
  resumed from checkpoint, gated on row identity, leakage, throughput,
  p99 publish→commit latency, and peak RSS.  Exit status is the gate
  verdict, so CI can call it directly.
"""
from __future__ import annotations

import argparse
import json
import sys
import tempfile
from typing import List, Optional

from repro.replay.shape import parse_shape
from repro.replay.trace import (
    compose_traces,
    read_trace,
    trace_meta,
    write_trace,
)

__all__ = ["main"]


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.replay.recorder import record_remote

    written = record_remote(
        args.bus,
        args.out,
        pattern=args.pattern,
        count=args.count or None,
        duration=args.duration or None,
        idle_timeout=args.idle_timeout,
        meta={"source": args.bus, "pattern": args.pattern},
    )
    span = 0.0
    if written > 1:
        records = list(read_trace(args.out))
        span = records[-1].t - records[0].t
    print(f"recorded {written} events over {span:.2f}s -> {args.out}", flush=True)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    for path in args.traces:
        meta = trace_meta(path)
        records = list(read_trace(path))
        span = records[-1].t - records[0].t if len(records) > 1 else 0.0
        keys: dict = {}
        for r in records:
            keys[r.routing_key] = keys.get(r.routing_key, 0) + 1
        print(f"{path}: {len(records)} records, {span:.2f}s span")
        if meta:
            print(f"  meta: {json.dumps(meta, sort_keys=True)}")
        for key, n in sorted(keys.items(), key=lambda kv: -kv[1])[:8]:
            print(f"  {key}: {n}")
    return 0


def _cmd_compose(args: argparse.Namespace) -> int:
    traces = [read_trace(path) for path in args.traces]
    merged = compose_traces(*traces, remap=not args.keep_ids, salt=args.salt)
    write_trace(
        args.out, merged, meta={"composed_from": args.traces, "salt": args.salt}
    )
    print(f"composed {len(merged)} records from {len(args.traces)} traces -> {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.replay.replayer import Replayer

    records = []
    for path in args.traces:
        records.extend(read_trace(path))
    records.sort(key=lambda r: r.t)
    shape = parse_shape(args.shape, speed=args.speed)
    replayer = Replayer(
        args.bus, publisher_id=args.publisher_id, stamp=not args.raw
    )
    try:
        stats = replayer.run(records, shape=shape)
    finally:
        replayer.close()
    print(
        f"replayed {stats.records} events in {stats.duration:.2f}s "
        f"({stats.rate:,.0f} ev/s, shape: {stats.shape}, "
        f"max behind: {stats.max_behind * 1000.0:.1f}ms)",
        flush=True,
    )
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.faults.plan import FaultPlan
    from repro.replay.soak import mixed_trace, run_soak, storm_stream
    from repro.replay.trace import read_trace as _read

    if args.trace:
        base = list(_read(args.trace))
    else:
        print(f"generating mixed 5-workload trace (seed={args.seed})", flush=True)
        base = mixed_trace(seed=args.seed, scale=args.scale)
    copies = max(1, -(-args.events // len(base)))  # ceil
    total = len(base) * copies
    plan: Optional[FaultPlan] = None
    if args.chaos:
        with open(args.chaos, "r", encoding="utf-8") as fh:
            plan = FaultPlan.from_dict(json.load(fh))
    elif not args.no_chaos:
        plan = FaultPlan.from_dict(
            {
                "seed": args.seed,
                "bus": {
                    "drop": 0.02,
                    "duplicate": 0.02,
                    "reorder": 0.02,
                    "reorder_depth": 4,
                },
            }
        )
    shape = parse_shape(args.shape, speed=args.speed)
    workdir = args.workdir or tempfile.mkdtemp(prefix="stampede-soak-")

    report = run_soak(
        lambda: storm_stream(base, copies, salt=f"soak/{args.seed}"),
        workdir,
        total=total,
        plan=plan,
        shape=shape,
        arm_at=args.arm_at,
        kill_at=args.kill_at,
        kill=not args.no_kill,
        batch_size=args.batch_size,
        queue_max=args.queue_max,
        min_throughput=args.min_throughput,
        max_p99_commit=args.max_p99_commit,
        max_rss_mb=args.max_rss_mb,
        progress=lambda msg: print(f"soak: {msg}", flush=True),
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json(indent=2, sort_keys=True) + "\n")
        print(f"report -> {args.out}", flush=True)
    if args.save_trace:
        write_trace(
            args.save_trace,
            storm_stream(base, copies, salt=f"soak/{args.seed}"),
            meta={"seed": args.seed, "copies": copies, "events": total},
        )
        print(f"storm trace -> {args.save_trace}", flush=True)
    for gate in report.gates:
        mark = "PASS" if gate.ok else "FAIL"
        op = ">=" if gate.kind == "min" else "<="
        print(f"  [{mark}] {gate.name}: {gate.value:.4g} {op} {gate.limit:.4g}")
    print(
        f"soak {'PASSED' if report.passed else 'FAILED'}: "
        f"{report.events} events, {report.throughput:,.0f} ev/s, "
        f"p99 commit {report.p99_commit_s * 1000.0:.1f}ms, "
        f"peak rss {report.peak_rss_mb:.0f}MB, "
        f"killed={report.killed} resumed={report.resumed}",
        flush=True,
    )
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stampede-replay",
        description="record, compose, replay, and soak-test bus traffic",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("record", help="tap a tcp:// bus into a JSONL trace")
    p.add_argument("--bus", required=True, help="tcp://host:port of a stampede-bus")
    p.add_argument("--out", required=True, help="trace file to write")
    p.add_argument("--pattern", default="stampede.#", help="binding pattern to tap")
    p.add_argument("--count", type=int, default=0, help="stop after N events")
    p.add_argument("--duration", type=float, default=0.0, help="stop after S seconds")
    p.add_argument(
        "--idle-timeout",
        type=float,
        default=5.0,
        help="stop after S seconds with no traffic (0 waits forever)",
    )
    p.set_defaults(func=_cmd_record)

    p = sub.add_parser("info", help="summarize trace files")
    p.add_argument("traces", nargs="+", help="trace files")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("compose", help="interleave traces into one storm")
    p.add_argument("traces", nargs="+", help="input trace files")
    p.add_argument("--out", required=True, help="composed trace file")
    p.add_argument("--salt", default="compose", help="identity-remap salt")
    p.add_argument(
        "--keep-ids",
        action="store_true",
        help="keep original workflow ids (collisions are yours to manage)",
    )
    p.set_defaults(func=_cmd_compose)

    p = sub.add_parser("replay", help="republish a trace to a live bus")
    p.add_argument("traces", nargs="+", help="trace files (merged by timestamp)")
    p.add_argument("--bus", required=True, help="tcp://host:port of a stampede-bus")
    p.add_argument(
        "--speed", type=float, default=1.0, help="timing multiplier (0 = flat out)"
    )
    p.add_argument(
        "--shape",
        default="trace",
        help="trace | constant:RATE | burst:BASE,BURST[,PERIOD[,FRAC]] "
        "| diurnal:MEAN[,PERIOD[,AMP]]",
    )
    p.add_argument("--publisher-id", default=None, help="publisher identity to stamp")
    p.add_argument(
        "--raw",
        action="store_true",
        help="replay recorded headers verbatim instead of restamping",
    )
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("soak", help="storm + chaos + kill/resume, gated")
    p.add_argument(
        "--events", type=int, default=200_000, help="target storm size (events)"
    )
    p.add_argument("--seed", type=int, default=11, help="workload/chaos seed")
    p.add_argument("--scale", type=int, default=1, help="base workload size multiplier")
    p.add_argument("--trace", default=None, help="use this trace as the storm base")
    p.add_argument("--shape", default="constant:30000", help="replay shape spec")
    p.add_argument("--speed", type=float, default=1.0, help="speed for shape 'trace'")
    p.add_argument("--chaos", default=None, help="fault-plan JSON file")
    p.add_argument("--no-chaos", action="store_true", help="skip fault injection")
    p.add_argument("--no-kill", action="store_true", help="skip the loader kill")
    p.add_argument("--arm-at", type=float, default=0.3, help="arm chaos at fraction")
    p.add_argument("--kill-at", type=float, default=0.55, help="kill loader at fraction")
    p.add_argument("--batch-size", type=int, default=500, help="loader batch size")
    p.add_argument("--queue-max", type=int, default=20_000, help="ingest queue bound")
    p.add_argument(
        "--min-throughput", type=float, default=1_000.0, help="gate: min ev/s"
    )
    p.add_argument(
        "--max-p99-commit", type=float, default=8.0, help="gate: max p99 commit (s)"
    )
    p.add_argument(
        "--max-rss-mb", type=float, default=1_500.0, help="gate: max peak RSS (MB)"
    )
    p.add_argument("--workdir", default=None, help="archive dir (default: temp)")
    p.add_argument("--out", default=None, help="write the JSON report here")
    p.add_argument("--save-trace", default=None, help="also write the storm trace")
    p.set_defaults(func=_cmd_soak)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
