"""Traffic shaping for trace replay: pacing schedules + the pacer.

A *shape* decides **when** each event of a replay should be published,
as an offset in seconds from the start of the replay; the
:class:`Pacer` then sleeps toward each offset on the monotonic clock.

The pacer is deliberately drift-free: every deadline is computed from
one fixed origin (``sleep until origin + offset``), never from "now plus
a delta", so per-event scheduling jitter — a late wakeup, a slow
publish — never accumulates into rate error.  This is the helper
``stampede-bus publish --rate`` shares (the fix for its old
fixed-sleep-per-chunk shaping, which lost time on every sleep and
undershot the requested rate at high ×N).

Shapes:

* :class:`TraceTiming` — honor the recorded inter-arrival spacing,
  scaled by ``speed`` (×N replay);
* :class:`ConstantRate` — a flat events/second schedule;
* :class:`BurstTrain` — alternate a quiet base rate with periodic
  bursts (the storm pattern that stresses queue bounds and flush
  batching);
* :class:`Diurnal` — a sinusoidal day-curve compressed to ``period``
  seconds (the dashboard-traffic pattern).

:func:`parse_shape` turns CLI specs (``constant:5000``,
``burst:500,20000,2,0.25``, ``diurnal:2000,60,0.8``, ``trace``) into
shape objects.
"""
from __future__ import annotations

import math
import time
from typing import Optional

__all__ = [
    "Pacer",
    "Shape",
    "TraceTiming",
    "ConstantRate",
    "BurstTrain",
    "Diurnal",
    "parse_shape",
]


class Pacer:
    """Monotonic sleep-until scheduler anchored at a fixed origin.

    ``wait_until(offset)`` sleeps until ``origin + offset`` on the
    monotonic clock and returns immediately when that deadline is
    already past (the caller is behind schedule and should catch up
    without sleeping — lateness is never compounded).
    """

    def __init__(self, origin: Optional[float] = None):
        self.origin = time.monotonic() if origin is None else origin

    def elapsed(self) -> float:
        return time.monotonic() - self.origin

    def behind(self, offset: float) -> float:
        """Seconds the schedule is late for ``offset`` (<= 0 when early)."""
        return self.elapsed() - offset

    def wait_until(self, offset: float) -> None:
        deadline = self.origin + offset
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            # one sleep suffices in CPython (no spurious wakeups), but
            # clamping re-checks the clock after very long sleeps so a
            # suspended VM resumes close to schedule
            time.sleep(min(remaining, 1.0))


class Shape:
    """Maps an event's position in the replay to its publish offset."""

    def offset(self, index: int, rel_t: float) -> float:
        """Seconds from replay start at which event ``index`` (recorded
        at trace-relative time ``rel_t``) should be published."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class TraceTiming(Shape):
    """Replay the recorded spacing at ``speed``× (2.0 = twice as fast).

    ``speed=0`` disables pacing entirely (publish as fast as possible) —
    the *unshaped* mode baselines are built with.
    """

    def __init__(self, speed: float = 1.0):
        if speed < 0:
            raise ValueError("speed must be >= 0")
        self.speed = float(speed)

    def offset(self, index: int, rel_t: float) -> float:
        if not self.speed:
            return 0.0
        return rel_t / self.speed

    def describe(self) -> str:
        return "unshaped" if not self.speed else f"trace x{self.speed:g}"


class ConstantRate(Shape):
    """A flat schedule: event ``i`` goes out at ``i / rate`` seconds."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = float(rate)

    def offset(self, index: int, rel_t: float) -> float:
        return index / self.rate

    def describe(self) -> str:
        return f"constant {self.rate:g} ev/s"


class BurstTrain(Shape):
    """Alternating base/burst rates: quiet floor, periodic storm crest.

    Each ``period`` seconds of the schedule spends ``burst_fraction`` of
    the period at ``burst_rate`` and the rest at ``base_rate``.  Offsets
    are integrated incrementally (1/rate per event on the *schedule*
    clock), so the shape is exact regardless of how long publishing
    actually takes.
    """

    def __init__(
        self,
        base_rate: float,
        burst_rate: float,
        period: float = 2.0,
        burst_fraction: float = 0.25,
    ):
        if base_rate <= 0 or burst_rate <= 0:
            raise ValueError("rates must be > 0")
        if period <= 0 or not 0.0 < burst_fraction < 1.0:
            raise ValueError("period > 0 and 0 < burst_fraction < 1 required")
        self.base_rate = float(base_rate)
        self.burst_rate = float(burst_rate)
        self.period = float(period)
        self.burst_fraction = float(burst_fraction)
        self._next = 0.0
        self._last_index = -1

    def _rate_at(self, t: float) -> float:
        phase = math.fmod(t, self.period) / self.period
        return self.burst_rate if phase < self.burst_fraction else self.base_rate

    def offset(self, index: int, rel_t: float) -> float:
        if index <= self._last_index:  # replayed from the top (new pass)
            self._next = 0.0
        self._last_index = index
        current = self._next
        self._next = current + 1.0 / self._rate_at(current)
        return current

    def describe(self) -> str:
        return (
            f"burst {self.base_rate:g}/{self.burst_rate:g} ev/s "
            f"(period {self.period:g}s, {self.burst_fraction:.0%} burst)"
        )


class Diurnal(Shape):
    """A day's sinusoidal load curve compressed into ``period`` seconds.

    Instantaneous rate is ``mean_rate * (1 + amplitude * sin(2πt/period))``;
    ``amplitude < 1`` keeps the trough above zero.
    """

    def __init__(self, mean_rate: float, period: float = 60.0, amplitude: float = 0.8):
        if mean_rate <= 0 or period <= 0:
            raise ValueError("mean_rate and period must be > 0")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        self.mean_rate = float(mean_rate)
        self.period = float(period)
        self.amplitude = float(amplitude)
        self._next = 0.0
        self._last_index = -1

    def _rate_at(self, t: float) -> float:
        return self.mean_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )

    def offset(self, index: int, rel_t: float) -> float:
        if index <= self._last_index:
            self._next = 0.0
        self._last_index = index
        current = self._next
        self._next = current + 1.0 / self._rate_at(current)
        return current

    def describe(self) -> str:
        return (
            f"diurnal {self.mean_rate:g} ev/s "
            f"(period {self.period:g}s, amplitude {self.amplitude:g})"
        )


def parse_shape(spec: str, speed: float = 1.0) -> Shape:
    """CLI shape spec -> shape object.

    * ``trace`` — recorded spacing at ``speed``× (also the default);
    * ``constant:RATE``;
    * ``burst:BASE,BURST[,PERIOD[,FRACTION]]``;
    * ``diurnal:MEAN[,PERIOD[,AMPLITUDE]]``.
    """
    kind, _, rest = spec.partition(":")
    kind = kind.strip().lower()
    args = [float(a) for a in rest.split(",") if a.strip()] if rest else []
    try:
        if kind in ("trace", ""):
            return TraceTiming(args[0] if args else speed)
        if kind == "constant":
            return ConstantRate(*args)
        if kind == "burst":
            return BurstTrain(*args)
        if kind == "diurnal":
            return Diurnal(*args)
    except TypeError as exc:
        raise ValueError(f"bad shape spec {spec!r}: {exc}") from None
    raise ValueError(
        f"unknown shape {kind!r} (expected trace|constant|burst|diurnal)"
    )
