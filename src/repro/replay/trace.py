"""Portable JSONL traces of bus traffic.

A *trace* is the durable form of a bus stream: one JSON object per line,
each carrying the routing key, the message body (the same tagged union
the TCP transport uses, so BP text is stored verbatim), every message
header the publisher stamped (``x-publisher``/``x-seq``/``x-trace``/
``x-pub-ts``/``x-pub-mono``/``x-clock-epoch``/``x-part-key``), and the
message's arrival time *relative to the start of the recording* — the
inter-arrival spacing is what the replayer's ``×N`` pacing scales.

The first line is a meta record (``{"stampede_trace": 1, ...}``) so a
reader can reject foreign files and future versions cheaply; everything
after it is event records ordered by ``t``.

Traces compose: :func:`remap_workflow_ids` rewrites every workflow uuid
in a trace onto a derived-but-distinct identity, and
:func:`compose_traces` interleaves several (remapped) traces into one
mixed-workload timeline — CyberShake + Montage + Epigenomics + LIGO +
DART as a single stream whose root workflow ids never collide.
:func:`repeat_trace` multiplies one trace into a storm the same way.
"""
from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, TextIO, Union

from repro.bus.net import decode_body, encode_body
from repro.bus.queues import Message
from repro.netlogger.events import NLEvent
from repro.util.uuidgen import derive_uuid

__all__ = [
    "TRACE_VERSION",
    "TraceError",
    "TraceRecord",
    "TraceWriter",
    "read_trace",
    "write_trace",
    "trace_meta",
    "trace_from_events",
    "remap_workflow_ids",
    "compose_traces",
    "repeat_trace",
]

TRACE_VERSION = 1

#: attr keys whose values are workflow uuids (the identities that must
#: be rewritten when traces are composed so hierarchies never collide)
WORKFLOW_ID_ATTRS = ("xwf.id", "parent.xwf.id", "root.xwf.id", "subwf.id")

#: message-header keys whose values are workflow uuids
_UUID_HEADERS = ("x-part-key",)

_UUID_RE = re.compile(
    r"\b[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}\b"
)

PathOrFile = Union[str, os.PathLike, TextIO]


class TraceError(ValueError):
    """The file is not a readable stampede trace."""


@dataclass
class TraceRecord:
    """One recorded message: relative arrival time + the message itself."""

    t: float
    routing_key: str
    body: object
    headers: Dict[str, object] = field(default_factory=dict)

    def as_event(self) -> NLEvent:
        """Materialize the body as a typed event (parsing BP text once)."""
        if isinstance(self.body, NLEvent):
            return self.body
        if isinstance(self.body, str):
            return NLEvent.from_bp(self.body)
        raise TraceError(f"body is not an event: {type(self.body)!r}")

    def bp_line(self) -> Optional[str]:
        """The body's BP text form, or None for non-event bodies."""
        if isinstance(self.body, NLEvent):
            return self.body.to_bp()
        if isinstance(self.body, str):
            return self.body
        return None

    def to_json_obj(self) -> Dict[str, object]:
        return {
            "t": round(self.t, 6),
            "key": self.routing_key,
            "body": encode_body(self.body),
            "headers": dict(self.headers),
        }

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, object]) -> "TraceRecord":
        try:
            return cls(
                t=float(obj["t"]),  # type: ignore[arg-type]
                routing_key=str(obj["key"]),
                body=decode_body(obj["body"]),  # type: ignore[arg-type]
                headers=dict(obj.get("headers") or {}),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError) as exc:
            raise TraceError(f"malformed trace record: {exc}") from None


class TraceWriter:
    """Appends records to a trace file, meta line first."""

    def __init__(self, target: PathOrFile, meta: Optional[Mapping[str, object]] = None):
        if isinstance(target, (str, os.PathLike)):
            self._fh: TextIO = open(target, "w", encoding="utf-8")
            self._close = True
        else:
            self._fh = target
            self._close = False
        self.records_written = 0
        header: Dict[str, object] = {"stampede_trace": TRACE_VERSION}
        header.update(meta or {})
        self._fh.write(json.dumps(header, separators=(",", ":")) + "\n")

    def write(self, record: TraceRecord) -> None:
        self._fh.write(
            json.dumps(record.to_json_obj(), separators=(",", ":")) + "\n"
        )
        self.records_written += 1

    def write_message(self, msg: Message, t: float) -> None:
        self.write(TraceRecord(t, msg.routing_key, msg.body, dict(msg.headers or {})))

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.flush()
        if self._close:
            self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def write_trace(
    target: PathOrFile,
    records: Iterable[TraceRecord],
    meta: Optional[Mapping[str, object]] = None,
) -> int:
    with TraceWriter(target, meta=meta) as writer:
        for record in records:
            writer.write(record)
        return writer.records_written


def _open_reader(source: PathOrFile) -> Iterator[str]:
    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="utf-8") as fh:
            for line in fh:
                yield line
    else:
        for line in source:
            yield line


def trace_meta(source: PathOrFile) -> Dict[str, object]:
    """The meta record of a trace file (validates the version stamp)."""
    for line in _open_reader(source):
        try:
            obj = json.loads(line)
        except ValueError as exc:
            raise TraceError(f"trace meta line is not JSON: {exc}") from None
        if not isinstance(obj, dict) or obj.get("stampede_trace") != TRACE_VERSION:
            raise TraceError(
                f"not a stampede trace (version {TRACE_VERSION}): {line[:80]!r}"
            )
        return obj
    raise TraceError("empty trace file")


def read_trace(source: PathOrFile) -> Iterator[TraceRecord]:
    """Iterate a trace's records (meta line validated and skipped)."""
    lines = _open_reader(source)
    first = True
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError as exc:
            raise TraceError(f"undecodable trace line: {exc}") from None
        if first:
            first = False
            if not isinstance(obj, dict) or obj.get("stampede_trace") != TRACE_VERSION:
                raise TraceError(
                    f"not a stampede trace (version {TRACE_VERSION})"
                )
            continue
        yield TraceRecord.from_json_obj(obj)


def trace_from_events(
    events: Iterable[NLEvent],
    compress: float = 0.0,
    headers: bool = False,
) -> List[TraceRecord]:
    """Build a trace directly from simulated engine events.

    The engines emit events on *simulated* time (a CyberShake run spans
    hours of ``ts``); ``compress`` maps that span onto replay seconds:
    ``rel_t = (ts - ts0) * compress``.  The default ``compress=0`` packs
    everything at ``t=0`` (timing supplied entirely by the replay shape).
    Emission order is preserved even where simulated timestamps tie or
    regress.  Bodies are stored as BP text — exactly what a recorded
    live stream holds.
    """
    records: List[TraceRecord] = []
    ts0: Optional[float] = None
    last_t = 0.0
    for event in events:
        if ts0 is None:
            ts0 = event.ts
        rel = max(0.0, (event.ts - ts0) * compress) if compress else 0.0
        # a trace timeline never goes backwards, whatever the sim did
        last_t = max(last_t, rel)
        records.append(TraceRecord(last_t, event.event, event.to_bp(), {}))
    return records


# -- composition --------------------------------------------------------------

def _collect_uuid_map(records: Sequence[TraceRecord], salt: str) -> Dict[str, str]:
    """Old uuid -> derived uuid for every workflow id seen in the trace."""
    mapping: Dict[str, str] = {}
    for record in records:
        line = record.bp_line()
        if line is None:
            continue
        for match in _UUID_RE.findall(line):
            if match not in mapping:
                mapping[match] = derive_uuid(match, salt)
    return mapping


def remap_workflow_ids(
    records: Iterable[TraceRecord], salt: str
) -> List[TraceRecord]:
    """Rewrite every workflow uuid in a trace onto a salted derivative.

    Rewrites are total and consistent: every occurrence of a uuid — in
    BP bodies (``xwf.id``, ``parent.xwf.id``, ``root.xwf.id``,
    ``subwf.id``) and in uuid-valued headers (``x-part-key``) — maps to
    ``derive_uuid(old, salt)``, so the hierarchy structure is preserved
    while the identities are globally fresh.  Two different salts can
    never collide (uuid5-style derivation), which is what lets one trace
    be replayed N times into one archive as N distinct workflow trees.
    """
    materialized = list(records)
    mapping = _collect_uuid_map(materialized, salt)
    if not mapping:
        return [
            TraceRecord(r.t, r.routing_key, r.body, dict(r.headers))
            for r in materialized
        ]
    pattern = re.compile("|".join(re.escape(old) for old in mapping))

    def sub(text: str) -> str:
        return pattern.sub(lambda m: mapping[m.group(0)], text)

    out: List[TraceRecord] = []
    for record in materialized:
        line = record.bp_line()
        body = sub(line) if line is not None else record.body
        headers = dict(record.headers)
        for key in _UUID_HEADERS:
            value = headers.get(key)
            if isinstance(value, str) and value in mapping:
                headers[key] = mapping[value]
        out.append(TraceRecord(record.t, record.routing_key, body, headers))
    return out


def compose_traces(
    *traces: Sequence[TraceRecord],
    remap: bool = True,
    salt: str = "compose",
) -> List[TraceRecord]:
    """Interleave several traces into one timeline.

    Each input keeps its own relative timing; records are merged by
    ``t`` (ties broken by input order, stably).  With ``remap=True``
    (the default) every input is first passed through
    :func:`remap_workflow_ids` with a per-input salt, so workflows from
    different traces — or two copies of the same trace — never share a
    root workflow id in the merged stream.
    """
    streams: List[List[TraceRecord]] = []
    for i, trace in enumerate(traces):
        records = list(trace)
        if remap:
            records = remap_workflow_ids(records, f"{salt}/{i}")
        streams.append(records)
    merged: List[TraceRecord] = []
    for stream in streams:
        merged.extend(stream)
    # stable sort: equal-t records keep input order (stream 0 first)
    merged.sort(key=lambda r: r.t)
    return merged


def repeat_trace(
    records: Sequence[TraceRecord],
    times: int,
    stagger: float = 0.0,
    salt: str = "repeat",
) -> List[TraceRecord]:
    """Multiply one trace into a storm of ``times`` remapped copies.

    Copy ``k`` is shifted by ``k * stagger`` seconds (``stagger=0``
    overlays all copies on the same timeline, multiplying instantaneous
    rate — the burst-storm shape) and remapped with its own salt so the
    copies are distinct workflow trees.
    """
    if times < 1:
        raise ValueError("times must be >= 1")
    copies: List[Sequence[TraceRecord]] = []
    for k in range(times):
        copy = remap_workflow_ids(records, f"{salt}/{k}")
        if stagger:
            offset = k * stagger
            copy = [
                TraceRecord(r.t + offset, r.routing_key, r.body, r.headers)
                for r in copy
            ]
        copies.append(copy)
    return compose_traces(*copies, remap=False)
