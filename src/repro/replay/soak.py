"""The soak driver: a shaped storm through a real loader, with teeth.

``run_soak`` is the harness the ROADMAP's robustness story converges
on.  One run:

1. builds the **baseline**: the trace loaded sequentially, unshaped and
   fault-free, into its own archive — the ground truth for row identity;
2. replays the same trace as **live traffic** through a (optionally
   chaos-wrapped) broker into a checkpointing loader behind a bounded
   backpressure queue, while
3. **arming** a PR 3 fault plan mid-replay (the chaos switches on while
   traffic is flowing, not at a convenient boundary), and
4. **killing** the loader mid-storm — an exception mid-batch, in-flight
   messages requeued, uncommitted work lost — then resuming a fresh
   loader from the PR 2 checkpoint on the same queue;
5. gates the outcome: canonical row-identity vs the baseline, zero
   DLQ/stranded-message leakage, minimum throughput, p99
   publish→commit latency from the PR 5 PipelineClock, and a peak-RSS
   ceiling sampled across the storm.

The report serializes to the ``BENCH_soak.json`` artifact the CI
``soak-smoke`` job commits and compares across PRs.

Composition helpers here (:func:`mixed_trace`, :func:`storm_stream`)
build the standard storm: all five workloads — CyberShake, Montage,
Epigenomics, LIGO inspiral, DART — interleaved on one timeline, then
multiplied into distinct workflow trees per copy.
"""
from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.archive.merge import canonical_dump, diff_canonical
from repro.archive.store import StampedeArchive
from repro.bus.broker import DEAD_LETTER_QUEUE, Broker
from repro.faults.bus import ChaosBroker
from repro.faults.plan import FaultPlan
from repro.loader.checkpoint import CheckpointManager
from repro.loader.nl_load import load_from_bus
from repro.loader.stampede_loader import StampedeLoader
from repro.netlogger.events import NLEvent
from repro.obs.metrics import MetricsRegistry
from repro.replay.replayer import Replayer
from repro.replay.shape import Shape
from repro.replay.trace import TraceRecord, compose_traces, remap_workflow_ids, trace_from_events

__all__ = [
    "GateCheck",
    "SoakReport",
    "mixed_trace",
    "storm_stream",
    "run_soak",
]

#: queue the soak loader consumes; named so checkpoints key off it
SOAK_QUEUE = "soak.ingest"


class _SoakKill(RuntimeError):
    """Injected loader death; deliberately outside every recovery path."""


# -- trace composition ---------------------------------------------------------

def _spread(records: List[TraceRecord], duration: float) -> List[TraceRecord]:
    """Give a trace a uniform synthetic timeline over ``duration`` seconds.

    Engine-simulated timestamps span simulated hours at wildly different
    densities per workload; a uniform spread makes :func:`compose_traces`
    interleave the workloads instead of concatenating them.
    """
    n = len(records)
    if n <= 1:
        return records
    step = duration / (n - 1)
    return [
        TraceRecord(i * step, r.routing_key, r.body, r.headers)
        for i, r in enumerate(records)
    ]


def mixed_trace(seed: int = 11, scale: int = 1) -> List[TraceRecord]:
    """The standard mixed-workload trace: all five workloads, one stream.

    ``scale`` multiplies each generator's size knob.  Workflow ids are
    already distinct (different generators, different seeds), so the
    composition keeps identities; storm multiplication is what remaps.
    """
    from repro.dart.pegasus_variant import run_dart_pegasus
    from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
    from repro.triana.appender import MemoryAppender
    from repro.workloads import cybershake, epigenomics, ligo_inspiral, montage

    catalog = SiteCatalog(
        [Site("pool", slots=16, mean_queue_delay=1.0, hosts_per_site=4)]
    )
    workflows = [
        cybershake(n_ruptures=2 * scale),
        montage(n_images=3 * scale),
        epigenomics(n_lanes=2 * scale),
        ligo_inspiral(n_blocks=2 * scale),
    ]
    traces: List[List[TraceRecord]] = []
    for i, aw in enumerate(workflows):
        sink = MemoryAppender()
        run_pegasus_workflow(
            aw,
            sink,
            catalog=catalog,
            planner_config=PlannerConfig(cluster_size=4),
            seed=seed + i,
        )
        traces.append(_spread(trace_from_events(sink.events), 1.0))
    dart_sink = MemoryAppender()
    run_dart_pegasus(dart_sink, seed=seed + len(workflows), n_nodes=2, chunk_size=32)
    traces.append(_spread(trace_from_events(dart_sink.events), 1.0))
    return compose_traces(*traces, remap=False)


def storm_stream(
    base: Sequence[TraceRecord], times: int, salt: str = "storm"
) -> Iterator[TraceRecord]:
    """Stream ``times`` remapped copies of a base trace, one after another.

    Copies are generated lazily (one copy's remap in memory at a time),
    which is what lets a ~1M-event storm replay within a bounded RSS —
    the property the soak gate then measures.  Copies are sequential on
    the trace timeline; rate shaping comes from the replay
    :class:`~repro.replay.shape.Shape`, which schedules by index.
    """
    span = (base[-1].t - base[0].t) if base else 0.0
    for k in range(times):
        offset = k * span
        for r in remap_workflow_ids(base, f"{salt}/{k}"):
            yield TraceRecord(r.t + offset, r.routing_key, r.body, r.headers)


# -- the report ----------------------------------------------------------------

@dataclass
class GateCheck:
    """One pass/fail measurement against its limit."""

    name: str
    value: float
    limit: float
    kind: str  # 'min': value >= limit passes; 'max': value <= limit passes

    @property
    def ok(self) -> bool:
        return self.value >= self.limit if self.kind == "min" else self.value <= self.limit

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "value": round(self.value, 6),
            "limit": self.limit,
            "kind": self.kind,
            "ok": self.ok,
        }


@dataclass
class SoakReport:
    """Everything a soak run measured, plus the gate verdicts."""

    events: int = 0
    duration: float = 0.0
    throughput: float = 0.0
    baseline_rate: float = 0.0
    replay_rate: float = 0.0
    shape: str = ""
    p99_commit_s: float = 0.0
    p99_deliver_s: float = 0.0
    latency_samples: int = 0
    peak_rss_mb: float = 0.0
    dlq_events: int = 0
    broker_dlq_depth: int = 0
    stranded_messages: int = 0
    row_diff: List[str] = field(default_factory=list)
    events_processed: int = 0
    duplicates_skipped: int = 0
    redelivered: int = 0
    reconnects: int = 0
    killed: bool = False
    resumed: bool = False
    faults: Dict[str, int] = field(default_factory=dict)
    gates: List[GateCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(g.ok for g in self.gates)

    def to_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "duration_s": round(self.duration, 3),
            "throughput_ev_s": round(self.throughput, 1),
            "baseline_rate_ev_s": round(self.baseline_rate, 1),
            "replay_rate_ev_s": round(self.replay_rate, 1),
            "shape": self.shape,
            "p99_commit_s": round(self.p99_commit_s, 4),
            "p99_deliver_s": round(self.p99_deliver_s, 4),
            "latency_samples": self.latency_samples,
            "peak_rss_mb": round(self.peak_rss_mb, 1),
            "dlq_events": self.dlq_events,
            "broker_dlq_depth": self.broker_dlq_depth,
            "stranded_messages": self.stranded_messages,
            "row_diff": self.row_diff[:20],
            "row_identical": not self.row_diff,
            "events_processed": self.events_processed,
            "duplicates_skipped": self.duplicates_skipped,
            "redelivered": self.redelivered,
            "reconnects": self.reconnects,
            "killed": self.killed,
            "resumed": self.resumed,
            "faults": dict(self.faults),
            "gates": [g.to_dict() for g in self.gates],
            "passed": self.passed,
        }

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)


# -- plumbing ------------------------------------------------------------------

def _rss_bytes() -> int:
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            return int(fh.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


class _RssSampler(threading.Thread):
    def __init__(self, interval: float = 0.05):
        super().__init__(daemon=True)
        self.interval = interval
        self.peak = 0
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.is_set():
            self.peak = max(self.peak, _rss_bytes())
            self._halt.wait(self.interval)
        self.peak = max(self.peak, _rss_bytes())

    def stop(self) -> int:
        self._halt.set()
        self.join(timeout=5.0)
        return self.peak


TraceSource = Union[Sequence[TraceRecord], Callable[[], Iterable[TraceRecord]]]


def _iter_trace(trace: TraceSource) -> Iterator[TraceRecord]:
    return iter(trace()) if callable(trace) else iter(trace)


# -- the driver ----------------------------------------------------------------

def run_soak(
    trace: TraceSource,
    workdir: str,
    total: Optional[int] = None,
    plan: Optional[FaultPlan] = None,
    shape: Optional[Shape] = None,
    arm_at: float = 0.3,
    kill_at: float = 0.55,
    kill: bool = True,
    batch_size: int = 500,
    queue_max: int = 20_000,
    poll_timeout: float = 0.02,
    min_throughput: float = 1_000.0,
    max_p99_commit: float = 8.0,
    max_rss_mb: float = 1_500.0,
    progress: Optional[Callable[[str], None]] = None,
) -> SoakReport:
    """Run the full storm scenario; see the module docstring.

    ``trace`` is a record sequence or a re-invocable factory (a factory
    streams huge storms without materializing them twice).  ``plan``
    starts disarmed and arms at ``arm_at`` of the replay; ``kill_at``
    fires the loader kill.  The archive/baseline sqlite files land in
    ``workdir``.
    """
    say = progress or (lambda _msg: None)
    if total is None:
        if callable(trace):
            total = sum(1 for _ in trace())
        else:
            total = len(trace)
    report = SoakReport(events=total)

    # 1. baseline: sequential, unshaped, fault-free ---------------------------
    say(f"baseline: loading {total} events sequentially")
    os.makedirs(workdir, exist_ok=True)
    baseline_path = os.path.join(workdir, "baseline.db")
    baseline_archive = StampedeArchive.open(f"sqlite:///{baseline_path}")
    baseline_loader = StampedeLoader(baseline_archive, batch_size=batch_size)
    t0 = time.monotonic()
    for record in _iter_trace(trace):
        baseline_loader.process(record.as_event())
    baseline_loader.flush()
    baseline_elapsed = time.monotonic() - t0
    report.baseline_rate = total / baseline_elapsed if baseline_elapsed else 0.0
    baseline = canonical_dump(baseline_archive)
    baseline_archive.close()

    # 2. the storm ------------------------------------------------------------
    broker: Broker = (
        ChaosBroker(plan) if plan is not None and plan.bus.active else Broker()
    )
    if plan is not None:
        plan.disarm()
    # declare + bind before any publish so nothing dead-letters as
    # unroutable; bounded with 'block' so the queue is a backpressure
    # boundary (this is what the RSS ceiling leans on)
    broker.declare_queue(
        SOAK_QUEUE, durable=True, max_length=queue_max, overflow="block"
    )
    broker.bind_queue(SOAK_QUEUE, "#")
    queue = broker.queue(SOAK_QUEUE)
    metrics = MetricsRegistry()
    conn = f"sqlite:///{os.path.join(workdir, 'soak.db')}"

    kill_signal = threading.Event()
    replay_done = threading.Event()
    loaders: List[StampedeLoader] = []
    ingest_errors: List[BaseException] = []

    def drained(_loader: StampedeLoader) -> bool:
        return replay_done.is_set() and len(queue) == 0

    def ingest() -> None:
        archive = StampedeArchive.open(conn)
        loader = StampedeLoader(
            archive,
            batch_size=batch_size,
            checkpoint=CheckpointManager(archive, SOAK_QUEUE),
        )
        original_process = loader.process

        def dying_process(event: NLEvent) -> None:
            if kill_signal.is_set():
                raise _SoakKill("injected loader kill mid-storm")
            original_process(event)

        if kill:
            # instance-attribute override, the same seam the kill/resume
            # loader tests use
            setattr(loader, "process", dying_process)
        try:
            try:
                load_from_bus(
                    broker,
                    pattern="#",
                    queue_name=SOAK_QUEUE,
                    loader=loader,
                    durable=True,
                    until=drained,
                    poll_timeout=poll_timeout,
                    dead_letter=True,
                    metrics=metrics,
                )
                loaders.append(loader)
                archive.close()
            except _SoakKill:
                report.killed = True
                loaders.append(loader)
                archive.close()
                # resume: fresh process semantics — new archive handle,
                # new loader, state only from the durable checkpoint
                archive2 = StampedeArchive.open(conn)
                loader2 = StampedeLoader(
                    archive2,
                    batch_size=batch_size,
                    checkpoint=CheckpointManager(archive2, SOAK_QUEUE),
                )
                load_from_bus(
                    broker,
                    pattern="#",
                    queue_name=SOAK_QUEUE,
                    loader=loader2,
                    durable=True,
                    until=drained,
                    poll_timeout=poll_timeout,
                    dead_letter=True,
                    metrics=metrics,
                    resume=True,
                )
                report.resumed = True
                loaders.append(loader2)
                archive2.close()
        except BaseException as exc:  # surfaced to the caller after join
            ingest_errors.append(exc)

    marks = []
    if plan is not None:
        marks.append((arm_at, lambda _n: plan.arm()))
    if kill:
        marks.append((kill_at, lambda _n: kill_signal.set()))

    say(
        f"storm: replaying {total} events"
        + (f" (chaos arms at {arm_at:.0%}" if plan is not None else " (no chaos")
        + (f", kill at {kill_at:.0%})" if kill else ")")
    )
    sampler = _RssSampler()
    sampler.start()
    ingest_thread = threading.Thread(target=ingest, daemon=True)
    storm_t0 = time.monotonic()
    ingest_thread.start()
    replayer = Replayer(broker)
    stats = replayer.run(_iter_trace(trace), shape=shape, marks=marks, total=total)
    replay_done.set()
    report.replay_rate = stats.rate
    report.shape = stats.shape
    ingest_thread.join(timeout=600.0)
    report.duration = time.monotonic() - storm_t0
    report.peak_rss_mb = sampler.stop() / (1024.0 * 1024.0)
    if ingest_errors:
        raise ingest_errors[0]
    if ingest_thread.is_alive():
        raise RuntimeError("soak ingest did not drain within 600s")

    # 3. verdicts -------------------------------------------------------------
    say("verify: canonical diff + leakage + latency gates")
    report.throughput = total / report.duration if report.duration else 0.0
    final = loaders[-1] if loaders else None
    if final is not None:
        report.events_processed = final.stats.events_processed
        report.duplicates_skipped = sum(
            ld.stats.duplicates_skipped for ld in loaders
        )
        report.redelivered = sum(ld.stats.redelivered_events for ld in loaders)
        report.reconnects = sum(ld.stats.reconnects for ld in loaders)
        report.dlq_events = sum(ld.stats.dlq_events for ld in loaders)
    if DEAD_LETTER_QUEUE in broker.queue_names():
        report.broker_dlq_depth = len(broker.queue(DEAD_LETTER_QUEUE))
    report.stranded_messages = len(queue) + queue.unacked_count
    if plan is not None:
        report.faults = plan.stats.to_dict()

    commit_hist = metrics.histogram(
        "stampede_pipeline_latency_seconds",
        "Publish-to-stage latency of bus-delivered events.",
        labels={"stage": "commit"},
    )
    deliver_hist = metrics.histogram(
        "stampede_pipeline_latency_seconds",
        "Publish-to-stage latency of bus-delivered events.",
        labels={"stage": "deliver"},
    )
    report.p99_commit_s = commit_hist.quantile(0.99)
    report.p99_deliver_s = deliver_hist.quantile(0.99)
    report.latency_samples = commit_hist.count

    storm_archive = StampedeArchive.open(conn)
    report.row_diff = diff_canonical(baseline, canonical_dump(storm_archive))
    storm_archive.close()

    report.gates = [
        GateCheck("row_diff", float(len(report.row_diff)), 0.0, "max"),
        GateCheck(
            "dlq_leakage",
            float(report.dlq_events + report.broker_dlq_depth),
            0.0,
            "max",
        ),
        GateCheck("stranded", float(report.stranded_messages), 0.0, "max"),
        GateCheck("throughput_ev_s", report.throughput, min_throughput, "min"),
        GateCheck("p99_commit_s", report.p99_commit_s, max_p99_commit, "max"),
        GateCheck("peak_rss_mb", report.peak_rss_mb, max_rss_mb, "max"),
    ]
    if kill:
        report.gates.append(
            GateCheck("kill_resume", float(report.killed and report.resumed), 1.0, "min")
        )
    return report
