"""Recording bus traffic to portable traces.

Two capture points, one trace format:

* :class:`BusRecorder` — wiretap on an in-process broker.  Registers a
  publish tap (:meth:`repro.bus.broker.Broker.add_tap`), so it sees the
  stream exactly as published — before routing, fan-out, chaos, or
  consumer-group partitioning — with every publisher header intact.
* :func:`record_remote` — subscribes to a ``tcp://`` broker like any
  other consumer and writes what it receives; the capture point is the
  wire, so the recorded inter-arrival spacing includes transport
  delivery timing.

Both record arrival times relative to the first message, which is the
timeline :class:`repro.replay.shape.TraceTiming` scales on replay.
"""
from __future__ import annotations

import threading
import time
from typing import Dict, Mapping, Optional

from repro.bus.broker import Broker, ConnectionLostError
from repro.bus.net import RemoteConsumer
from repro.replay.trace import PathOrFile, TraceRecord, TraceWriter

__all__ = ["BusRecorder", "record_remote"]


class BusRecorder:
    """Tap an in-process broker and write everything published to a trace.

    Use as a context manager around the traffic to capture::

        with BusRecorder(broker, "run.trace"):
            run_pegasus_workflow(...)

    The tap runs on publisher threads; a lock serializes writes so
    concurrent publishers interleave into one well-ordered timeline.
    """

    def __init__(
        self,
        broker: Broker,
        target: PathOrFile,
        meta: Optional[Mapping[str, object]] = None,
    ):
        self._broker = broker
        trace_meta: Dict[str, object] = {"source": "bus-tap"}
        trace_meta.update(meta or {})
        self._writer = TraceWriter(target, meta=trace_meta)
        self._lock = threading.Lock()
        self._origin: Optional[float] = None
        self._started = False
        self.records = 0

    def start(self) -> "BusRecorder":
        if not self._started:
            self._started = True
            self._broker.add_tap(self._tap)
        return self

    def stop(self) -> int:
        """Detach the tap and close the trace; returns records written."""
        if self._started:
            self._started = False
            self._broker.remove_tap(self._tap)
        self._writer.close()
        return self.records

    def _tap(
        self, routing_key: str, body: object, headers: Optional[Mapping[str, object]]
    ) -> None:
        now = time.monotonic()
        with self._lock:
            if self._origin is None:
                self._origin = now
            self._writer.write(
                TraceRecord(now - self._origin, routing_key, body, dict(headers or {}))
            )
            self.records += 1

    def __enter__(self) -> "BusRecorder":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def record_remote(
    url: str,
    target: PathOrFile,
    pattern: str = "stampede.#",
    count: Optional[int] = None,
    duration: Optional[float] = None,
    idle_timeout: float = 5.0,
    meta: Optional[Mapping[str, object]] = None,
) -> int:
    """Record a ``tcp://`` bus stream until a stop condition is met.

    Stops after ``count`` messages, after ``duration`` seconds of
    recording, or once the stream has been silent for ``idle_timeout``
    seconds — whichever comes first.  Returns the number of records
    written.
    """
    trace_meta: Dict[str, object] = {"source": url, "pattern": pattern}
    trace_meta.update(meta or {})
    consumer = RemoteConsumer(url, pattern=pattern)
    written = 0
    origin: Optional[float] = None
    started = time.monotonic()
    last_seen = started
    try:
        with TraceWriter(target, meta=trace_meta) as writer:
            while True:
                if count is not None and written >= count:
                    break
                now = time.monotonic()
                if duration is not None and now - started >= duration:
                    break
                if now - last_seen >= idle_timeout:
                    break
                try:
                    msg = consumer.get_message(timeout=0.1, auto_ack=True)
                except ConnectionLostError:
                    break
                if msg is None:
                    continue
                now = time.monotonic()
                last_seen = now
                if origin is None:
                    origin = now
                writer.write_message(msg, now - origin)
                written += 1
    finally:
        try:
            consumer.cancel()
        except (ConnectionLostError, OSError):
            pass
    return written
