"""Republishing traces onto a live bus at speed, with shaping.

The replayer walks a trace in order and publishes each record with
**fresh** end-to-end stamps — its own publisher identity, a gapless
1..N sequence, new trace ids, and publish clocks taken *now* — because
a replayed stream must be indistinguishable from live traffic to the
reliability layer (resequencer, latency clocks, consumer groups).  The
recorded headers stay in the trace for provenance; they are not
resent.

Partition keys are the one client-side stamp that needs event content:
bodies travel as opaque BP strings, so the replayer extracts
``xwf.id``/``root.xwf.id`` with a light scan (no full parse on the hot
path) and runs the same root-learning keyer remote publishers use.

Timing comes from a :class:`repro.replay.shape.Shape` driven through a
:class:`~repro.replay.shape.Pacer` — recorded spacing at ×N, constant
rate, burst trains, or a diurnal curve.  ``marks`` fire callbacks at
trace-fraction thresholds, which is how the soak driver arms a chaos
plan and triggers the loader kill mid-storm.
"""
from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.bus.broker import DEFAULT_EXCHANGE, Broker
from repro.bus.groups import HEADER_PART_KEY, PartitionKeyer
from repro.bus.net import RemotePublisher
from repro.bus.reliable import HEADER_PUBLISHER, HEADER_SEQ
from repro.obs.spans import (
    CLOCK_EPOCH,
    HEADER_CLOCK_EPOCH,
    HEADER_PUB_MONO,
    HEADER_PUB_TS,
    HEADER_TRACE,
    new_trace_id,
)
from repro.replay.shape import Pacer, Shape, TraceTiming
from repro.replay.trace import TraceRecord

__all__ = ["ReplayStats", "Replayer", "replay"]

_XWF_RE = re.compile(r"(?:^|\s)xwf\.id=(\S+)")
_ROOT_RE = re.compile(r"(?:^|\s)root\.xwf\.id=(\S+)")


@dataclass
class ReplayStats:
    """What a replay run actually did, against what it was asked."""

    records: int = 0
    duration: float = 0.0
    max_behind: float = 0.0
    shape: str = ""
    marks_fired: List[float] = field(default_factory=list)

    @property
    def rate(self) -> float:
        return self.records / self.duration if self.duration > 0 else 0.0


class Replayer:
    """Publishes trace records onto an in-process or ``tcp://`` bus.

    ``marks`` is a sequence of ``(fraction, callback)`` pairs; each
    callback fires exactly once, on the replay thread, when
    ``published / total`` first reaches its fraction.  Callbacks see the
    number of records published so far.
    """

    def __init__(
        self,
        target: Union[Broker, str],
        exchange: str = DEFAULT_EXCHANGE,
        publisher_id: Optional[str] = None,
        stamp: bool = True,
    ):
        self._exchange = exchange
        self._stamp = stamp
        self.publisher_id = publisher_id or f"replay-{new_trace_id()}"
        self._keyer = PartitionKeyer()
        self._broker: Optional[Broker] = None
        self._remote: Optional[RemotePublisher] = None
        if isinstance(target, Broker):
            self._broker = target
        else:
            self._remote = RemotePublisher(
                target,
                exchange=exchange,
                publisher_id=self.publisher_id,
                stamp=stamp,
            )
        self.events_published = 0

    # -- stamping -------------------------------------------------------------
    def _part_key(self, record: TraceRecord) -> str:
        line = record.bp_line()
        if line is None:
            return self.publisher_id
        xwf = _XWF_RE.search(line)
        root = _ROOT_RE.search(line)
        attrs: Dict[str, object] = {}
        if xwf:
            attrs["xwf.id"] = xwf.group(1)
        if root:
            attrs["root.xwf.id"] = root.group(1)
        return self._keyer.key_for(attrs, default=self.publisher_id)

    def _publish(self, record: TraceRecord) -> None:
        self.events_published += 1
        if self._remote is not None:
            self._remote.publish(record.as_event())
            return
        headers: Optional[Dict[str, object]] = None
        if self._stamp:
            headers = {
                HEADER_PUBLISHER: self.publisher_id,
                HEADER_SEQ: self.events_published,
                HEADER_TRACE: new_trace_id(),
                HEADER_PUB_TS: time.time(),
                HEADER_PUB_MONO: time.monotonic(),
                HEADER_CLOCK_EPOCH: CLOCK_EPOCH,
                HEADER_PART_KEY: self._part_key(record),
            }
        assert self._broker is not None
        self._broker.publish(
            record.routing_key, record.body, exchange=self._exchange, headers=headers
        )

    # -- the run --------------------------------------------------------------
    def run(
        self,
        records: Iterable[TraceRecord],
        shape: Optional[Shape] = None,
        marks: Sequence[Tuple[float, Callable[[int], None]]] = (),
        total: Optional[int] = None,
    ) -> ReplayStats:
        """Replay ``records`` through ``shape`` (default: unshaped).

        ``total`` sizes the mark fractions; when omitted, ``records`` is
        materialized to count it (pass it for streaming replay of huge
        traces).
        """
        shape = shape or TraceTiming(0.0)
        if total is None:
            records = list(records)
            total = len(records)
        pending = sorted(marks, key=lambda m: m[0])
        stats = ReplayStats(shape=shape.describe())
        pacer = Pacer()
        for index, record in enumerate(records):
            offset = shape.offset(index, record.t)
            pacer.wait_until(offset)
            stats.max_behind = max(stats.max_behind, pacer.behind(offset))
            self._publish(record)
            stats.records += 1
            while pending and total and stats.records / total >= pending[0][0]:
                fraction, callback = pending.pop(0)
                stats.marks_fired.append(fraction)
                callback(stats.records)
        # anything the stream never reached still owes its callback a
        # final chance at end-of-trace (e.g. a 0.99 mark on a short run)
        for fraction, callback in pending:
            if total and stats.records / total >= fraction:
                stats.marks_fired.append(fraction)
                callback(stats.records)
        self.flush()
        stats.duration = pacer.elapsed()
        return stats

    def flush(self) -> None:
        if self._remote is not None:
            self._remote.flush()

    def close(self) -> None:
        if self._remote is not None:
            self._remote.close()


def replay(
    records: Iterable[TraceRecord],
    target: Union[Broker, str],
    shape: Optional[Shape] = None,
    exchange: str = DEFAULT_EXCHANGE,
    marks: Sequence[Tuple[float, Callable[[int], None]]] = (),
    total: Optional[int] = None,
) -> ReplayStats:
    """One-shot replay of a trace onto a bus target."""
    replayer = Replayer(target, exchange=exchange)
    try:
        return replayer.run(records, shape=shape, marks=marks, total=total)
    finally:
        replayer.close()
