"""Production traffic harness: trace record/replay, storms, and soak.

``repro.replay`` turns bus traffic into a portable artifact and back:

* :mod:`repro.replay.trace` — the JSONL trace format, workflow-id
  remapping, and trace composition (mixed workloads, storm multiplication);
* :mod:`repro.replay.recorder` — capture an in-process broker (publish
  tap) or a ``tcp://`` stream to a trace;
* :mod:`repro.replay.shape` — pacing schedules (trace ×N, constant,
  burst train, diurnal) and the drift-free monotonic pacer;
* :mod:`repro.replay.replayer` — republish a trace as live traffic with
  fresh end-to-end stamps;
* :mod:`repro.replay.soak` — the storm driver: shaped replay through a
  real loader with mid-replay chaos and kill/resume, gated on
  throughput, latency, leakage, memory, and row identity;
* :mod:`repro.replay.cli` — the ``stampede-replay`` command.
"""
from repro.replay.recorder import BusRecorder, record_remote
from repro.replay.replayer import Replayer, ReplayStats, replay
from repro.replay.soak import GateCheck, SoakReport, mixed_trace, run_soak, storm_stream
from repro.replay.shape import (
    BurstTrain,
    ConstantRate,
    Diurnal,
    Pacer,
    Shape,
    TraceTiming,
    parse_shape,
)
from repro.replay.trace import (
    TraceError,
    TraceRecord,
    TraceWriter,
    compose_traces,
    read_trace,
    remap_workflow_ids,
    repeat_trace,
    trace_from_events,
    trace_meta,
    write_trace,
)

__all__ = [
    "BusRecorder",
    "record_remote",
    "Replayer",
    "ReplayStats",
    "replay",
    "GateCheck",
    "SoakReport",
    "mixed_trace",
    "run_soak",
    "storm_stream",
    "BurstTrain",
    "ConstantRate",
    "Diurnal",
    "Pacer",
    "Shape",
    "TraceTiming",
    "parse_shape",
    "TraceError",
    "TraceRecord",
    "TraceWriter",
    "compose_traces",
    "read_trace",
    "remap_workflow_ids",
    "repeat_trace",
    "trace_from_events",
    "trace_meta",
    "write_trace",
]
