"""Spill-to-disk overflow buffer: graceful degradation when the archive
is unavailable.

When the archive stays down past the loader's whole retry ladder, the
bus consumption loop switches to *degraded mode*: incoming events are
appended to a :class:`SpillBuffer` — a bounded, append-only file of BP
lines — and acked, so the queue keeps draining and publishers are never
blocked by an archive outage.  On recovery the buffer is drained back
through the loader in arrival order, then truncated; a crash while
spilled data exists leaves the file on disk for the next run.

The buffer is deliberately dumb: BP text lines, fsync-free appends, a
hard ``max_events`` bound (overflow raises — at that point the operator
has an outage, not a blip, and silently eating events would violate the
no-loss contract the chaos suite asserts).
"""
from __future__ import annotations

import os
from typing import Iterator, List

__all__ = ["SpillBuffer", "SpillOverflowError"]


class SpillOverflowError(RuntimeError):
    """The spill buffer hit its bound: the outage outlasted the budget."""


class SpillBuffer:
    """Bounded file-backed FIFO of BP event lines."""

    def __init__(self, path, max_events: int = 100_000):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.path = os.fspath(path)
        self.max_events = max_events
        self.appended = 0  # lifetime appends, survives clear()
        self._count = self._count_existing()

    def _count_existing(self) -> int:
        if not os.path.exists(self.path):
            return 0
        with open(self.path, "r", encoding="utf-8") as fh:
            return sum(1 for line in fh if line.strip())

    def append(self, bp_line: str) -> None:
        if self._count >= self.max_events:
            raise SpillOverflowError(
                f"spill buffer {self.path!r} full ({self.max_events} events)"
            )
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(bp_line.rstrip("\n") + "\n")
        self._count += 1
        self.appended += 1

    def lines(self) -> List[str]:
        """The buffered BP lines, oldest first (non-destructive)."""
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r", encoding="utf-8") as fh:
            return [line.rstrip("\n") for line in fh if line.strip()]

    def __iter__(self) -> Iterator[str]:
        return iter(self.lines())

    def clear(self) -> None:
        """Truncate after a successful drain (data is in the archive now)."""
        if os.path.exists(self.path):
            os.remove(self.path)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0
