"""nl_load: the loading front-end (paper §IV-E).

Reads normalized BP events from a file or an AMQP queue and hands them to
the ``stampede_loader`` module, mirroring the paper's invocation::

    nl_load --amqp-host=... -A queue=stampede stampede_loader \
        connString=sqlite:///test.db

Usable three ways:

* :func:`load_file` / :func:`load_events` — Python API over files and
  iterables;
* :func:`load_from_bus` — attach to an in-process broker queue and drain
  it (optionally following a live run until a predicate says stop);
* :func:`main` — command-line entry point for file inputs.
"""
from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Iterable, List, Optional, TextIO, Tuple, Union

from repro.archive.store import StampedeArchive
from repro.bus.broker import Broker, ConnectionLostError
from repro.bus.client import EventConsumer
from repro.bus.groups import GroupConsumer
from repro.bus.queues import Message
from repro.bus.reliable import HEADER_PUBLISHER, HEADER_SEQ, Resequencer
from repro.lint.config import LintConfig
from repro.lint.report import render_text
from repro.lint.rules import Finding, Severity
from repro.lint.stream import StreamLinter
from repro.loader.checkpoint import CheckpointManager
from repro.loader.dlq import DeadLetterQueue
from repro.loader.pipeline import ParsePool
from repro.loader.spill import SpillBuffer
from repro.loader.stampede_loader import LoaderError, LoaderStats, StampedeLoader
from repro.netlogger.events import NLEvent
from repro.obs.instrument import bind_broker, bind_faults, bind_loader
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import PipelineClock
from repro.netlogger.stream import (
    BPReader,
    read_events_with_offsets,
    read_lines,
    read_lines_with_offsets,
)

__all__ = [
    "load_events",
    "load_file",
    "load_file_linted",
    "load_file_sharded",
    "load_from_bus",
    "make_loader",
    "main",
]


def make_loader(
    conn_string: str = "sqlite:///:memory:",
    archive: Optional[StampedeArchive] = None,
    batch_size: int = 500,
    strict: bool = True,
    validate: bool = False,
    checkpoint_source: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    rollup: bool = True,
) -> StampedeLoader:
    """Construct a StampedeLoader over a new or existing archive.

    ``checkpoint_source`` names the input (a file path, a queue name) in
    the archive's checkpoint table and turns on crash-safe checkpointing:
    every flush atomically records the source position alongside the rows
    it made durable, so an interrupted load can :meth:`~StampedeLoader.resume`.

    ``metrics`` attaches a self-monitoring registry: the archive's
    transactions are timed, the loader's flush latency is observed into
    a histogram, and every :class:`LoaderStats` counter is exported
    through a scrape-time collector (see :mod:`repro.obs`).
    """
    if archive is None:
        archive = StampedeArchive.open(conn_string)
    if metrics is not None:
        archive.instrument(metrics)
    checkpoint = (
        CheckpointManager(archive, checkpoint_source)
        if checkpoint_source is not None
        else None
    )
    loader = StampedeLoader(
        archive,
        batch_size=batch_size,
        strict=strict,
        validate=validate,
        checkpoint=checkpoint,
        metrics=metrics,
        rollup=rollup,
    )
    if metrics is not None:
        bind_loader(metrics, loader)
    return loader


def load_events(
    events: Iterable[NLEvent],
    loader: Optional[StampedeLoader] = None,
    **loader_kwargs,
) -> StampedeLoader:
    """Load an event iterable; returns the loader (archive + stats inside)."""
    if loader is None:
        loader = make_loader(**loader_kwargs)
    loader.process_all(events)
    return loader


def load_file(
    path,
    loader: Optional[StampedeLoader] = None,
    on_error: str = "raise",
    resume: bool = False,
    workers: int = 0,
    parse_mode: str = "fast",
    worker_mode: str = "thread",
    chunk_size: int = 256,
    **loader_kwargs,
) -> StampedeLoader:
    """Load a BP log file.

    For a checkpointing loader the byte offset of each event is tracked
    so every flush checkpoints exactly how far into the file the archive
    is; ``resume=True`` seeks past everything a previous (possibly
    crashed) run already committed instead of re-loading it.

    ``workers > 0`` fans the parse/normalize stage out over a
    :class:`~repro.loader.pipeline.ParsePool` of that many threads
    (``worker_mode='process'`` for a process pool); events reach the
    loader in exact file order regardless, so the archive — and any
    checkpoint offsets — are identical to a ``workers=0`` run.
    ``parse_mode='strict'`` forces the reference char-by-char BP scanner
    instead of the fast-path tokenizers.
    """
    if workers > 0 or parse_mode != "fast":
        pool = ParsePool(
            workers=workers,
            mode=worker_mode,
            parse_mode=parse_mode,
            chunk_size=chunk_size,
        )
        with pool:
            return _load_file_pipelined(
                path, loader, on_error, resume, pool, loader_kwargs
            )
    if loader is not None and loader.checkpoint is not None:
        start = loader.resume() if resume else 0

        def positioned() -> Iterable[NLEvent]:
            for event, offset in read_events_with_offsets(
                path, start_offset=start, on_error=on_error
            ):
                loader.position = offset
                yield event

        return load_events(positioned(), loader)
    if resume:
        raise ValueError("resume=True requires a loader with a checkpoint manager")
    return load_events(BPReader(path, on_error=on_error), loader, **loader_kwargs)


def _load_file_pipelined(
    path,
    loader: Optional[StampedeLoader],
    on_error,
    resume: bool,
    pool: ParsePool,
    loader_kwargs: dict,
) -> StampedeLoader:
    """File loading through a ParsePool (any worker count, either parse
    mode); mirrors the sequential paths of :func:`load_file` exactly."""
    if loader is not None and loader.checkpoint is not None:
        start = loader.resume() if resume else 0

        def positioned() -> Iterable[NLEvent]:
            lines = read_lines_with_offsets(path, start_offset=start)
            for event, offset in pool.events(lines, on_error=on_error):
                loader.position = offset
                yield event

        return load_events(positioned(), loader)
    if resume:
        raise ValueError("resume=True requires a loader with a checkpoint manager")
    events = (
        event for event, _lineno in pool.events(read_lines(path), on_error=on_error)
    )
    return load_events(events, loader, **loader_kwargs)


def load_file_sharded(
    path,
    sharded,
    on_error: str = "raise",
    resume: bool = False,
):
    """Load a BP file through a :class:`repro.archive.shard.ShardedLoader`.

    Mirrors :func:`load_file`'s checkpoint semantics per shard: each
    shard checkpoints the file offset of *its* last committed event, and
    ``resume=True`` re-reads from the minimum shard floor while writers
    skip what they already committed.
    """
    start = time.perf_counter()
    if sharded.checkpoint_source is not None:
        floor = sharded.resume() if resume else 0
        for event, offset in read_events_with_offsets(
            path, start_offset=floor, on_error=on_error
        ):
            sharded.position = offset
            sharded.process(event)
        sharded.flush()
        sharded.wall_seconds += time.perf_counter() - start
        return sharded
    if resume:
        raise ValueError(
            "resume=True requires a ShardedLoader with a checkpoint_source"
        )
    return sharded.process_all(BPReader(path, on_error=on_error))


def load_file_linted(
    source: Union[str, TextIO],
    loader: Optional[StampedeLoader] = None,
    quarantine: Optional[Union[str, TextIO]] = None,
    config: Optional[LintConfig] = None,
    **loader_kwargs,
) -> Tuple[StampedeLoader, List[Finding], int]:
    """Load a BP log in lint-strict mode, quarantining failing events.

    Every line runs through the :class:`StreamLinter` analyzers first.
    Lines that trigger an error-severity finding (malformed BP, schema
    violations, illegal lifecycle transitions, orphan references, duplicate
    delivery, ...) are written verbatim to ``quarantine`` — a path or file
    object — instead of being silently archived; everything else is loaded
    normally.  Returns ``(loader, findings, quarantined_count)``.
    """
    if loader is None:
        loader = make_loader(**loader_kwargs)
    path = source if isinstance(source, str) else "<stdin>"
    linter = StreamLinter(config=config, path=path)
    findings: List[Finding] = []
    quarantined = 0

    close_in = close_q = False
    if isinstance(source, str):
        fh: TextIO = open(source, "r", encoding="utf-8")
        close_in = True
    else:
        fh = source
    qfh: Optional[TextIO] = None
    if isinstance(quarantine, str):
        qfh = open(quarantine, "w", encoding="utf-8")
        close_q = True
    elif quarantine is not None:
        qfh = quarantine
    try:
        for lineno, line in enumerate(fh, start=1):
            event, line_findings = linter.feed_line(line, lineno)
            findings.extend(line_findings)
            if event is None and not line_findings:
                continue  # blank line or comment
            if event is None or any(
                f.severity >= Severity.ERROR for f in line_findings
            ):
                quarantined += 1
                if qfh is not None:
                    qfh.write(line.rstrip("\n") + "\n")
                continue
            loader.process(event)
        loader.flush()
        findings.extend(linter.finish())
    finally:
        if close_in:
            fh.close()
        if qfh is not None:
            qfh.flush()
            if close_q:
                qfh.close()
    return loader, findings, quarantined


def load_from_bus(
    broker: Union[Broker, str],
    pattern: str = "stampede.#",
    queue_name: Optional[str] = None,
    loader: Optional[StampedeLoader] = None,
    until: Optional[Callable[[StampedeLoader], bool]] = None,
    durable: bool = False,
    poll_timeout: float = 0.05,
    max_length: Optional[int] = None,
    overflow: str = "drop-oldest",
    resume: bool = False,
    dead_letter: Union[DeadLetterQueue, bool, None] = None,
    spill: Union[SpillBuffer, str, None] = None,
    resequence: bool = True,
    workers: int = 0,
    parse_mode: str = "fast",
    worker_mode: str = "thread",
    chunk_size: int = 256,
    metrics: Optional[MetricsRegistry] = None,
    group: Optional[str] = None,
    member_id: Optional[str] = None,
    partitions: int = 8,
    **loader_kwargs,
) -> StampedeLoader:
    """Consume events from a broker queue into the archive.

    Drains whatever is queued; if ``until`` is given, keeps consuming until
    ``until(loader)`` returns True (e.g. "the workflow-terminated state has
    been recorded"), enabling real-time loading concurrent with a run.

    The consumption loop is backpressure-aware, crash-safe, and — under
    chaos — self-healing:

    * ``get`` *blocks* up to ``poll_timeout`` seconds instead of spinning,
      so an idle loader costs no CPU and the batch buffer only flushes on
      batch-full (inside :meth:`StampedeLoader.process`) or on the idle
      deadline — never once per empty poll;
    * messages are acked only after the batch containing them commits
      (at-least-once delivery; a crashed loader's in-flight messages are
      redelivered);
    * deliveries run through a :class:`~repro.bus.reliable.Resequencer`
      (``resequence=True``), which restores publish order and discards
      duplicate deliveries, upgrading the at-least-once bus to
      exactly-once archive writes;
    * a lost broker connection is survived: the in-flight batch is
      committed, stale state dropped, and the queue re-subscribed — the
      broker's redeliveries then dedupe against the committed sequences;
    * ``dead_letter`` (a :class:`~repro.loader.dlq.DeadLetterQueue`, or
      True to build one over this loader's archive) quarantines poison
      events — unparseable or schema-violating payloads — instead of
      letting one bad message kill the whole batch;
    * ``spill`` (a :class:`~repro.loader.spill.SpillBuffer` or a path)
      enables graceful degradation: when the archive stays down past the
      retry ladder, events are parked on disk and acked, then drained
      back through the loader once the archive recovers;
    * ``max_length`` + ``overflow='block'`` bound the queue so a slow
      loader blocks publishers instead of accumulating events;
    * with a checkpointing loader and ``resume=True``, consumption
      restarts after the last committed delivery tag, skipping redelivered
      messages that are already in the archive.
    * ``workers > 0`` drains queued messages in bursts and parses
      string-bodied payloads through a parallel
      :class:`~repro.loader.pipeline.ParsePool`; already-materialized
      event bodies pass through untouched.  Messages are still
      processed, acked, and dead-lettered one at a time in delivery
      order, so every guarantee above holds for any worker count.
    * ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) turns
      on self-monitoring: broker queue/exchange collectors, the loader's
      stats collector + flush histogram, and a
      :class:`~repro.obs.spans.PipelineClock` that converts the
      publisher's ``x-pub-ts`` stamps into end-to-end deliver/commit
      latency histograms.
    * ``broker`` may be a ``tcp://host:port`` url instead of an
      in-process :class:`Broker` — consumption then runs over the
      :mod:`repro.bus.net` transport against a remote
      :class:`~repro.bus.net.BrokerServer`: same loop, same guarantees
      (the remote consumer raises the same :class:`ConnectionLostError`
      and reconnects the same way).
    * ``group`` joins a consumer group instead of binding a private
      queue: N concurrent loaders sharing a group name split the stream
      by root workflow id without double-committing — see
      :mod:`repro.bus.groups`.  ``member_id`` pins this loader's member
      identity (a reconnect under the same id resumes the same
      partition streams, which is what keeps it exactly-once);
      ``partitions`` sizes a group created on first join.
    """
    remote = isinstance(broker, str)
    if resume and (remote or group is not None):
        # delivery tags are member-local for groups and
        # subscription-local over TCP, so a checkpointed tag from an
        # earlier run cannot be compared against them; group commit
        # floors / redelivery dedupe already cover crash-restart
        raise ValueError(
            "resume=True is only supported for in-process private-queue "
            "consumers (group/tcp consumers get exactly-once from "
            "commit floors and the resequencer instead)"
        )
    if loader is None:
        loader = make_loader(metrics=metrics, **loader_kwargs)
    elif metrics is not None:
        bind_loader(metrics, loader)
    clock = PipelineClock(metrics) if metrics is not None else None
    if metrics is not None and isinstance(broker, Broker):
        bind_broker(metrics, broker)
    pool = (
        ParsePool(
            workers=workers,
            mode=worker_mode,
            parse_mode=parse_mode,
            chunk_size=chunk_size,
        )
        if workers > 0 or parse_mode != "fast"
        else None
    )
    burst_limit = max(1, chunk_size) * max(1, workers)
    consumer: Union[EventConsumer, GroupConsumer, "RemoteConsumer"]
    if remote:
        from repro.bus.net import RemoteConsumer

        consumer = RemoteConsumer(
            broker,  # type: ignore[arg-type]
            pattern=pattern,
            queue_name=queue_name,
            durable=durable,
            group=group,
            member_id=member_id,
            partitions=partitions,
        )
    elif group is not None:
        consumer = GroupConsumer(
            broker,  # type: ignore[arg-type]
            group,
            pattern=pattern,
            partitions=partitions,
            member_id=member_id,
        )
    else:
        consumer = EventConsumer(
            broker,  # type: ignore[arg-type]
            pattern=pattern,
            queue_name=queue_name,
            durable=durable,
            max_length=max_length,
            overflow=overflow,
        )
    if dead_letter is True:
        dead_letter = DeadLetterQueue(
            loader.archive,
            source=consumer.queue_name,
            # republishing quarantined events onto the bus needs a local
            # broker handle; remote loaders keep the archive-table side
            broker=broker if isinstance(broker, Broker) else None,
        )
    elif dead_letter is False:
        dead_letter = None
    if spill is not None and not isinstance(spill, SpillBuffer):
        spill = SpillBuffer(spill)
    reseq = Resequencer() if resequence else None
    transient = loader.archive.db.TRANSIENT_ERRORS
    skip_to = 0
    if resume and loader.checkpoint is not None:
        skip_to = loader.resume()
    in_flight: List[Message] = []
    archive_down = False
    # Persist resequencer dedupe floors with every checkpoint, and seed
    # them back on resume: a fresh resequencer starting mid-stream would
    # otherwise hold every delivery behind sequences committed before the
    # crash, and a chaos redelivery racing a force-release could be
    # misread as a duplicate — losing a row.  The floor folds in the
    # in-flight messages at export time, which flush makes durable in the
    # very transaction that writes the checkpoint.
    reseq_floor: Dict[str, int] = dict(loader.resumed_reseq)
    previous_reseq_state = loader.reseq_state
    if reseq is not None and loader.checkpoint is not None:
        def export_reseq_floor() -> Dict[str, int]:
            for m in in_flight:
                hdrs = m.headers or {}
                pub = hdrs.get(HEADER_PUBLISHER)
                seq = hdrs.get(HEADER_SEQ)
                if pub is not None and seq is not None:
                    nxt = int(seq) + 1
                    if nxt > reseq_floor.get(str(pub), 1):
                        reseq_floor[str(pub)] = nxt
            return dict(reseq_floor)

        loader.reseq_state = export_reseq_floor
        for pub, nxt in loader.resumed_reseq.items():
            if nxt > 1:
                reseq.seed(pub, nxt)

    def ack_quiet(msg: Message) -> None:
        # after a disconnect the tag is stale (the broker requeued the
        # message); the redelivery will settle through the normal path
        try:
            consumer.ack(msg)
        except (ConnectionLostError, ValueError):
            pass

    def ack_committed(_loader: StampedeLoader) -> None:
        # called by the loader after a successful flush commit: every
        # message whose events are now durable can be settled.
        if clock is not None:
            clock.on_committed(in_flight)
        for msg in in_flight:
            ack_quiet(msg)
        in_flight.clear()

    def enter_degraded() -> None:
        # the archive outlasted the whole retry ladder
        nonlocal archive_down
        loader.stats.archive_outages += 1
        if spill is None:
            raise  # noqa: PLE0704 - re-raise the active transient error
        archive_down = True

    def bp_line(msg: Message) -> str:
        body = msg.body
        return body if isinstance(body, str) else EventConsumer.as_event(msg).to_bp()

    def drain_spill() -> None:
        # journal first — its events arrived before anything spilled —
        # then replay the spill file in arrival order
        nonlocal archive_down
        loader.flush()
        if spill is not None and spill:
            for line in spill.lines():
                loader.process(NLEvent.from_bp(line))
            loader.flush()
            spill.clear()
            loader.stats.spill_drains += 1
        archive_down = False

    def try_recover() -> None:
        try:
            drain_spill()
        except transient:
            pass  # still down; stay degraded

    def consume(msg: Message, parsed: Optional[object] = None) -> None:
        if msg.delivery_tag <= skip_to:
            if clock is not None:
                clock.on_dropped(msg)
            ack_quiet(msg)  # already archived before the crash
            return
        try:
            if archive_down and spill is not None:
                spill.append(bp_line(msg))
                loader.stats.spilled_events += 1
                if clock is not None:
                    clock.on_dropped(msg)  # settles outside any batch commit
                ack_quiet(msg)  # on disk is durable enough to settle
                return
            in_flight.append(msg)
            try:
                loader.position = msg.delivery_tag
                if isinstance(parsed, Exception):
                    # the parse pool already found this payload poisonous;
                    # re-raise into the normal quarantine path below
                    raise parsed
                loader.process(
                    parsed if parsed is not None else EventConsumer.as_event(msg)
                )
            except transient:
                # batch-full flush failed beyond retries; the event's ops
                # are safely journalled (flush only clears on success), so
                # keep the message in flight and degrade if possible
                enter_degraded()
        except (LoaderError, TypeError, ValueError, KeyError) as exc:
            # poison event: quarantine it rather than kill the batch
            if msg in in_flight:
                in_flight.remove(msg)
            if dead_letter is None:
                raise
            dead_letter.quarantine(
                msg.body, f"{type(exc).__name__}: {exc}", msg.routing_key
            )
            loader.stats.dlq_events += 1
            if clock is not None:
                clock.on_dropped(msg)
            ack_quiet(msg)

    def consume_all(ready: List[Message]) -> None:
        # pooled path: pre-parse the string-bodied payloads in parallel,
        # then settle each message through the ordinary one-at-a-time
        # consume path (ack/DLQ/spill decisions stay per-message).
        if pool is None:
            for m in ready:
                consume(m)
            return
        outcomes: List[Optional[object]] = [None] * len(ready)
        to_parse = [
            (m.body, i) for i, m in enumerate(ready) if isinstance(m.body, str)
        ]
        for outcome, _line, i in pool.results(to_parse):
            outcomes[i] = outcome
        for m, outcome in zip(ready, outcomes):
            consume(m, outcome)

    def lost_connection() -> None:
        # the broker requeued everything unacked, including our
        # uncommitted batch: commit it now (the acks tolerate the
        # dead connection), drop state that points at requeued
        # messages, and re-subscribe — committed redeliveries then
        # dedupe against the resequencer's release positions.
        loader.flush()
        in_flight.clear()
        if reseq is not None:
            reseq.reset_held()
        consumer.reconnect()
        loader.stats.reconnects += 1

    previous_on_flush = loader.on_flush
    loader.on_flush = ack_committed
    # depth() is free in-process but a full round trip over TCP, so a
    # remote loader samples it sparsely instead of once per burst
    depth_stride = 64 if remote else 1
    bursts = 0
    try:
        while True:
            try:
                msg = consumer.get_message(timeout=poll_timeout, auto_ack=False)
            except ConnectionLostError:
                lost_connection()
                continue
            if msg is not None:
                burst = [msg]
                conn_lost = False
                if pool is not None and pool.workers > 0:
                    # drain whatever is already queued (up to one pool
                    # round) so the workers get a full burst to chew on
                    while len(burst) < burst_limit:
                        try:
                            extra = consumer.get_message(timeout=0, auto_ack=False)
                        except ConnectionLostError:
                            conn_lost = True
                            break
                        if extra is None:
                            break
                        burst.append(extra)
                bursts += 1
                if bursts % depth_stride == 0:
                    loader.stats.record_queue_depth(consumer.depth())
                ready: List[Message] = []
                for m in burst:
                    if clock is not None:
                        clock.on_delivered(m)
                    if m.redelivered:
                        loader.stats.redelivered_events += 1
                    released, duplicates = (
                        reseq.offer(m) if reseq is not None else ([m], [])
                    )
                    for dup in duplicates:
                        loader.stats.duplicates_skipped += 1
                        if clock is not None:
                            clock.on_dropped(dup)
                        ack_quiet(dup)
                    ready.extend(released)
                consume_all(ready)
                if conn_lost:
                    lost_connection()
                continue
            # idle deadline: push out the partial batch, then consult the
            # stop predicate (or stop once the backlog is drained).
            if archive_down:
                try_recover()
            else:
                try:
                    loader.flush()
                except transient:
                    enter_degraded()
            if until is None or until(loader):
                break
        # end of stream: release anything still held for a gap that will
        # never fill, then make the tail durable
        if reseq is not None:
            consume_all(reseq.release_pending())
        if archive_down:
            try_recover()
        loader.flush()
    finally:
        loader.on_flush = previous_on_flush
        loader.reseq_state = previous_reseq_state
        if pool is not None:
            pool.close()
        consumer.cancel()  # requeues anything not acked (crash semantics)
    return loader


def main(argv: Optional[list] = None) -> int:
    """Command-line nl_load for file inputs.

    Example::

        nl-load workflow.bp stampede_loader connString=sqlite:///run.db
    """
    parser = argparse.ArgumentParser(
        prog="nl-load", description="Load NetLogger BP logs into a Stampede archive."
    )
    parser.add_argument(
        "input",
        nargs="?",
        default=None,
        help="BP log file to load ('-' for stdin); omit with --bus",
    )
    parser.add_argument(
        "module",
        nargs="?",
        default="stampede_loader",
        help="loader module (only 'stampede_loader' is supported)",
    )
    parser.add_argument(
        "params",
        nargs="*",
        help="module parameters, e.g. connString=sqlite:///out.db",
    )
    parser.add_argument("-b", "--batch-size", type=int, default=500)
    parser.add_argument(
        "-w",
        "--workers",
        type=int,
        default=0,
        help="parse/normalize worker count (0 = inline, the default)",
    )
    parser.add_argument(
        "--parse-mode",
        choices=("fast", "strict"),
        default="fast",
        help="BP parser: 'fast' C-speed tokenizers with automatic "
        "fallback (default), or 'strict' reference scanner",
    )
    parser.add_argument(
        "--worker-mode",
        choices=("thread", "process"),
        default="thread",
        help="worker pool flavour for --workers > 0 (default: thread)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=256,
        help="lines per parse-pool work unit (default: 256)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="nl-load.pstats",
        metavar="PATH",
        help="profile the load, dump pstats to PATH "
        "(default nl-load.pstats) and print the top 20 entries",
    )
    parser.add_argument(
        "--tolerant",
        action="store_true",
        help="synthesize placeholders for out-of-order events instead of failing",
    )
    parser.add_argument(
        "--validate", action="store_true", help="validate events against the schema"
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="run the stampede-lint stream analyzers and quarantine events "
        "with error-severity findings instead of archiving them",
    )
    parser.add_argument(
        "--quarantine",
        metavar="PATH",
        help="with --lint: write quarantined BP lines to this file",
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="record crash-safe progress checkpoints in the archive "
        "(keyed by the input path)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue a checkpointed load after the last committed offset "
        "(implies --checkpoint)",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        help="fault-injection plan (JSON file, see repro.faults.FaultPlan): "
        "archive faults apply to this load; used to rehearse outage recovery",
    )
    parser.add_argument(
        "--shard-dir",
        metavar="DIR",
        help="load into a sharded archive in DIR (shard-NNN.db files + "
        "shards.json manifest) instead of a single connString database; "
        "events route by root workflow id — crc32, the bus partitioner",
    )
    parser.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="with --shard-dir: shard count when creating a new set "
        "(opening an existing set with a different N fails loudly)",
    )
    parser.add_argument(
        "--tier-finished",
        action="store_true",
        help="with --shard-dir: after the load, move finished root "
        "workflows from the hot shards into the append-only long-term "
        "store under DIR/longterm/",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        help="serve Prometheus metrics on http://127.0.0.1:PORT/metrics "
        "during (and after, see --metrics-linger) the load; 0 picks an "
        "ephemeral port — the resolved URL is printed to stderr",
    )
    parser.add_argument(
        "--metrics-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="with --metrics-port: keep serving for this long after the "
        "load finishes so scrapers can read the final state (default 0)",
    )
    parser.add_argument(
        "--self-log",
        metavar="PATH",
        help="after the load, write the metrics registry as "
        "stampede.obs.* BP events to PATH (loadable by nl-load itself)",
    )
    parser.add_argument(
        "--bus",
        metavar="URL",
        help="consume from a running stampede-bus server (tcp://host:port) "
        "instead of a file; see also --group/--idle-exit",
    )
    parser.add_argument(
        "--pattern",
        default="stampede.#",
        help="with --bus: topic pattern to subscribe (default: stampede.#)",
    )
    parser.add_argument(
        "--queue",
        metavar="NAME",
        help="with --bus: bind a named durable queue instead of an "
        "anonymous one (ignored with --group)",
    )
    parser.add_argument(
        "--group",
        metavar="NAME",
        help="with --bus: join this consumer group — concurrent nl-load "
        "processes sharing the name split the stream by root workflow "
        "id, each committing its partitions exactly once",
    )
    parser.add_argument(
        "--member-id",
        metavar="ID",
        help="with --group: fix this loader's member identity so a "
        "restart resumes the same partitions",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=8,
        help="with --group: partition count if this join creates the "
        "group (default: 8)",
    )
    parser.add_argument(
        "--idle-exit",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="with --bus: exit after this long with no new events "
        "(default 10; 0 = drain what is queued and exit immediately)",
    )
    parser.add_argument(
        "--no-rollup",
        action="store_true",
        help="skip maintaining the materialized query rollups "
        "(repro.core.rollup); dashboards fall back to full scans until "
        "'stampede-rollup rebuild' backfills them",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    # Positional normalization: with --bus the file argument is omitted,
    # so what argparse parsed into the `input` slot may really be the
    # module name.  Sort the positionals by shape instead — module
    # parameters always carry '=' — then validate what remains.
    positionals = [p for p in (args.input, args.module, *args.params) if p is not None]
    param_args = [p for p in positionals if "=" in p]
    names = [p for p in positionals if "=" not in p]
    if args.bus is not None:
        args.input = None
        if args.checkpoint or args.resume:
            parser.error(
                "--checkpoint/--resume apply to file loads; bus consumers "
                "get crash-safety from redelivery + dedupe instead"
            )
        if args.lint:
            parser.error("--lint is not supported with --bus")
    else:
        if args.group or args.member_id:
            parser.error("--group/--member-id require --bus")
        if not names:
            parser.error("need an input file or --bus URL")
        args.input = names.pop(0)
    module = names.pop(0) if names else "stampede_loader"
    if names:
        parser.error(f"unexpected arguments: {names!r}")
    if module != "stampede_loader":
        parser.error(f"unknown loader module {module!r}")
    if args.quarantine and not args.lint:
        parser.error("--quarantine requires --lint")
    if args.resume:
        args.checkpoint = True
    if args.checkpoint and args.input == "-":
        parser.error("--checkpoint/--resume need a seekable file, not stdin")
    if args.checkpoint and args.lint:
        parser.error("--checkpoint/--resume cannot be combined with --lint")
    if args.lint and args.workers:
        parser.error("--workers cannot be combined with --lint (lint is streaming)")
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    params = dict(p.split("=", 1) for p in param_args)
    conn_string = params.get("connString", "sqlite:///:memory:")
    if args.shards is not None and args.shard_dir is None:
        parser.error("--shards requires --shard-dir")
    if args.tier_finished and args.shard_dir is None:
        parser.error("--tier-finished requires --shard-dir")
    if args.shard_dir is not None:
        if args.bus:
            parser.error(
                "--shard-dir applies to file loads; bus consumers shard "
                "via --group partitions (same crc32 router) instead"
            )
        if args.lint:
            parser.error("--lint is not supported with --shard-dir")
        if args.workers:
            parser.error("--workers is not supported with --shard-dir")
        if args.faults:
            parser.error("--faults is not supported with --shard-dir")
        if "connString" in params:
            parser.error(
                "connString conflicts with --shard-dir (shards own their "
                "database files)"
            )

    # Self-monitoring: a fresh registry per invocation (the process
    # default stays untouched), served over HTTP and/or dumped as BP.
    registry: Optional[MetricsRegistry] = None
    server = None
    if args.metrics_port is not None or args.self_log:
        registry = MetricsRegistry()

    if args.shard_dir is not None:
        # import lazily: repro.archive.shard imports from this package
        from repro.archive.shard import ShardedLoader, ShardSet
        from repro.archive.tier import tier_finished
        from repro.obs.instrument import bind_shards

        shard_set = (
            ShardSet.create(args.shard_dir, args.shards)
            if args.shards is not None
            else ShardSet.open(args.shard_dir)
        )
        sharded = ShardedLoader(
            shard_set,
            batch_size=args.batch_size,
            strict=not args.tolerant,
            validate=args.validate,
            checkpoint_source=args.input if args.checkpoint else None,
            rollup=not args.no_rollup,
        )
        if registry is not None:
            bind_shards(registry, sharded)
            if args.metrics_port is not None:
                from repro.obs.export import MetricsServer

                server = MetricsServer(registry, port=args.metrics_port).start()
                print(f"metrics: {server.url}", file=sys.stderr, flush=True)
        shard_source = sys.stdin if args.input == "-" else args.input

        def run_sharded():
            return load_file_sharded(shard_source, sharded, resume=args.resume)

        if args.profile:
            _profiled(run_sharded, args.profile)
        else:
            run_sharded()
        sharded.close()
        if args.tier_finished:
            report = tier_finished(shard_set)
            print(
                f"tiered {report.tiered_roots} finished root workflow(s) "
                f"({report.rows_moved} rows) into the long-term store; "
                f"{report.skipped_roots} still running",
                file=sys.stderr,
            )
        if args.verbose:
            _print_shard_stats(sharded.stats())
        _finish_obs(registry, server, args)
        shard_set.close()
        return 0

    # In lint mode the analyzers are the strictness layer: events that would
    # crash a strict loader are quarantined before it sees them, and the
    # loader runs tolerantly so a quarantined event's survivors (e.g. a
    # main.end whose submit.start was quarantined) cannot take it down.
    loader = make_loader(
        conn_string,
        batch_size=args.batch_size,
        strict=not (args.tolerant or args.lint),
        validate=args.validate,
        checkpoint_source=args.input if args.checkpoint else None,
        metrics=registry,
        rollup=not args.no_rollup,
    )
    plan = None
    if args.faults:
        from repro.faults import FaultPlan

        plan = FaultPlan.from_file(args.faults)
        loader.archive.db = plan.wrap_database(loader.archive.db)
        if registry is not None:
            bind_faults(registry, plan.stats)
    if registry is not None and args.metrics_port is not None:
        from repro.obs.export import MetricsServer

        server = MetricsServer(registry, port=args.metrics_port).start()
        print(f"metrics: {server.url}", file=sys.stderr, flush=True)
    source = sys.stdin if args.input == "-" else args.input

    if args.bus:
        until: Optional[Callable[[StampedeLoader], bool]] = None
        if args.idle_exit > 0:
            last = {"count": -1.0, "changed": time.monotonic()}

            def idle_until(ldr: StampedeLoader) -> bool:
                # consulted only on idle ticks: stop once nothing new has
                # arrived for idle_exit seconds (a live follower's stop
                # condition; the publisher side decides when a run ends)
                n = float(ldr.stats.events_processed)
                now = time.monotonic()
                if n != last["count"]:
                    last["count"] = n
                    last["changed"] = now
                    return False
                return now - last["changed"] >= args.idle_exit

            until = idle_until

        def run_bus():
            return load_from_bus(
                args.bus,
                pattern=args.pattern,
                queue_name=args.queue,
                durable=bool(args.queue),
                group=args.group,
                member_id=args.member_id,
                partitions=args.partitions,
                loader=loader,
                until=until,
                dead_letter=True,
                workers=args.workers,
                parse_mode=args.parse_mode,
                worker_mode=args.worker_mode,
                chunk_size=args.chunk_size,
                metrics=registry,
            )

        stats = (
            _profiled(run_bus, args.profile) if args.profile else run_bus()
        ).stats
        if args.verbose:
            _print_stats(stats)
        _finish_obs(registry, server, args)
        return 0

    if args.lint:
        # BP permits engine-specific extras, so unknown attrs stay quiet;
        # hard schema errors still quarantine.
        config = LintConfig(allow_unknown_attrs=True)

        def run_linted():
            return load_file_linted(
                source, loader, quarantine=args.quarantine, config=config
            )

        loader, findings, quarantined = (
            _profiled(run_linted, args.profile) if args.profile else run_linted()
        )
        stats = loader.stats
        if findings:
            print(render_text(findings), file=sys.stderr)
        if quarantined:
            where = f" -> {args.quarantine}" if args.quarantine else ""
            print(
                f"quarantined {quarantined} event(s){where}", file=sys.stderr
            )
        if args.verbose:
            _print_stats(stats)
        _finish_obs(registry, server, args)
        return 1 if quarantined else 0

    def run_load():
        return load_file(
            source,
            loader,
            resume=args.resume,
            workers=args.workers,
            parse_mode=args.parse_mode,
            worker_mode=args.worker_mode,
            chunk_size=args.chunk_size,
        )

    stats = (
        _profiled(run_load, args.profile) if args.profile else run_load()
    ).stats

    if args.verbose:
        _print_stats(stats)
        if plan is not None:
            print(f"faults injected  : {plan.stats.total_injected}", file=sys.stderr)
    _finish_obs(registry, server, args)
    return 0


def _finish_obs(registry, server, args) -> None:
    """Publish the final self-monitoring state, then linger and shut down.

    The ``stampede_obs_load_complete`` gauge flips to 1 only here, so a
    scraper polling ``/metrics`` can tell "mid-load" from "final"
    without racing the load itself.
    """
    if registry is None:
        return
    registry.gauge(
        "stampede_obs_load_complete",
        "1 once the load finished and the final metric state is visible.",
    ).set(1)
    if args.self_log:
        from repro.obs.export import BPSelfLogger

        count = BPSelfLogger(registry).write(args.self_log)
        print(f"self-log: {count} events -> {args.self_log}", file=sys.stderr)
    if server is not None:
        if args.metrics_linger > 0:
            server.wait(args.metrics_linger)
        server.stop()


def _profiled(fn, path: str):
    """Run ``fn`` under cProfile; dump pstats to ``path`` and print the
    top 20 cumulative entries to stderr."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(20)
        print(f"profile written to {path}", file=sys.stderr)
    return result


def _print_shard_stats(snap: Dict[str, object]) -> None:
    print(f"shards           : {snap['shards']}")
    print(f"events processed : {snap['events_processed']}")
    print(f"rows inserted    : {snap['rows_inserted']}")
    print(f"flushes          : {snap['flushes']}")
    print(f"retries          : {snap['retries']}")
    for shard in snap["per_shard"]:  # type: ignore[attr-defined]
        print(
            f"  shard {shard['shard']} : routed={shard['routed']} "
            f"rows={shard['rows_inserted']} flushes={shard['flushes']}"
        )
    wall = float(snap["wall_seconds"])  # type: ignore[arg-type]
    events = int(snap["events_processed"])  # type: ignore[arg-type]
    print(f"wall seconds     : {wall:.3f}")
    print(f"events/second    : {(events / wall if wall else 0.0):,.0f}")


def _print_stats(stats: LoaderStats) -> None:
    # One atomic snapshot: with a parallel pipeline still settling, field
    # reads spread over several statements could mix two batches' state.
    snap = stats.snapshot()
    pct = snap["latency_percentiles"]
    print(f"events processed : {snap['events_processed']}")
    print(f"rows inserted    : {snap['rows_inserted']}")
    print(f"rows updated     : {snap['rows_updated']}")
    print(f"flushes          : {snap['flushes']}")
    print(
        "flush latency    : "
        f"p50={pct['p50'] * 1000:.2f}ms "
        f"p95={pct['p95'] * 1000:.2f}ms "
        f"p99={pct['p99'] * 1000:.2f}ms"
    )
    print(f"retries          : {snap['retries']}")
    print(
        "checkpoints      : "
        f"{snap['checkpoints_written']} (resumes: {snap['resumes']})"
    )
    if snap["queue_depth_samples"]:
        print(
            "queue depth      : "
            f"max={snap['queue_depth_max']} avg={snap['queue_depth_avg']:.1f}"
        )
    if snap["redelivered_events"] or snap["duplicates_skipped"] or snap["reconnects"]:
        print(
            "redelivery       : "
            f"redelivered={snap['redelivered_events']} "
            f"duplicates_skipped={snap['duplicates_skipped']} "
            f"reconnects={snap['reconnects']}"
        )
    if snap["dlq_events"]:
        print(f"dead-lettered    : {snap['dlq_events']}")
    if snap["archive_outages"]:
        print(
            "archive outages  : "
            f"{snap['archive_outages']} "
            f"(spilled={snap['spilled_events']} drains={snap['spill_drains']})"
        )
    print(f"wall seconds     : {snap['wall_seconds']:.3f}")
    print(f"events/second    : {snap['events_per_second']:,.0f}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
