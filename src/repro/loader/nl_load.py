"""nl_load: the loading front-end (paper §IV-E).

Reads normalized BP events from a file or an AMQP queue and hands them to
the ``stampede_loader`` module, mirroring the paper's invocation::

    nl_load --amqp-host=... -A queue=stampede stampede_loader \
        connString=sqlite:///test.db

Usable three ways:

* :func:`load_file` / :func:`load_events` — Python API over files and
  iterables;
* :func:`load_from_bus` — attach to an in-process broker queue and drain
  it (optionally following a live run until a predicate says stop);
* :func:`main` — command-line entry point for file inputs.
"""
from __future__ import annotations

import argparse
import sys
from typing import Callable, Iterable, List, Optional, TextIO, Tuple, Union

from repro.archive.store import StampedeArchive
from repro.bus.broker import Broker
from repro.bus.client import EventConsumer
from repro.lint.config import LintConfig
from repro.lint.report import render_text
from repro.lint.rules import Finding, Severity
from repro.lint.stream import StreamLinter
from repro.loader.stampede_loader import LoaderStats, StampedeLoader
from repro.netlogger.events import NLEvent
from repro.netlogger.stream import BPReader

__all__ = [
    "load_events",
    "load_file",
    "load_file_linted",
    "load_from_bus",
    "make_loader",
    "main",
]


def make_loader(
    conn_string: str = "sqlite:///:memory:",
    archive: Optional[StampedeArchive] = None,
    batch_size: int = 500,
    strict: bool = True,
    validate: bool = False,
) -> StampedeLoader:
    """Construct a StampedeLoader over a new or existing archive."""
    if archive is None:
        archive = StampedeArchive.open(conn_string)
    return StampedeLoader(
        archive, batch_size=batch_size, strict=strict, validate=validate
    )


def load_events(
    events: Iterable[NLEvent],
    loader: Optional[StampedeLoader] = None,
    **loader_kwargs,
) -> StampedeLoader:
    """Load an event iterable; returns the loader (archive + stats inside)."""
    if loader is None:
        loader = make_loader(**loader_kwargs)
    loader.process_all(events)
    return loader


def load_file(
    path,
    loader: Optional[StampedeLoader] = None,
    on_error: str = "raise",
    **loader_kwargs,
) -> StampedeLoader:
    """Load a BP log file."""
    return load_events(BPReader(path, on_error=on_error), loader, **loader_kwargs)


def load_file_linted(
    source: Union[str, TextIO],
    loader: Optional[StampedeLoader] = None,
    quarantine: Optional[Union[str, TextIO]] = None,
    config: Optional[LintConfig] = None,
    **loader_kwargs,
) -> Tuple[StampedeLoader, List[Finding], int]:
    """Load a BP log in lint-strict mode, quarantining failing events.

    Every line runs through the :class:`StreamLinter` analyzers first.
    Lines that trigger an error-severity finding (malformed BP, schema
    violations, illegal lifecycle transitions, orphan references, duplicate
    delivery, ...) are written verbatim to ``quarantine`` — a path or file
    object — instead of being silently archived; everything else is loaded
    normally.  Returns ``(loader, findings, quarantined_count)``.
    """
    if loader is None:
        loader = make_loader(**loader_kwargs)
    path = source if isinstance(source, str) else "<stdin>"
    linter = StreamLinter(config=config, path=path)
    findings: List[Finding] = []
    quarantined = 0

    close_in = close_q = False
    if isinstance(source, str):
        fh: TextIO = open(source, "r", encoding="utf-8")
        close_in = True
    else:
        fh = source
    qfh: Optional[TextIO] = None
    if isinstance(quarantine, str):
        qfh = open(quarantine, "w", encoding="utf-8")
        close_q = True
    elif quarantine is not None:
        qfh = quarantine
    try:
        for lineno, line in enumerate(fh, start=1):
            event, line_findings = linter.feed_line(line, lineno)
            findings.extend(line_findings)
            if event is None and not line_findings:
                continue  # blank line or comment
            if event is None or any(
                f.severity >= Severity.ERROR for f in line_findings
            ):
                quarantined += 1
                if qfh is not None:
                    qfh.write(line.rstrip("\n") + "\n")
                continue
            loader.process(event)
        loader.flush()
        findings.extend(linter.finish())
    finally:
        if close_in:
            fh.close()
        if qfh is not None:
            qfh.flush()
            if close_q:
                qfh.close()
    return loader, findings, quarantined


def load_from_bus(
    broker: Broker,
    pattern: str = "stampede.#",
    queue_name: Optional[str] = None,
    loader: Optional[StampedeLoader] = None,
    until: Optional[Callable[[StampedeLoader], bool]] = None,
    durable: bool = False,
    **loader_kwargs,
) -> StampedeLoader:
    """Consume events from a broker queue into the archive.

    Drains whatever is queued; if ``until`` is given, keeps polling until
    ``until(loader)`` returns True (e.g. "the workflow-terminated state has
    been recorded"), enabling real-time loading concurrent with a run.
    """
    if loader is None:
        loader = make_loader(**loader_kwargs)
    consumer = EventConsumer(
        broker, pattern=pattern, queue_name=queue_name, durable=durable
    )
    try:
        while True:
            event = consumer.get(timeout=0.0)
            if event is not None:
                loader.process(event)
                continue
            loader.flush()
            if until is None or until(loader):
                break
    finally:
        consumer.cancel()
    loader.flush()
    return loader


def main(argv: Optional[list] = None) -> int:
    """Command-line nl_load for file inputs.

    Example::

        nl-load workflow.bp stampede_loader connString=sqlite:///run.db
    """
    parser = argparse.ArgumentParser(
        prog="nl-load", description="Load NetLogger BP logs into a Stampede archive."
    )
    parser.add_argument("input", help="BP log file to load ('-' for stdin)")
    parser.add_argument(
        "module",
        nargs="?",
        default="stampede_loader",
        help="loader module (only 'stampede_loader' is supported)",
    )
    parser.add_argument(
        "params",
        nargs="*",
        help="module parameters, e.g. connString=sqlite:///out.db",
    )
    parser.add_argument("-b", "--batch-size", type=int, default=500)
    parser.add_argument(
        "--tolerant",
        action="store_true",
        help="synthesize placeholders for out-of-order events instead of failing",
    )
    parser.add_argument(
        "--validate", action="store_true", help="validate events against the schema"
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="run the stampede-lint stream analyzers and quarantine events "
        "with error-severity findings instead of archiving them",
    )
    parser.add_argument(
        "--quarantine",
        metavar="PATH",
        help="with --lint: write quarantined BP lines to this file",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.module != "stampede_loader":
        parser.error(f"unknown loader module {args.module!r}")
    if args.quarantine and not args.lint:
        parser.error("--quarantine requires --lint")
    params = dict(p.split("=", 1) for p in args.params if "=" in p)
    conn_string = params.get("connString", "sqlite:///:memory:")

    # In lint mode the analyzers are the strictness layer: events that would
    # crash a strict loader are quarantined before it sees them, and the
    # loader runs tolerantly so a quarantined event's survivors (e.g. a
    # main.end whose submit.start was quarantined) cannot take it down.
    loader = make_loader(
        conn_string,
        batch_size=args.batch_size,
        strict=not (args.tolerant or args.lint),
        validate=args.validate,
    )
    source = sys.stdin if args.input == "-" else args.input

    if args.lint:
        # BP permits engine-specific extras, so unknown attrs stay quiet;
        # hard schema errors still quarantine.
        config = LintConfig(allow_unknown_attrs=True)
        loader, findings, quarantined = load_file_linted(
            source, loader, quarantine=args.quarantine, config=config
        )
        stats = loader.stats
        if findings:
            print(render_text(findings), file=sys.stderr)
        if quarantined:
            where = f" -> {args.quarantine}" if args.quarantine else ""
            print(
                f"quarantined {quarantined} event(s){where}", file=sys.stderr
            )
        if args.verbose:
            _print_stats(stats)
        return 1 if quarantined else 0

    stats = load_file(source, loader).stats

    if args.verbose:
        _print_stats(stats)
    return 0


def _print_stats(stats: LoaderStats) -> None:
    print(f"events processed : {stats.events_processed}")
    print(f"rows inserted    : {stats.rows_inserted}")
    print(f"rows updated     : {stats.rows_updated}")
    print(f"flushes          : {stats.flushes}")
    print(f"wall seconds     : {stats.wall_seconds:.3f}")
    print(f"events/second    : {stats.events_per_second:,.0f}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
