"""Durable loader checkpoints: crash mid-run, resume without duplicates.

A checkpoint row lives in the *same* database as the archive rows, in an
ancillary ``loader_checkpoint`` table (not part of the paper's Fig. 3
schema).  :meth:`CheckpointManager.save` is called by the loader inside
the flush transaction, so "batch N is committed" and "the checkpoint
points past batch N" are one atomic fact — there is no window where rows
are durable but the checkpoint is stale, which is what makes a restarted
``nl-load`` / ``monitord`` produce zero duplicate rows.

The checkpoint records:

* ``position`` — how far into the source we have durably consumed: a
  byte offset for BP files, a delivery tag for bus queues;
* ``state`` — the loader's minimal resolver state (per-workflow id
  caches, jobstate sequence counters, deferred sub-workflow maps) as a
  JSON blob, so a fresh process can keep issuing the same surrogate
  keys the dead one would have.
"""
from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.orm import Column, Integer, Query, Real, Table, Text

__all__ = ["CHECKPOINT_TABLE", "Checkpoint", "CheckpointManager"]

CHECKPOINT_TABLE = Table(
    "loader_checkpoint",
    [
        Column("source", Text(), primary_key=True),
        Column("position", Integer(), default=0),
        Column("state", Text()),
        Column("updated", Real()),
    ],
)


@dataclass(frozen=True)
class Checkpoint:
    """One persisted loader position: source id, offset/tag, state blob."""

    source: str
    position: int
    state: Dict[str, Any]
    updated: float


class CheckpointManager:
    """Reads and writes the per-source checkpoint row of one archive."""

    def __init__(self, archive, source: str):
        self.archive = archive
        self.source = str(source)
        archive.db.create_tables([CHECKPOINT_TABLE])

    def load(self) -> Optional[Checkpoint]:
        rows = self.archive.db.select(
            Query(CHECKPOINT_TABLE).eq("source", self.source)
        )
        if not rows:
            return None
        row = rows[0]
        state = json.loads(row["state"]) if row.get("state") else {}
        return Checkpoint(
            source=row["source"],
            position=int(row.get("position") or 0),
            state=state,
            updated=float(row.get("updated") or 0.0),
        )

    def save(self, position: int, state: Dict[str, Any]) -> None:
        """Upsert the checkpoint row.

        Call this inside an open archive transaction: the position must
        only become visible together with the rows it accounts for.
        """
        values = {
            "position": int(position or 0),
            "state": json.dumps(state, separators=(",", ":")),
            "updated": time.time(),
        }
        changed = self.archive.db.update(
            CHECKPOINT_TABLE, values, {"source": self.source}
        )
        if not changed:
            self.archive.db.insert(
                CHECKPOINT_TABLE, {"source": self.source, **values}
            )
