"""Parallel parse/normalize pipeline for the ingest path.

Parsing BP lines into :class:`~repro.netlogger.events.NLEvent` objects is
the CPU-heavy half of loading (the other half — archive writes — is
batched I/O).  This module fans the parse work out over a pool of
workers while keeping the loader's contract intact:

* **Order is preserved.**  Lines are split into fixed-size chunks; each
  chunk is stamped with a monotonically increasing sequence number and
  parsed by whichever worker is free.  Completions arrive out of order,
  so they are wrapped as stamped messages and run through the
  :class:`~repro.bus.reliable.Resequencer` — the same ordering gate the
  bus consumer uses — which releases chunks in exact submission order.
  Downstream the loader sees the byte-for-byte sequential stream.
* **Errors stay per-line.**  A worker never lets one bad line poison its
  chunk: failures are marked by index and the coordinating thread
  re-parses just those lines inline, so callers get the genuine
  exception (with its exact error column) under the same ``on_error``
  policies the sequential readers offer.
* **Workers are threads by default.**  The fast-path tokenizers spend
  most of their time in C (regex, ``str.split``), which releases enough
  of the GIL contention to make threads the cheap, always-safe choice;
  ``mode="process"`` sidesteps the GIL entirely for strict parsing of
  huge backlogs on multi-core machines, at the cost of pickling events
  back.  ``workers=0`` (the default everywhere) parses inline and is
  behavior-identical to the pre-pipeline code path.

The pool parallelizes *parsing only*; archive writes stay on the single
coordinating thread, so batching, checkpoint/resume, ack-after-commit
and the chaos-suite invariants hold for any worker count.
"""
from __future__ import annotations

import queue
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple, Union

from repro.bus.queues import Message
from repro.bus.reliable import HEADER_PUBLISHER, HEADER_SEQ, Resequencer
from repro.netlogger.bp import BPParseError
from repro.netlogger.events import NLEvent

__all__ = [
    "ParsePool",
    "ParseOutcome",
    "parse_chunk",
    "process_pool_available",
]

#: what a pool hands back per input line: the parsed event, or the
#: exception that line raises (re-raised/handled per the caller's policy)
ParseOutcome = Union[NLEvent, Exception]

#: exception types a malformed line can legitimately raise out of
#: ``NLEvent.from_bp`` — the same set the sequential readers catch
PARSE_ERRORS = (BPParseError, ValueError, KeyError, TypeError)


def parse_chunk(
    lines: List[str], fast: bool = True
) -> Tuple[List[Optional[NLEvent]], List[int]]:
    """Parse one chunk of BP lines; the unit of work a worker executes.

    Returns ``(events, error_indices)`` where ``events[i]`` is None for
    each index listed in ``error_indices``.  Exceptions are *marked*,
    not raised or shipped: the coordinator re-parses failing lines
    inline so the caller sees the real exception object without this
    function needing to pickle tracebacks across a process boundary.
    """
    events: List[Optional[NLEvent]] = []
    errors: List[int] = []
    append = events.append
    for index, line in enumerate(lines):
        try:
            append(NLEvent.from_bp(line, fast=fast))
        except Exception:
            append(None)
            errors.append(index)
    return events, errors


def process_pool_available() -> bool:
    """True if this platform can actually spawn a process pool worker."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(int, 1).result(timeout=30) == 1
    except Exception:
        return False


class ParsePool:
    """A pool of BP parse workers with ordered, per-line-safe results.

    ``workers=0`` is the inline mode: no threads, no queues, identical
    to calling :meth:`NLEvent.from_bp` in a loop.  ``workers >= 1``
    spins up that many threads (``mode="thread"``) or processes
    (``mode="process"``); in both cases results come back in input
    order via the resequencing gate, with at most
    ``max_inflight`` chunks buffered (bounded memory on huge files).
    """

    def __init__(
        self,
        workers: int = 0,
        mode: str = "thread",
        parse_mode: str = "fast",
        chunk_size: int = 256,
        max_inflight: Optional[int] = None,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        if parse_mode not in ("fast", "strict"):
            raise ValueError(
                f"parse_mode must be 'fast' or 'strict', got {parse_mode!r}"
            )
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.mode = mode
        self.parse_mode = parse_mode
        self.chunk_size = chunk_size
        self.max_inflight = (
            max_inflight if max_inflight is not None else max(2, workers * 4)
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self._fast = parse_mode == "fast"
        self._executor = None
        self.chunks_parsed = 0
        self.lines_parsed = 0

    # -- lifecycle ----------------------------------------------------------
    def _ensure_executor(self):
        if self._executor is None:
            if self.mode == "process":
                from concurrent.futures import ProcessPoolExecutor

                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            else:
                from concurrent.futures import ThreadPoolExecutor

                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="bp-parse"
                )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParsePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- core ---------------------------------------------------------------
    def results(
        self, items: Iterable[Tuple[str, Any]]
    ) -> Iterator[Tuple[ParseOutcome, str, Any]]:
        """Parse ``(line, meta)`` pairs; yield ``(outcome, line, meta)``.

        Output order always equals input order; ``meta`` passes through
        untouched (byte offsets, line numbers, bus messages — whatever
        the caller needs back alongside each event).  ``outcome`` is the
        parsed event or the exception instance that line raises.
        """
        if self.workers == 0:
            yield from self._results_inline(items)
            return
        yield from self._results_pooled(items)

    def _results_inline(self, items):
        fast = self._fast
        for line, meta in items:
            try:
                outcome: ParseOutcome = NLEvent.from_bp(line, fast=fast)
            except PARSE_ERRORS as exc:
                outcome = exc
            self.lines_parsed += 1
            yield outcome, line, meta

    def _results_pooled(self, items):
        executor = self._ensure_executor()
        fast = self._fast
        # completions land here (from worker callbacks, any order) ...
        done: "queue.Queue" = queue.Queue()
        # ... and this gate re-establishes submission order.  max_held
        # exceeds the in-flight window so the gate can never be forced
        # to release around a gap — every sequence eventually arrives.
        reseq = Resequencer(max_held=self.max_inflight * 2 + 16)
        pending: dict = {}
        inflight = 0
        seq = 0

        def submit(chunk_lines, chunk_metas):
            nonlocal seq, inflight
            seq += 1
            pending[seq] = (chunk_lines, chunk_metas)
            future = executor.submit(parse_chunk, chunk_lines, fast)
            future.add_done_callback(
                lambda f, s=seq: done.put(
                    Message(
                        routing_key="parse.chunk",
                        body=f,
                        headers={HEADER_PUBLISHER: "parse-pool", HEADER_SEQ: s},
                    )
                )
            )
            inflight += 1

        def drain_one():
            nonlocal inflight
            released, _duplicates = reseq.offer(done.get())
            results = []
            for msg in released:
                inflight -= 1
                chunk_seq = msg.headers[HEADER_SEQ]
                chunk_lines, chunk_metas = pending.pop(chunk_seq)
                events, error_indices = msg.body.result()
                self.chunks_parsed += 1
                self.lines_parsed += len(chunk_lines)
                if error_indices:
                    for index in error_indices:
                        events[index] = self._reparse(chunk_lines[index])
                results.extend(zip(events, chunk_lines, chunk_metas))
            return results

        chunk_lines: List[str] = []
        chunk_metas: List[Any] = []
        chunk_size = self.chunk_size
        for line, meta in items:
            chunk_lines.append(line)
            chunk_metas.append(meta)
            if len(chunk_lines) >= chunk_size:
                while inflight >= self.max_inflight:
                    yield from drain_one()
                submit(chunk_lines, chunk_metas)
                chunk_lines, chunk_metas = [], []
        if chunk_lines:
            submit(chunk_lines, chunk_metas)
        while inflight:
            yield from drain_one()

    def _reparse(self, line: str) -> ParseOutcome:
        """Re-run one marked-bad line inline to obtain the real exception."""
        try:
            # a line that parses on retry would mean nondeterministic
            # input handling; surface it as an event rather than guess
            return NLEvent.from_bp(line, fast=self._fast)
        except PARSE_ERRORS as exc:
            return exc

    # -- conveniences -------------------------------------------------------
    def map_parse(self, items: Iterable[Any]) -> List[ParseOutcome]:
        """Ordered bulk parse of a mixed burst (bus path).

        Each item is either a BP line (parsed through the pool) or an
        already-materialized :class:`NLEvent` (the in-process bus ships
        event objects; they pass through untouched).  The result list
        aligns index-for-index with the input.
        """
        items = list(items)
        outcomes: List[Optional[ParseOutcome]] = [None] * len(items)
        to_parse: List[Tuple[str, int]] = []
        for index, item in enumerate(items):
            if isinstance(item, NLEvent):
                outcomes[index] = item
            else:
                to_parse.append((str(item), index))
        for outcome, _line, index in self.results(to_parse):
            outcomes[index] = outcome
        return outcomes  # type: ignore[return-value]

    def events(
        self,
        lines: Iterable[Tuple[str, Any]],
        on_error: Union[str, Callable[[Any, str, Exception], None]] = "raise",
    ) -> Iterator[Tuple[NLEvent, Any]]:
        """Parse to ``(event, meta)`` pairs, applying an error policy.

        ``on_error`` mirrors :class:`~repro.netlogger.stream.BPReader`:
        ``'raise'`` propagates, ``'skip'`` drops the line, a callable is
        invoked with ``(meta, line, exception)`` and the line dropped.
        """
        for outcome, line, meta in self.results(lines):
            if isinstance(outcome, Exception):
                if on_error == "raise":
                    raise outcome
                if callable(on_error):
                    on_error(meta, line, outcome)
                continue
            yield outcome, meta
