"""Loader dead-letter queue: poison events are quarantined, not fatal.

A *poison* event — unparseable BP, a schema violation, an ordering
violation in strict mode — used to abort the whole batch.  With a
:class:`DeadLetterQueue` attached, the bus consumption loop instead:

* records the offending payload, the error, and its provenance in an
  ancillary ``loader_dlq`` table of the archive (immediately, in its own
  transaction — a poison event must not ride the batch it poisoned);
* republishes it onto the broker's dead-letter queue
  (``stampede.dlq``) when a broker is attached, so live tooling can
  watch the poison stream;
* acks the message and moves on — the batch commits without it.

Quarantined events stay recoverable: ``entries()`` returns them with
their errors for post-mortem replay, mirroring how the broker handles
unroutable publishes.
"""
from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.bus.broker import DEAD_LETTER_QUEUE, Broker
from repro.orm import Column, Integer, Query, Real, Table, Text

__all__ = ["DLQ_TABLE", "DeadLetter", "DeadLetterQueue"]

DLQ_TABLE = Table(
    "loader_dlq",
    [
        Column("dlq_id", Integer(), primary_key=True),
        Column("source", Text()),
        Column("routing_key", Text()),
        Column("body", Text()),
        Column("error", Text()),
        Column("ts", Real()),
    ],
)


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined event."""

    dlq_id: int
    source: str
    routing_key: str
    body: str
    error: str
    ts: float


class DeadLetterQueue:
    """Quarantine store for events the loader cannot archive."""

    def __init__(
        self,
        archive,
        source: str = "",
        broker: Optional[Broker] = None,
        queue_name: str = DEAD_LETTER_QUEUE,
    ):
        self.archive = archive
        self.source = str(source)
        self.broker = broker
        self.queue_name = queue_name
        archive.db.create_tables([DLQ_TABLE])
        self._next_id = int(archive.db.max_value(DLQ_TABLE, "dlq_id") or 0) + 1
        self.quarantined = 0

    def quarantine(self, body: object, error: str, routing_key: str = "") -> int:
        """Record one poison event; returns its dlq_id."""
        dlq_id = self._next_id
        self._next_id += 1
        self.archive.db.insert(
            DLQ_TABLE,
            {
                "dlq_id": dlq_id,
                "source": self.source,
                "routing_key": str(routing_key),
                "body": str(body),
                "error": str(error),
                "ts": time.time(),
            },
        )
        self.quarantined += 1
        if self.broker is not None:
            # straight to the DLQ queue — poison must not re-route through
            # bindings back into the consumer that rejected it
            self.broker.declare_queue(self.queue_name, durable=True).put(
                routing_key or "loader.poison",
                str(body),
                headers={"x-death": "poison", "x-error": str(error)},
            )
        return dlq_id

    def count(self) -> int:
        return self.archive.db.count(DLQ_TABLE)

    def entries(self) -> List[DeadLetter]:
        rows = self.archive.db.select(Query(DLQ_TABLE).order_by("dlq_id"))
        return [
            DeadLetter(
                dlq_id=int(r["dlq_id"]),
                source=str(r.get("source") or ""),
                routing_key=str(r.get("routing_key") or ""),
                body=str(r.get("body") or ""),
                error=str(r.get("error") or ""),
                ts=float(r.get("ts") or 0.0),
            )
            for r in rows
        ]
