"""stampede_loader: normalize Stampede events into the relational archive.

This is the module ``nl_load`` dispatches to (paper §IV-E).  It consumes
:class:`~repro.netlogger.events.NLEvent` objects, resolves identifiers
against per-run caches, batches inserts ("implemented to improve the
performance of Pegasus workflows logging by batching similar inserts
together", §V-D), and writes rows of the Fig. 3 schema.

Event-ordering contract (the documented limitation from §V-D): all static
events — ``stampede.task.info``, ``stampede.job.info``, the edges and the
task→job mapping — must be seen for a workflow before execution events
referencing them.  In ``strict`` mode a violation raises
:class:`LoaderError`; in tolerant mode a placeholder row is synthesized.

Write path: every handler only *buffers* work — row inserts and the
coalesced column updates (task→job maps, job-instance finalization, host
attachment) — as an ordered journal.  :meth:`StampedeLoader.flush`
replays the journal inside one backend transaction, so a batch is one
commit (one fsync on the file backend) instead of a commit per
statement, and a crash mid-batch leaves no partial rows behind.
Transient backend errors (e.g. a locked sqlite file) are retried with
exponential backoff before the batch is abandoned.
"""
from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.archive.store import StampedeArchive
from repro.loader.checkpoint import CheckpointManager
from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobEdgeRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    ObsEventRow,
    TaskEdgeRow,
    TaskRow,
    WorkflowRow,
    WorkflowStateRow,
)
from repro.model.states import JobState, WorkflowState
from repro.netlogger.events import NLEvent
from repro.schema.stampede import STAMPEDE_SCHEMA, Events, SUCCESS
from repro.util.retry import CircuitBreaker, RetryPolicy
from repro.util.timeutil import parse_ts
from repro.schema.validator import EventValidator

__all__ = ["LoaderError", "LoaderStats", "StampedeLoader", "OBS_EVENT_PREFIX"]


class LoaderError(ValueError):
    """An event could not be normalized into the archive."""


#: Event-name prefix of the monitor's own telemetry (``repro.obs``); the
#: loader archives these generically so the monitoring pipeline can load
#: its self-describing events without a per-name schema handler.
OBS_EVENT_PREFIX = "stampede.obs."

#: Cap on retained per-flush latency samples (long-running monitord).
_MAX_LATENCY_SAMPLES = 8192


@dataclass
class LoaderStats:
    events_processed: int = 0
    events_by_type: Dict[str, int] = field(default_factory=dict)
    rows_inserted: int = 0
    rows_updated: int = 0
    flushes: int = 0
    validation_failures: int = 0
    wall_seconds: float = 0.0
    retries: int = 0
    checkpoints_written: int = 0
    resumes: int = 0
    flush_seconds: List[float] = field(default_factory=list)
    queue_depth_max: int = 0
    queue_depth_sum: int = 0
    queue_depth_samples: int = 0
    # resilience counters (bus consumption path)
    redelivered_events: int = 0  # deliveries flagged redelivered (at-least-once)
    duplicates_skipped: int = 0  # resequencer-deduped repeat deliveries
    reconnects: int = 0  # consumer connection recoveries
    dlq_events: int = 0  # poison events quarantined instead of fatal
    spilled_events: int = 0  # events parked on disk while the archive was down
    spill_drains: int = 0  # successful spill-buffer drains back into the archive
    archive_outages: int = 0  # times the whole retry ladder was exhausted
    # guards the latency window and the multi-field snapshot reads; the
    # parallel pipeline mutates these fields from the loader thread while
    # verbose reporting / metrics collectors read them from others
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def events_per_second(self) -> float:
        # wall_seconds may be zero/unset mid-stream; report 0 rather than
        # dividing by zero or inventing an infinite rate.  Both fields are
        # read under the lock so the ratio never mixes two batches.
        with self.lock:
            if not self.wall_seconds:
                return 0.0
            return self.events_processed / self.wall_seconds

    @property
    def queue_depth_avg(self) -> float:
        with self.lock:
            if not self.queue_depth_samples:
                return 0.0
            return self.queue_depth_sum / self.queue_depth_samples

    def record_flush_latency(self, seconds: float) -> None:
        with self.lock:
            self.flush_seconds.append(seconds)
            if len(self.flush_seconds) > _MAX_LATENCY_SAMPLES:
                # keep the newest half; percentiles stay representative
                del self.flush_seconds[: len(self.flush_seconds) // 2]

    def record_queue_depth(self, depth: int) -> None:
        with self.lock:
            self.queue_depth_samples += 1
            self.queue_depth_sum += depth
            if depth > self.queue_depth_max:
                self.queue_depth_max = depth

    @staticmethod
    def _percentiles(samples: List[float]) -> Dict[str, float]:
        if not samples:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        data = sorted(samples)
        n = len(data)

        def pct(q: float) -> float:
            return data[min(n - 1, max(0, int(q * n + 0.5) - 1))]

        return {"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99)}

    def latency_percentiles(self) -> Dict[str, float]:
        """Per-flush commit latency percentiles, in seconds.

        Computed over a locked copy of the sample window, so a reader
        never sees the list mid-append (or mid-halving) under the
        parallel pipeline.
        """
        with self.lock:
            samples = list(self.flush_seconds)
        return self._percentiles(samples)

    def snapshot(self) -> Dict[str, Any]:
        """One atomic, JSON-friendly view of every counter + percentiles.

        Readers (``nl-load -v``, metrics collectors, dashboards) must use
        this instead of reading fields piecemeal: a half-updated
        percentile window or a rows/flushes pair from two different
        batches would otherwise be observable mid-flush.
        """
        with self.lock:
            samples = list(self.flush_seconds)
            snap: Dict[str, Any] = {
                "events_processed": self.events_processed,
                "events_by_type": dict(self.events_by_type),
                "rows_inserted": self.rows_inserted,
                "rows_updated": self.rows_updated,
                "flushes": self.flushes,
                "validation_failures": self.validation_failures,
                "wall_seconds": self.wall_seconds,
                "retries": self.retries,
                "checkpoints_written": self.checkpoints_written,
                "resumes": self.resumes,
                "queue_depth_max": self.queue_depth_max,
                "queue_depth_sum": self.queue_depth_sum,
                "queue_depth_samples": self.queue_depth_samples,
                "redelivered_events": self.redelivered_events,
                "duplicates_skipped": self.duplicates_skipped,
                "reconnects": self.reconnects,
                "dlq_events": self.dlq_events,
                "spilled_events": self.spilled_events,
                "spill_drains": self.spill_drains,
                "archive_outages": self.archive_outages,
            }
        snap["queue_depth_avg"] = (
            snap["queue_depth_sum"] / snap["queue_depth_samples"]
            if snap["queue_depth_samples"]
            else 0.0
        )
        snap["events_per_second"] = (
            snap["events_processed"] / snap["wall_seconds"]
            if snap["wall_seconds"]
            else 0.0
        )
        snap["latency_percentiles"] = self._percentiles(samples)
        return snap


class _WorkflowCache:
    """Identifier caches for one workflow run (one xwf.id)."""

    __slots__ = (
        "wf_id",
        "task_ids",
        "job_ids",
        "job_instances",
        "host_ids",
        "jobstate_seq",
        "static_done",
    )

    def __init__(self, wf_id: int):
        self.wf_id = wf_id
        self.task_ids: Dict[str, int] = {}  # abs_task_id -> task_id
        self.job_ids: Dict[str, int] = {}  # exec_job_id -> job_id
        # (exec_job_id, submit_seq) -> job_instance_id
        self.job_instances: Dict[Tuple[str, int], int] = {}
        self.host_ids: Dict[Tuple[str, str], int] = {}  # (site, hostname) -> host_id
        self.jobstate_seq: Dict[int, int] = {}  # job_instance_id -> next seq
        self.static_done = False

    def to_state(self) -> Dict[str, Any]:
        """JSON-serializable snapshot (tuple keys flattened to lists)."""
        return {
            "wf_id": self.wf_id,
            "task_ids": self.task_ids,
            "job_ids": self.job_ids,
            "job_instances": [
                [job, seq, ji] for (job, seq), ji in self.job_instances.items()
            ],
            "host_ids": [
                [site, host, hid] for (site, host), hid in self.host_ids.items()
            ],
            "jobstate_seq": {str(k): v for k, v in self.jobstate_seq.items()},
            "static_done": self.static_done,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "_WorkflowCache":
        cache = cls(int(state["wf_id"]))
        cache.task_ids = {str(k): int(v) for k, v in state["task_ids"].items()}
        cache.job_ids = {str(k): int(v) for k, v in state["job_ids"].items()}
        cache.job_instances = {
            (str(job), int(seq)): int(ji) for job, seq, ji in state["job_instances"]
        }
        cache.host_ids = {
            (str(site), str(host)): int(hid) for site, host, hid in state["host_ids"]
        }
        cache.jobstate_seq = {
            int(k): int(v) for k, v in state["jobstate_seq"].items()
        }
        cache.static_done = bool(state["static_done"])
        return cache


class StampedeLoader:
    """The event-to-archive normalizer, with batched inserts."""

    def __init__(
        self,
        archive: StampedeArchive,
        batch_size: int = 500,
        strict: bool = True,
        validate: bool = False,
        checkpoint: Optional[CheckpointManager] = None,
        max_retries: int = 4,
        retry_delay: float = 0.05,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        metrics: Optional[Any] = None,
        rollup: bool = True,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.archive = archive
        self.batch_size = batch_size
        self.strict = strict
        self.checkpoint = checkpoint
        self.max_retries = max_retries
        self.retry_delay = retry_delay
        # max_retries/retry_delay remain as the simple knobs; a full
        # RetryPolicy overrides them (uncapped 'none' jitter reproduces
        # the historical base * 2**n ladder exactly)
        self.retry_policy = retry_policy or RetryPolicy(
            max_retries=max_retries,
            base_delay=retry_delay,
            max_delay=float("inf"),
            jitter="none",
        )
        #: optional circuit breaker shared with other archive writers
        self.breaker = breaker
        self.stats = LoaderStats()
        #: wall-clock time of the last checkpoint commit (for lag gauges)
        self.last_checkpoint_time: Optional[float] = None
        # flush-latency histogram when a MetricsRegistry is attached
        # (repro.obs); everything counter-shaped is exported by the
        # scrape-time collector in repro.obs.instrument instead, so the
        # per-event path carries no instrumentation cost.
        self.metrics = metrics
        self._flush_hist = (
            metrics.histogram(
                "stampede_loader_flush_seconds",
                "Batch flush commit latency (journal replay + commit).",
            )
            if metrics is not None
            else None
        )
        #: source position (file byte offset / bus delivery tag) of the
        #: last event handed to :meth:`process`; persisted on flush.
        self.position: int = 0
        #: called after every successful flush commit (bus path acks here)
        self.on_flush: Optional[Callable[["StampedeLoader"], None]] = None
        #: optional provider of per-publisher "next expected sequence"
        #: positions, persisted with each checkpoint (the bus path sets
        #: it so resequencer dedupe state survives a kill/resume — an
        #: exactly-once guarantee needs its dedupe floor to be as
        #: durable as the rows it protects)
        self.reseq_state: Optional[Callable[[], Dict[str, int]]] = None
        #: per-publisher positions restored by :meth:`resume`
        self.resumed_reseq: Dict[str, int] = {}
        # incremental rollup maintenance (repro.core.rollup): observes the
        # journal as it is buffered and applies its deltas inside the same
        # flush transaction, so rollup rows share the batch's exactly-once
        # boundary.  Off (None) only for benchmarking the bare write path.
        if rollup:
            from repro.core.rollup import RollupMaintainer

            self.rollup: Optional[RollupMaintainer] = RollupMaintainer(archive)
        else:
            self.rollup = None
        self._validator = (
            EventValidator(STAMPEDE_SCHEMA, allow_unknown_attrs=True)
            if validate
            else None
        )
        self._workflows: Dict[str, _WorkflowCache] = {}  # xwf.id -> cache
        # ordered journal of pending ops: ("insert", entity) or
        # ("update", entity_type, values, where) — replayed in order so an
        # update always lands after the insert it targets.
        self._pending: List[Tuple[Any, ...]] = []
        # subwf maps that arrived before their job_instance existed
        self._deferred_subwf: List[Tuple[str, str, int, int]] = []
        self._handlers = {
            Events.WF_PLAN: self._on_wf_plan,
            Events.STATIC_START: self._on_static_start,
            Events.STATIC_END: self._on_static_end,
            Events.XWF_START: self._on_xwf_start,
            Events.XWF_END: self._on_xwf_end,
            Events.TASK_INFO: self._on_task_info,
            Events.TASK_EDGE: self._on_task_edge,
            Events.JOB_INFO: self._on_job_info,
            Events.JOB_EDGE: self._on_job_edge,
            Events.MAP_TASK_JOB: self._on_map_task_job,
            Events.MAP_SUBWF_JOB: self._on_map_subwf_job,
            Events.JOB_INST_PRE_START: self._jobstate(JobState.PRE_SCRIPT_STARTED),
            Events.JOB_INST_PRE_TERM: self._jobstate(JobState.PRE_SCRIPT_TERMINATED),
            Events.JOB_INST_PRE_END: self._on_pre_end,
            Events.JOB_INST_SUBMIT_START: self._on_submit_start,
            Events.JOB_INST_SUBMIT_END: self._on_submit_end,
            Events.JOB_INST_HELD_START: self._jobstate(JobState.JOB_HELD),
            Events.JOB_INST_HELD_END: self._jobstate(JobState.JOB_RELEASED),
            Events.JOB_INST_MAIN_START: self._jobstate(JobState.EXECUTE),
            Events.JOB_INST_MAIN_TERM: self._jobstate(JobState.JOB_TERMINATED),
            Events.JOB_INST_MAIN_END: self._on_main_end,
            Events.JOB_INST_POST_START: self._jobstate(JobState.POST_SCRIPT_STARTED),
            Events.JOB_INST_POST_TERM: self._jobstate(JobState.POST_SCRIPT_TERMINATED),
            Events.JOB_INST_POST_END: self._on_post_end,
            Events.JOB_INST_HOST_INFO: self._on_host_info,
            Events.JOB_INST_IMAGE_INFO: self._on_noop,
            Events.JOB_INST_ABORT_INFO: self._jobstate(JobState.JOB_ABORTED),
            Events.INV_START: self._on_noop,
            Events.INV_END: self._on_inv_end,
        }

    # ------------------------------------------------------------------ api --
    def process(self, event: NLEvent) -> None:
        """Normalize one event into (batched) archive rows."""
        if self._validator is not None:
            violations = self._validator.validate_event(event)
            if violations:
                self.stats.validation_failures += len(violations)
                if self.strict:
                    raise LoaderError(f"invalid event: {violations[0]}")
        handler = self._handlers.get(event.event)
        if handler is None:
            if event.event.startswith(OBS_EVENT_PREFIX):
                handler = self._on_obs
            elif self.strict:
                raise LoaderError(f"unknown event type {event.event!r}")
            else:
                return
        handler(event)
        self.stats.events_processed += 1
        self.stats.events_by_type[event.event] = (
            self.stats.events_by_type.get(event.event, 0) + 1
        )
        if len(self._pending) >= self.batch_size:
            self.flush()

    def process_all(self, events: Iterable[NLEvent]) -> LoaderStats:
        """Load a stream of events, flush, and return timing statistics."""
        start = time.perf_counter()
        for event in events:
            self.process(event)
        self.flush()
        self.stats.wall_seconds += time.perf_counter() - start
        return self.stats

    def flush(self) -> None:
        """Replay the pending journal as one transaction (with retries).

        One flush = one backend transaction: the batched inserts, their
        coalesced updates, any now-resolvable deferred sub-workflow maps,
        and (when checkpointing) the advanced checkpoint row all commit
        atomically.  Transient backend errors roll the batch back and
        retry with exponential backoff; the journal is only discarded
        after a successful commit.
        """
        resolved, still_deferred = self._resolve_deferred_subwf()
        ops = self._pending
        if not ops and not resolved:
            if self.on_flush is not None:
                self.on_flush(self)
            return
        if self.rollup is not None:
            # deferred subwf maps resolve at flush time, not buffer time;
            # the maintainer dedupes re-resolution after a failed flush
            for values, where in resolved:
                self.rollup.observe_update(JobInstanceRow, values, where)
        start = time.perf_counter()

        def record_retry(attempt: int, exc: BaseException) -> None:
            self.stats.retries += 1

        inserted, updated = self.retry_policy.call(
            lambda: self._flush_once(ops, resolved, still_deferred),
            retry_on=self.archive.db.TRANSIENT_ERRORS,
            on_retry=record_retry,
            breaker=self.breaker,
        )
        self._pending = []
        self._deferred_subwf = still_deferred
        if self.rollup is not None:
            self.rollup.commit()  # deltas are durable; drop the bundle
        self.stats.rows_inserted += inserted
        self.stats.rows_updated += updated
        if ops:
            self.stats.flushes += 1
        if self.checkpoint is not None:
            self.stats.checkpoints_written += 1
            self.last_checkpoint_time = time.time()
        elapsed = time.perf_counter() - start
        self.stats.record_flush_latency(elapsed)
        if self._flush_hist is not None:
            self._flush_hist.observe(elapsed)
        if self.on_flush is not None:
            self.on_flush(self)

    def _flush_once(
        self,
        ops: List[Tuple[Any, ...]],
        resolved: List[Tuple[Dict[str, Any], Dict[str, Any]]],
        still_deferred: List[Tuple[str, str, int, int]],
    ) -> Tuple[int, int]:
        inserted = updated = 0
        with self.archive.transaction():
            run: List[Any] = []
            for op in ops:
                if op[0] == "insert":
                    run.append(op[1])
                else:
                    if run:
                        inserted += self.archive.insert_many(run)
                        run = []
                    _, etype, values, where = op
                    updated += self.archive.update(etype, values, where)
            if run:
                inserted += self.archive.insert_many(run)
            for values, where in resolved:
                updated += self.archive.update(JobInstanceRow, values, where)
            if self.rollup is not None:
                # rollup deltas land inside this same transaction: the
                # materialized counters are exactly as durable as the
                # rows (and the checkpoint) they summarize
                rollup_ins, rollup_upd = self.rollup.apply(self.archive)
                inserted += rollup_ins
                updated += rollup_upd
            if self.checkpoint is not None:
                # the stats counters are only bumped after the commit
                # succeeds, so fold this batch's contribution in here —
                # the persisted counters must describe the rows this very
                # transaction makes durable.
                state = self.export_state(deferred=still_deferred)
                state["stats"]["rows_inserted"] += inserted
                state["stats"]["rows_updated"] += updated
                state["stats"]["flushes"] += 1 if ops else 0
                self.checkpoint.save(self.position, state)
        return inserted, updated

    # ------------------------------------------------------ checkpointing --
    def export_state(
        self, deferred: Optional[List[Tuple[str, str, int, int]]] = None
    ) -> Dict[str, Any]:
        """Minimal resolver state a fresh process needs to continue."""
        if deferred is None:
            deferred = self._deferred_subwf
        state: Dict[str, Any] = {
            "version": 1,
            "workflows": {
                uuid: cache.to_state() for uuid, cache in self._workflows.items()
            },
            "deferred_subwf": [list(item) for item in deferred],
            "stats": {
                "events_processed": self.stats.events_processed,
                "rows_inserted": self.stats.rows_inserted,
                "rows_updated": self.stats.rows_updated,
                "flushes": self.stats.flushes,
            },
        }
        if self.reseq_state is not None:
            state["reseq_next"] = self.reseq_state()
        if self.rollup is not None:
            # tracking maps only — pending deltas commit in the same
            # transaction as this checkpoint, so a resume re-derives any
            # unflushed bundle from the re-read events
            state["rollup"] = self.rollup.to_state()
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Rebuild resolver caches from a checkpoint's state blob."""
        self._workflows = {
            str(uuid): _WorkflowCache.from_state(wf_state)
            for uuid, wf_state in state.get("workflows", {}).items()
        }
        self._deferred_subwf = [
            (str(u), str(j), int(s), int(w))
            for u, j, s, w in state.get("deferred_subwf", [])
        ]
        self.resumed_reseq = {
            str(pub): int(nxt)
            for pub, nxt in state.get("reseq_next", {}).items()
        }
        if self.rollup is not None and "rollup" in state:
            self.rollup.restore_state(state["rollup"])
        counters = state.get("stats", {})
        self.stats.events_processed = int(counters.get("events_processed", 0))
        self.stats.rows_inserted = int(counters.get("rows_inserted", 0))
        self.stats.rows_updated = int(counters.get("rows_updated", 0))
        self.stats.flushes = int(counters.get("flushes", 0))

    def resume(self) -> int:
        """Restore state from the checkpoint; returns the source position.

        Returns 0 (a no-op) when no checkpoint row exists yet.
        """
        if self.checkpoint is None:
            raise LoaderError("loader has no checkpoint manager configured")
        ckpt = self.checkpoint.load()
        if ckpt is None:
            return 0
        self.restore_state(ckpt.state)
        self.position = ckpt.position
        self.stats.resumes += 1
        return ckpt.position

    # ------------------------------------------------------------- helpers --
    def _buffer(self, entity: Any) -> None:
        self._pending.append(("insert", entity))
        if self.rollup is not None:
            self.rollup.observe_insert(entity)

    def _buffer_update(
        self, entity_type: type, values: Dict[str, Any], where: Dict[str, Any]
    ) -> None:
        self._pending.append(("update", entity_type, values, where))
        if self.rollup is not None:
            self.rollup.observe_update(entity_type, values, where)

    def _wf(self, event: NLEvent) -> _WorkflowCache:
        uuid = str(event.get("xwf.id", ""))
        cache = self._workflows.get(uuid)
        if cache is None:
            if self.strict:
                raise LoaderError(
                    f"event {event.event} references unknown workflow {uuid!r} "
                    "(no stampede.wf.plan seen)"
                )
            wf_id = self.archive.next_id("workflow")
            self._buffer(
                WorkflowRow(wf_id=wf_id, wf_uuid=uuid, timestamp=event.ts)
            )
            cache = _WorkflowCache(wf_id)
            self._workflows[uuid] = cache
        return cache

    def _job_id(self, cache: _WorkflowCache, event: NLEvent) -> int:
        exec_job_id = str(event["job.id"])
        job_id = cache.job_ids.get(exec_job_id)
        if job_id is None:
            if self.strict:
                raise LoaderError(
                    f"event {event.event} references unknown job {exec_job_id!r} "
                    "(static events must precede execution events)"
                )
            job_id = self.archive.next_id("job")
            cache.job_ids[exec_job_id] = job_id
            self._buffer(
                JobRow(job_id=job_id, wf_id=cache.wf_id, exec_job_id=exec_job_id)
            )
        return job_id

    def _job_instance_id(
        self, cache: _WorkflowCache, event: NLEvent, create: bool = False
    ) -> int:
        exec_job_id = str(event["job.id"])
        submit_seq = int(event["job_inst.id"])
        key = (exec_job_id, submit_seq)
        ji_id = cache.job_instances.get(key)
        if ji_id is None:
            if not create and self.strict:
                raise LoaderError(
                    f"event {event.event} references unknown job instance {key!r}"
                )
            job_id = self._job_id(cache, event)
            ji_id = self.archive.next_id("job_instance")
            cache.job_instances[key] = ji_id
            self._buffer(
                JobInstanceRow(
                    job_instance_id=ji_id,
                    job_id=job_id,
                    job_submit_seq=submit_seq,
                    sched_id=_opt_str(event.get("sched.id")),
                )
            )
        return ji_id

    def _add_jobstate(
        self, cache: _WorkflowCache, ji_id: int, state: JobState, ts: float
    ) -> None:
        seq = cache.jobstate_seq.get(ji_id, 0)
        cache.jobstate_seq[ji_id] = seq + 1
        self._buffer(
            JobStateRow(
                job_instance_id=ji_id,
                state=state.value,
                timestamp=ts,
                jobstate_submit_seq=seq,
            )
        )

    # ------------------------------------------------------------- handlers --
    def _on_wf_plan(self, event: NLEvent) -> None:
        uuid = str(event.get("xwf.id", ""))
        if not uuid:
            raise LoaderError("stampede.wf.plan without xwf.id")
        if uuid in self._workflows:
            # Restarted run of a known workflow: keep the original row.
            return
        wf_id = self.archive.next_id("workflow")
        parent_uuid = _opt_str(event.get("parent.xwf.id"))
        root_uuid = _opt_str(event.get("root.xwf.id"))
        parent_wf = self._workflows.get(parent_uuid) if parent_uuid else None
        if root_uuid == uuid:
            root_wf_id: Optional[int] = wf_id
        else:
            root_cache = self._workflows.get(root_uuid) if root_uuid else None
            root_wf_id = root_cache.wf_id if root_cache else None
        self._buffer(
            WorkflowRow(
                wf_id=wf_id,
                wf_uuid=uuid,
                dag_file_name=str(event.get("dag.file.name", "")),
                timestamp=event.ts,
                submit_hostname=str(event.get("submit.hostname", "")),
                submit_dir=str(event.get("submit_dir", "")),
                planner_version=str(event.get("planner.version", "")),
                user=_opt_str(event.get("user")),
                grid_dn=_opt_str(event.get("grid_dn")),
                planner_arguments=_opt_str(event.get("argv")),
                dax_label=_opt_str(event.get("dax.label")),
                dax_version=_opt_str(event.get("dax.version")),
                dax_file=_opt_str(event.get("dax.file")),
                parent_wf_id=parent_wf.wf_id if parent_wf else None,
                root_wf_id=root_wf_id,
            )
        )
        self._workflows[uuid] = _WorkflowCache(wf_id)

    def _on_static_start(self, event: NLEvent) -> None:
        self._wf(event)

    def _on_static_end(self, event: NLEvent) -> None:
        self._wf(event).static_done = True

    def _on_xwf_start(self, event: NLEvent) -> None:
        cache = self._wf(event)
        self._buffer(
            WorkflowStateRow(
                wf_id=cache.wf_id,
                state=WorkflowState.WORKFLOW_STARTED.value,
                timestamp=event.ts,
                restart_count=int(event.get("restart_count", 0)),
            )
        )

    def _on_xwf_end(self, event: NLEvent) -> None:
        cache = self._wf(event)
        self._buffer(
            WorkflowStateRow(
                wf_id=cache.wf_id,
                state=WorkflowState.WORKFLOW_TERMINATED.value,
                timestamp=event.ts,
                restart_count=int(event.get("restart_count", 0)),
                status=int(event.get("status", SUCCESS)),
            )
        )

    def _on_task_info(self, event: NLEvent) -> None:
        cache = self._wf(event)
        abs_task_id = str(event["task.id"])
        if abs_task_id in cache.task_ids:
            if self.strict:
                raise LoaderError(f"duplicate task.info for {abs_task_id!r}")
            return  # placeholder or restart: keep the existing row
        task_id = self.archive.next_id("task")
        cache.task_ids[abs_task_id] = task_id
        self._buffer(
            TaskRow(
                task_id=task_id,
                wf_id=cache.wf_id,
                abs_task_id=abs_task_id,
                transformation=str(event.get("transformation", "")),
                argv=_opt_str(event.get("argv")),
                type_desc=str(event.get("type_desc", "")),
            )
        )

    def _on_task_edge(self, event: NLEvent) -> None:
        cache = self._wf(event)
        self._buffer(
            TaskEdgeRow(
                wf_id=cache.wf_id,
                parent_abs_task_id=str(event["parent.task.id"]),
                child_abs_task_id=str(event["child.task.id"]),
            )
        )

    def _on_job_info(self, event: NLEvent) -> None:
        cache = self._wf(event)
        exec_job_id = str(event["job.id"])
        if exec_job_id in cache.job_ids:
            if self.strict:
                raise LoaderError(f"duplicate job.info for {exec_job_id!r}")
            return  # placeholder or restart: keep the existing row
        job_id = self.archive.next_id("job")
        cache.job_ids[exec_job_id] = job_id
        self._buffer(
            JobRow(
                job_id=job_id,
                wf_id=cache.wf_id,
                exec_job_id=exec_job_id,
                type_desc=str(event.get("type_desc", "")),
                clustered=str(event.get("clustered", "0")) in ("1", "true", "True"),
                max_retries=int(event.get("max_retries", 0)),
                executable=str(event.get("executable", "")),
                argv=_opt_str(event.get("argv")),
                task_count=int(event.get("task_count", 0)),
            )
        )

    def _on_job_edge(self, event: NLEvent) -> None:
        cache = self._wf(event)
        self._buffer(
            JobEdgeRow(
                wf_id=cache.wf_id,
                parent_exec_job_id=str(event["parent.job.id"]),
                child_exec_job_id=str(event["child.job.id"]),
            )
        )

    def _on_map_task_job(self, event: NLEvent) -> None:
        cache = self._wf(event)
        abs_task_id = str(event["task.id"])
        exec_job_id = str(event["job.id"])
        if abs_task_id not in cache.task_ids:
            raise LoaderError(f"map.task_job references unknown task {abs_task_id!r}")
        if exec_job_id not in cache.job_ids:
            raise LoaderError(f"map.task_job references unknown job {exec_job_id!r}")
        # The mapping lands as task.job_id; the journal replays it after
        # the buffered task row inside the same flush transaction.
        self._buffer_update(
            TaskRow,
            {"job_id": cache.job_ids[exec_job_id]},
            {"task_id": cache.task_ids[abs_task_id]},
        )

    def _on_map_subwf_job(self, event: NLEvent) -> None:
        cache = self._wf(event)
        subwf_uuid = str(event["subwf.id"])
        exec_job_id = str(event["job.id"])
        submit_seq = int(event["job_inst.id"])
        self._deferred_subwf.append(
            (subwf_uuid, exec_job_id, submit_seq, cache.wf_id)
        )

    def _resolve_deferred_subwf(
        self,
    ) -> Tuple[
        List[Tuple[Dict[str, Any], Dict[str, Any]]],
        List[Tuple[str, str, int, int]],
    ]:
        """Split deferred subwf→job-instance maps into (resolvable, not-yet).

        Pure computation over the in-memory caches; the caller applies the
        resolved updates inside the flush transaction and only then adopts
        the still-pending remainder.
        """
        resolved: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
        still_pending: List[Tuple[str, str, int, int]] = []
        by_wf_id = {c.wf_id: c for c in self._workflows.values()}
        for subwf_uuid, exec_job_id, submit_seq, parent_wf_id in self._deferred_subwf:
            sub = self._workflows.get(subwf_uuid)
            parent = by_wf_id.get(parent_wf_id)
            ji_id = (
                parent.job_instances.get((exec_job_id, submit_seq))
                if parent
                else None
            )
            if sub is None or ji_id is None:
                still_pending.append(
                    (subwf_uuid, exec_job_id, submit_seq, parent_wf_id)
                )
                continue
            resolved.append(
                ({"subwf_id": sub.wf_id}, {"job_instance_id": ji_id})
            )
        return resolved, still_pending

    def _on_submit_start(self, event: NLEvent) -> None:
        cache = self._wf(event)
        key = (str(event["job.id"]), int(event["job_inst.id"]))
        if key in cache.job_instances:
            if self.strict:
                raise LoaderError(
                    f"duplicate submit.start for job instance {key!r}"
                )
            return  # placeholder instance already synthesized
        ji_id = self._job_instance_id(cache, event, create=True)
        self._add_jobstate(cache, ji_id, JobState.SUBMIT, event.ts)

    def _on_submit_end(self, event: NLEvent) -> None:
        cache = self._wf(event)
        self._job_instance_id(cache, event)  # presence check only

    def _on_pre_end(self, event: NLEvent) -> None:
        cache = self._wf(event)
        ji_id = self._job_instance_id(cache, event)
        ok = int(event.get("status", SUCCESS)) == SUCCESS
        state = JobState.PRE_SCRIPT_SUCCESS if ok else JobState.PRE_SCRIPT_FAILURE
        self._add_jobstate(cache, ji_id, state, event.ts)

    def _on_post_end(self, event: NLEvent) -> None:
        cache = self._wf(event)
        ji_id = self._job_instance_id(cache, event)
        ok = int(event.get("status", SUCCESS)) == SUCCESS
        state = JobState.POST_SCRIPT_SUCCESS if ok else JobState.POST_SCRIPT_FAILURE
        self._add_jobstate(cache, ji_id, state, event.ts)

    def _jobstate(self, state: JobState):
        def handler(event: NLEvent) -> None:
            cache = self._wf(event)
            ji_id = self._job_instance_id(cache, event)
            self._add_jobstate(cache, ji_id, state, event.ts)

        return handler

    def _on_main_end(self, event: NLEvent) -> None:
        cache = self._wf(event)
        ji_id = self._job_instance_id(cache, event)
        status = int(event.get("status", SUCCESS))
        state = JobState.JOB_SUCCESS if status == SUCCESS else JobState.JOB_FAILURE
        self._add_jobstate(cache, ji_id, state, event.ts)
        self._buffer_update(
            JobInstanceRow,
            {
                "local_duration": float(event["local.dur"]),
                "exitcode": int(event["exitcode"]),
                "site": _opt_str(event.get("site")),
                "user": _opt_str(event.get("user")),
                "stdout_file": _opt_str(event.get("stdout.file")),
                "stdout_text": _opt_str(event.get("stdout.text")),
                "stderr_file": _opt_str(event.get("stderr.file")),
                "stderr_text": _opt_str(event.get("stderr.text")),
                "multiplier_factor": int(event.get("multiplier_factor", 1)),
            },
            {"job_instance_id": ji_id},
        )

    def _on_host_info(self, event: NLEvent) -> None:
        cache = self._wf(event)
        ji_id = self._job_instance_id(cache, event)
        site = str(event.get("site", ""))
        hostname = str(event["hostname"])
        host_key = (site, hostname)
        host_id = cache.host_ids.get(host_key)
        if host_id is None:
            host_id = self.archive.next_id("host")
            cache.host_ids[host_key] = host_id
            self._buffer(
                HostRow(
                    host_id=host_id,
                    wf_id=cache.wf_id,
                    site=site,
                    hostname=hostname,
                    ip=_opt_str(event.get("ip")),
                    uname=_opt_str(event.get("uname")),
                    total_memory=_opt_int(event.get("total_memory")),
                )
            )
        self._buffer_update(
            JobInstanceRow, {"host_id": host_id}, {"job_instance_id": ji_id}
        )

    def _on_inv_end(self, event: NLEvent) -> None:
        cache = self._wf(event)
        ji_id = self._job_instance_id(cache, event)
        abs_task_id = _opt_str(event.get("task.id"))
        if (
            self.strict
            and abs_task_id is not None
            and abs_task_id not in cache.task_ids
        ):
            raise LoaderError(
                f"inv.end references unknown task {abs_task_id!r} "
                f"in workflow wf_id={cache.wf_id}"
            )
        self._buffer(
            InvocationRow(
                invocation_id=self.archive.next_id("invocation"),
                job_instance_id=ji_id,
                wf_id=cache.wf_id,
                task_submit_seq=int(event["inv.id"]),
                start_time=parse_ts(event["start_time"]),
                remote_duration=float(event["dur"]),
                remote_cpu_time=_opt_float(event.get("remote_cpu_time")),
                exitcode=int(event["exitcode"]),
                transformation=str(event.get("transformation", "")),
                executable=str(event.get("executable", "")),
                argv=_opt_str(event.get("argv")),
                abs_task_id=abs_task_id,
            )
        )

    def _on_noop(self, event: NLEvent) -> None:
        self._wf(event)

    def _on_obs(self, event: NLEvent) -> None:
        """Archive one ``stampede.obs.*`` self-monitoring event.

        Telemetry is workflow-independent (no xwf.id), so it lands in
        the generic ``obs_event`` table: hot keys become columns, the
        full attribute map rides along as JSON.
        """
        name = event.get("metric") or event.get("span") or ""
        value = event.get("value")
        if value is None:
            value = event.get("dur")
        try:
            value_f = None if value is None else float(str(value))
        except ValueError:
            value_f = None
        self._buffer(
            ObsEventRow(
                obs_id=self.archive.next_id("obs_event"),
                ts=event.ts,
                event=event.event,
                name=str(name),
                component=str(event.get("component", "")),
                value=value_f,
                payload=json.dumps(
                    {k: str(v) for k, v in event.attrs.items()}, sort_keys=True
                ),
            )
        )


def _opt_str(value: object) -> Optional[str]:
    return None if value is None else str(value)


def _opt_int(value: object) -> Optional[int]:
    return None if value is None else int(value)


def _opt_float(value: object) -> Optional[float]:
    return None if value is None else float(value)
