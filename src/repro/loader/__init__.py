"""High-performance log loading: nl_load front-end, stampede_loader module,
and the monitord real-time file follower."""
from repro.loader.checkpoint import Checkpoint, CheckpointManager
from repro.loader.dlq import DeadLetter, DeadLetterQueue
from repro.loader.monitord import Monitord, follow_file
from repro.loader.nl_load import (
    load_events,
    load_file,
    load_from_bus,
    main,
    make_loader,
)
from repro.loader.pipeline import ParsePool, process_pool_available
from repro.loader.spill import SpillBuffer, SpillOverflowError
from repro.loader.stampede_loader import LoaderError, LoaderStats, StampedeLoader

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "DeadLetter",
    "DeadLetterQueue",
    "Monitord",
    "ParsePool",
    "process_pool_available",
    "SpillBuffer",
    "SpillOverflowError",
    "follow_file",
    "load_events",
    "load_file",
    "load_from_bus",
    "main",
    "make_loader",
    "LoaderError",
    "LoaderStats",
    "StampedeLoader",
]
