"""monitord: follow a growing BP log file into the archive in real time.

The real Pegasus deployment runs ``pegasus-monitord`` next to DAGMan,
tailing the workflow's log files and feeding the Stampede loader while
the workflow executes.  This module reproduces that component for any
engine that appends BP lines to a file (the Triana FileSink/
LogFileAppender does exactly that).

Two operating styles:

* :func:`follow_file` — synchronous generator-driven loop with a caller
  supplied ``poll`` (used by tests and single-threaded drivers);
* :class:`Monitord` — a background thread following the file until the
  workflow's terminal event (or an explicit stop), with progress counters.
"""
from __future__ import annotations

import os
import threading
import time
from typing import Callable, Optional, Union

from repro.loader.pipeline import ParsePool
from repro.loader.stampede_loader import StampedeLoader
from repro.model.entities import WorkflowStateRow
from repro.model.states import WorkflowState
from repro.netlogger.stream import tail_events_with_offsets, tail_raw

__all__ = ["follow_file", "Monitord"]

PathLike = Union[str, os.PathLike]


def follow_file(
    path: PathLike,
    loader: StampedeLoader,
    poll: Callable[[], bool],
    flush_every: int = 100,
    start_offset: int = 0,
    pool: Optional[ParsePool] = None,
) -> int:
    """Tail a BP file into the loader until ``poll()`` returns False.

    Returns the number of events loaded.  Flushes the loader's batch
    buffer every ``flush_every`` events so queries see fresh data.
    The loader's source position tracks the byte offset after each
    event's line, so a checkpointing loader records exactly how far into
    the file each committed batch reaches; ``start_offset`` skips the
    prefix a previous run already archived.

    With a :class:`~repro.loader.pipeline.ParsePool`, raw lines are
    buffered and parsed in parallel bursts; the buffer always drains
    before ``poll()`` runs (the raw tail emits an EOF marker first), so
    anything ``poll()`` inspects — e.g. the workflow-terminated state —
    sees every event read so far, exactly as in the sequential path.
    """
    if pool is None:
        loaded = 0
        for event, offset in tail_events_with_offsets(
            path, poll, start_offset=start_offset
        ):
            loader.position = offset
            loader.process(event)
            loaded += 1
            if loaded % flush_every == 0:
                loader.flush()
        loader.flush()
        return loaded
    return _follow_file_pooled(path, loader, poll, flush_every, start_offset, pool)


def _follow_file_pooled(
    path: PathLike,
    loader: StampedeLoader,
    poll: Callable[[], bool],
    flush_every: int,
    start_offset: int,
    pool: ParsePool,
) -> int:
    loaded = 0
    burst: list = []
    burst_limit = pool.chunk_size * max(1, pool.workers)

    def drain() -> None:
        nonlocal loaded
        for outcome, _line, offset in pool.results(burst):
            if isinstance(outcome, Exception):
                raise outcome
            loader.position = offset
            loader.process(outcome)
            loaded += 1
            if loaded % flush_every == 0:
                loader.flush()
        burst.clear()

    for kind, line, offset in tail_raw(path, poll, start_offset=start_offset):
        if kind == "eof":
            if burst:
                drain()
            continue
        burst.append((line, offset))
        if len(burst) >= burst_limit:
            drain()
    if burst:
        drain()
    loader.flush()
    return loaded


class Monitord:
    """Background follower: tail one workflow's log file into an archive.

    Stops automatically when the root workflow's WORKFLOW_TERMINATED state
    appears in the archive and the file has been drained, or when
    :meth:`stop` is called.
    """

    def __init__(
        self,
        path: PathLike,
        loader: StampedeLoader,
        poll_interval: float = 0.02,
        expected_terminations: int = 1,
        resume: bool = False,
        workers: int = 0,
        parse_mode: str = "fast",
        worker_mode: str = "thread",
        chunk_size: int = 256,
    ):
        if resume and loader.checkpoint is None:
            raise ValueError("resume=True requires a loader with a checkpoint manager")
        self.path = path
        self.loader = loader
        self.poll_interval = poll_interval
        self.expected_terminations = expected_terminations
        self.resume = resume
        self.workers = workers
        self.parse_mode = parse_mode
        self.worker_mode = worker_mode
        self.chunk_size = chunk_size
        self.events_loaded = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "Monitord":
        if self._thread is not None:
            raise RuntimeError("monitord already started")
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "Monitord":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
        self.join(timeout=10)

    # -- internals -------------------------------------------------------------
    def _terminated_count(self) -> int:
        return (
            self.loader.archive.query(WorkflowStateRow)
            .eq("state", WorkflowState.WORKFLOW_TERMINATED.value)
            .count()
        )

    def _poll(self) -> bool:
        """Keep tailing while not stopped and terminations are pending."""
        if self._stop.is_set():
            return False
        # at EOF: push buffered rows out so the termination check sees them
        self.loader.flush()
        if self._terminated_count() >= self.expected_terminations:
            return False
        time.sleep(self.poll_interval)
        return True

    def _run(self) -> None:
        start_offset = self.loader.resume() if self.resume else 0
        # wait for the file to exist (the engine may not have started yet)
        while not os.path.exists(self.path):
            if self._stop.is_set():
                return
            time.sleep(self.poll_interval)
        pool = (
            ParsePool(
                workers=self.workers,
                mode=self.worker_mode,
                parse_mode=self.parse_mode,
                chunk_size=self.chunk_size,
            )
            if self.workers > 0 or self.parse_mode != "fast"
            else None
        )
        try:
            self.events_loaded = follow_file(
                self.path,
                self.loader,
                self._poll,
                start_offset=start_offset,
                pool=pool,
            )
        finally:
            if pool is not None:
                pool.close()
