"""Synthetic audio for the DART experiment.

The real DART experiment distributes audio files with the JAR; offline we
synthesize equivalent test signals: harmonic tones with controllable
fundamental, partial rolloff, inharmonicity and noise — the signal class
SHS pitch detection is designed for.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["ToneSpec", "synth_tone", "synth_missing_fundamental", "add_noise"]

DEFAULT_SR = 8000.0


@dataclass(frozen=True)
class ToneSpec:
    """Parameters of one synthetic harmonic tone."""

    f0: float
    duration: float = 0.5
    sample_rate: float = DEFAULT_SR
    n_partials: int = 8
    rolloff: float = 0.8  # amplitude ratio between successive partials
    inharmonicity: float = 0.0  # stretch factor per partial index
    noise_level: float = 0.0
    seed: int = 0


def synth_tone(spec: ToneSpec) -> np.ndarray:
    """Render a harmonic tone as float64 samples in [-1, 1]."""
    if spec.f0 <= 0:
        raise ValueError(f"f0 must be positive, got {spec.f0}")
    if spec.f0 * spec.n_partials >= spec.sample_rate / 2:
        # quietly drop partials above Nyquist rather than aliasing
        n_partials = max(1, int(spec.sample_rate / 2 / spec.f0) - 1)
    else:
        n_partials = spec.n_partials
    t = np.arange(int(spec.duration * spec.sample_rate)) / spec.sample_rate
    signal = np.zeros_like(t)
    for k in range(1, n_partials + 1):
        freq = spec.f0 * k * (1.0 + spec.inharmonicity * k * k)
        amp = spec.rolloff ** (k - 1)
        signal += amp * np.sin(2 * np.pi * freq * t)
    peak = np.abs(signal).max()
    if peak > 0:
        signal /= peak
    if spec.noise_level > 0:
        signal = add_noise(signal, spec.noise_level, spec.seed)
    return signal


def synth_missing_fundamental(spec: ToneSpec) -> np.ndarray:
    """Tone whose fundamental partial is removed.

    The classic test case for SHS: spectrum-peak pickers report the second
    partial, sub-harmonic summation still finds f0.
    """
    if spec.n_partials < 2:
        raise ValueError("missing-fundamental tone needs at least 2 partials")
    t = np.arange(int(spec.duration * spec.sample_rate)) / spec.sample_rate
    signal = np.zeros_like(t)
    max_partial = min(
        spec.n_partials, max(2, int(spec.sample_rate / 2 / spec.f0) - 1)
    )
    for k in range(2, max_partial + 1):  # start at the 2nd partial
        freq = spec.f0 * k * (1.0 + spec.inharmonicity * k * k)
        amp = spec.rolloff ** (k - 1)
        signal += amp * np.sin(2 * np.pi * freq * t)
    peak = np.abs(signal).max()
    if peak > 0:
        signal /= peak
    if spec.noise_level > 0:
        signal = add_noise(signal, spec.noise_level, spec.seed)
    return signal


def add_noise(signal: np.ndarray, level: float, seed: int = 0) -> np.ndarray:
    """Mix in white noise at ``level`` (std relative to unit amplitude)."""
    rng = np.random.Generator(np.random.PCG64(seed))
    return signal + level * rng.standard_normal(signal.shape)
