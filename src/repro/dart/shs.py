"""Sub-Harmonic Summation (SHS) pitch detection.

The algorithm whose parameters the DART experiment sweeps (Hermes 1988):
for every candidate fundamental f, sum the magnitude spectrum sampled at
its harmonics with a geometric compression weight::

    SHS(f) = sum_{n=1..N} h^(n-1) * |X(n f)|

The candidate with the maximal sum is the pitch estimate.  The sweep
parameters are the harmonic count N, the compression factor h and the FFT
window size.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["SHSParams", "SHSResult", "shs_pitch", "shs_track", "evaluate_params"]


@dataclass(frozen=True)
class SHSParams:
    """Sweep-able parameters of the detector."""

    n_harmonics: int = 8
    compression: float = 0.84
    window_size: int = 2048
    f_min: float = 50.0
    f_max: float = 1000.0

    def __post_init__(self):
        if self.n_harmonics < 1:
            raise ValueError("n_harmonics must be >= 1")
        if not 0 < self.compression <= 1:
            raise ValueError("compression must be in (0, 1]")
        if self.window_size < 64 or self.window_size & (self.window_size - 1):
            raise ValueError("window_size must be a power of two >= 64")
        if not 0 < self.f_min < self.f_max:
            raise ValueError("need 0 < f_min < f_max")


@dataclass(frozen=True)
class SHSResult:
    f0: float
    salience: float


def _spectrum(frame: np.ndarray, window_size: int) -> np.ndarray:
    if len(frame) < window_size:
        frame = np.pad(frame, (0, window_size - len(frame)))
    else:
        frame = frame[:window_size]
    windowed = frame * np.hanning(window_size)
    return np.abs(np.fft.rfft(windowed))


def shs_pitch(
    frame: np.ndarray, sample_rate: float, params: SHSParams = SHSParams()
) -> SHSResult:
    """Estimate the pitch of one frame via sub-harmonic summation."""
    spectrum = _spectrum(np.asarray(frame, dtype=float), params.window_size)
    bin_hz = sample_rate / params.window_size
    # Candidate grid at half-bin resolution.  Harmonic magnitudes are read
    # off the spectrum by linear interpolation at real-valued positions, so
    # true pitches between bin centres keep their harmonic support (the
    # classic integer-bin SHS pitfall).
    step = bin_hz / 2.0
    candidates = np.arange(params.f_min, params.f_max + step, step)
    if len(candidates) < 3:
        raise ValueError(
            f"candidate range [{params.f_min}, {params.f_max}] Hz empty at "
            f"window {params.window_size} / rate {sample_rate}"
        )
    bin_positions = np.arange(len(spectrum))
    salience = np.zeros(len(candidates))
    for n in range(1, params.n_harmonics + 1):
        positions = candidates * n / bin_hz
        magnitudes = np.interp(positions, bin_positions, spectrum, right=0.0)
        salience += (params.compression ** (n - 1)) * magnitudes
    best = int(np.argmax(salience))
    # Parabolic interpolation around the peak for sub-grid accuracy.
    f_est = candidates[best]
    if 0 < best < len(candidates) - 1:
        y0, y1, y2 = salience[best - 1 : best + 2]
        denom = y0 - 2 * y1 + y2
        if abs(denom) > 1e-12:
            delta = 0.5 * (y0 - y2) / denom
            f_est = candidates[best] + np.clip(delta, -0.5, 0.5) * step
    return SHSResult(f0=float(f_est), salience=float(salience[best]))


def shs_track(
    signal: np.ndarray,
    sample_rate: float,
    params: SHSParams = SHSParams(),
    hop: Optional[int] = None,
) -> np.ndarray:
    """Frame-by-frame pitch track of a signal."""
    hop = hop or params.window_size // 2
    signal = np.asarray(signal, dtype=float)
    n_frames = max(1, 1 + (len(signal) - params.window_size) // hop)
    return np.array(
        [
            shs_pitch(signal[i * hop : i * hop + params.window_size],
                      sample_rate, params).f0
            for i in range(n_frames)
        ]
    )


def evaluate_params(
    params: SHSParams,
    test_cases: Sequence[Tuple[np.ndarray, float]],
    sample_rate: float,
    tolerance_cents: float = 50.0,
) -> float:
    """Fraction of test tones whose detected pitch is within tolerance.

    This is the figure of merit the DART sweep optimizes: each exec task
    scores one parameter combination over the distributed audio corpus.
    """
    if not test_cases:
        raise ValueError("no test cases supplied")
    correct = 0
    for signal, true_f0 in test_cases:
        est = shs_pitch(signal, sample_rate, params).f0
        if est <= 0:
            continue
        cents = 1200.0 * np.log2(est / true_f0)
        if abs(cents) <= tolerance_cents:
            correct += 1
    return correct / len(test_cases)
