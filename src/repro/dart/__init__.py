"""The DART music-information-retrieval experiment (paper §VI)."""
from repro.dart.audio import ToneSpec, add_noise, synth_missing_fundamental, synth_tone
from repro.dart.shs import SHSParams, SHSResult, evaluate_params, shs_pitch, shs_track
from repro.dart.sweep import (
    N_COMMANDS,
    SweepCommand,
    command_duration,
    generate_commands,
    parse_command,
    sweep_grid,
)
from repro.dart.pegasus_variant import (
    DARTPegasusResult,
    build_bundle_aw,
    build_parent_aw,
    run_dart_pegasus,
)
from repro.dart.streaming import (
    ContourTrackerUnit,
    PitchAnalysisUnit,
    StreamingDARTResult,
    melody_frames,
    run_streaming_dart,
)
from repro.dart.workflow import (
    DARTRunResult,
    DartExecUnit,
    DARTSubmitterUnit,
    build_sub_workflow,
    chunk_commands,
    run_dart_experiment,
)

__all__ = [
    "ToneSpec",
    "add_noise",
    "synth_missing_fundamental",
    "synth_tone",
    "SHSParams",
    "SHSResult",
    "evaluate_params",
    "shs_pitch",
    "shs_track",
    "N_COMMANDS",
    "SweepCommand",
    "command_duration",
    "generate_commands",
    "parse_command",
    "sweep_grid",
    "DARTPegasusResult",
    "build_bundle_aw",
    "build_parent_aw",
    "run_dart_pegasus",
    "ContourTrackerUnit",
    "PitchAnalysisUnit",
    "StreamingDARTResult",
    "melody_frames",
    "run_streaming_dart",
    "DARTRunResult",
    "DartExecUnit",
    "DARTSubmitterUnit",
    "build_sub_workflow",
    "chunk_commands",
    "run_dart_experiment",
]
