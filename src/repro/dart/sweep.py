"""The DART parameter sweep (paper §VI).

"The parent workflow ... uses a single file as its input.  This file was
created using a separate Python script, and defines a list of 306 strings,
separated by the newline character.  These strings are executable via a
terminal's command line."

The grid: 17 harmonic counts × 6 compression factors × 3 window sizes =
306 combinations, each rendered as one command line for the (simulated)
DART JAR.  Execution durations scale with the work each combination does
(more harmonics and larger windows cost more), calibrated so the full
sweep's cumulative wall time lands at the paper's ~40 000 seconds.
"""
from __future__ import annotations

import shlex
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.dart.shs import SHSParams

__all__ = [
    "SweepCommand",
    "sweep_grid",
    "generate_commands",
    "parse_command",
    "command_duration",
    "N_COMMANDS",
]

HARMONICS = list(range(4, 21))  # 17 values
COMPRESSIONS = [0.70, 0.75, 0.80, 0.85, 0.90, 0.95]  # 6 values
WINDOWS = [1024, 2048, 4096]  # 3 values
N_COMMANDS = len(HARMONICS) * len(COMPRESSIONS) * len(WINDOWS)  # 306

# Duration model: t = _DUR_BASE + _DUR_SCALE * H * sqrt(W / 1024) seconds.
# _DUR_SCALE is calibrated so the mean over the grid is ~129 s, which puts
# the 306-task sweep's cumulative wall time at the paper's ~40 224 s.
_DUR_BASE = 5.0
_DUR_SCALE = 7.03


@dataclass(frozen=True)
class SweepCommand:
    """One line of the sweep input file."""

    index: int
    harmonics: int
    compression: float
    window: int

    @property
    def line(self) -> str:
        return (
            f"java -jar dart.jar --algorithm shs "
            f"--harmonics {self.harmonics} "
            f"--compression {self.compression:.2f} "
            f"--window {self.window} "
            f"--input audio/corpus --output results/run_{self.index:03d}.out"
        )

    @property
    def params(self) -> SHSParams:
        return SHSParams(
            n_harmonics=self.harmonics,
            compression=self.compression,
            window_size=self.window,
        )


def sweep_grid() -> List[SweepCommand]:
    """All 306 sweep points, in input-file order."""
    commands: List[SweepCommand] = []
    index = 0
    for h in HARMONICS:
        for c in COMPRESSIONS:
            for w in WINDOWS:
                commands.append(SweepCommand(index, h, c, w))
                index += 1
    return commands


def generate_commands() -> List[str]:
    """The 306 command strings (the content of the sweep input file)."""
    return [cmd.line for cmd in sweep_grid()]


def parse_command(line: str) -> SweepCommand:
    """Recover the sweep point from one command line."""
    tokens = shlex.split(line)
    values = {}
    for flag in ("--harmonics", "--compression", "--window", "--output"):
        try:
            values[flag] = tokens[tokens.index(flag) + 1]
        except (ValueError, IndexError):
            raise ValueError(f"malformed DART command (missing {flag}): {line!r}")
    index = int(values["--output"].rsplit("_", 1)[1].split(".")[0])
    return SweepCommand(
        index=index,
        harmonics=int(values["--harmonics"]),
        compression=float(values["--compression"]),
        window=int(values["--window"]),
    )


def command_duration(cmd: SweepCommand) -> float:
    """Deterministic base duration (seconds) of one sweep execution."""
    return _DUR_BASE + _DUR_SCALE * cmd.harmonics * float(
        np.sqrt(cmd.window / 1024.0)
    )


def mean_duration() -> float:
    """Grid-mean of the duration model (calibration check)."""
    grid = sweep_grid()
    return float(np.mean([command_duration(c) for c in grid]))
