"""The continuous-mode DART experiment (paper §VIII future work).

"In the future, we plan to devise a workflow experiment that executes a
data driven workflow employing the continuous mode of operation of
Triana."  This module implements that experiment: a streaming pitch
tracker —

* a source unit streams audio frames (synthetic melody);
* an SHS analysis unit estimates the pitch of every frame (one
  *invocation per frame* under a single job instance — the multi-
  invocation jobs the Stampede model was extended for);
* a tracker unit accumulates the pitch contour and releases the workflow
  once it has collected enough voiced frames (the "local condition").
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.bus.client import EventSink
from repro.dart.audio import ToneSpec, synth_tone
from repro.dart.shs import SHSParams, shs_pitch
from repro.triana.scheduler import Scheduler, SchedulerReport
from repro.triana.stampede_log import StampedeLog
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import StreamSourceUnit, Unit
from repro.util.uuidgen import UUIDFactory

__all__ = ["PitchAnalysisUnit", "ContourTrackerUnit", "melody_frames",
           "StreamingDARTResult", "run_streaming_dart"]

_SR = 8000.0


def melody_frames(
    notes: Sequence[float],
    frames_per_note: int = 4,
    frame_size: int = 1024,
    noise_level: float = 0.05,
    seed: int = 0,
) -> List[np.ndarray]:
    """Synthesize a melody as a list of audio frames."""
    frames: List[np.ndarray] = []
    for i, f0 in enumerate(notes):
        tone = synth_tone(
            ToneSpec(
                f0=f0,
                duration=frames_per_note * frame_size / _SR,
                sample_rate=_SR,
                noise_level=noise_level,
                seed=seed + i,
            )
        )
        for k in range(frames_per_note):
            frames.append(tone[k * frame_size : (k + 1) * frame_size])
    return frames


class PitchAnalysisUnit(Unit):
    """Per-frame SHS pitch estimation (the DART algorithm, streaming)."""

    type_desc = "processing"

    def __init__(self, name: str, params: Optional[SHSParams] = None,
                 seconds: float = 0.5):
        super().__init__(name)
        self.params = params or SHSParams(window_size=1024, f_max=900.0)
        self._seconds = seconds
        self.frames_analyzed = 0

    def process(self, inputs) -> dict:
        (frame,) = inputs
        result = shs_pitch(np.asarray(frame), _SR, self.params)
        self.frames_analyzed += 1
        return {"f0": result.f0, "salience": result.salience}

    def duration(self, inputs, rng) -> float:
        return self._seconds


class ContourTrackerUnit(Unit):
    """Accumulates the pitch contour; releases after enough voiced frames.

    A frame counts as voiced when its salience clears ``salience_floor``.
    """

    type_desc = "sink"

    def __init__(self, name: str, target_voiced_frames: int,
                 salience_floor: float = 1.0, seconds: float = 0.2):
        super().__init__(name)
        self.target = target_voiced_frames
        self.salience_floor = salience_floor
        self.contour: List[float] = []
        self.satisfied = False
        self._seconds = seconds

    def process(self, inputs) -> List[float]:
        (estimate,) = inputs
        if estimate["salience"] >= self.salience_floor:
            self.contour.append(estimate["f0"])
        if len(self.contour) >= self.target:
            self.satisfied = True
        return list(self.contour)

    def duration(self, inputs, rng) -> float:
        return self._seconds


@dataclass
class StreamingDARTResult:
    xwf_id: str
    report: SchedulerReport
    contour: List[float] = field(default_factory=list)
    frames_streamed: int = 0
    invocations: int = 0


def run_streaming_dart(
    sink: EventSink,
    notes: Optional[Sequence[float]] = None,
    frames_per_note: int = 4,
    target_voiced_frames: int = 12,
    seed: int = 0,
) -> StreamingDARTResult:
    """Execute the continuous-mode pitch-tracking workflow."""
    notes = list(notes) if notes is not None else [220.0, 261.6, 329.6, 392.0]
    frames = melody_frames(notes, frames_per_note=frames_per_note, seed=seed)

    graph = TaskGraph("dart-streaming")
    source = graph.add(StreamSourceUnit("audio-stream", frames, seconds=0.25))
    analysis = graph.add(PitchAnalysisUnit("shs-analysis"))
    tracker = graph.add(
        ContourTrackerUnit("contour-tracker", target_voiced_frames)
    )
    graph.connect(source, analysis)
    graph.connect(analysis, tracker)

    scheduler = Scheduler(graph, seed=seed, mode="continuous")
    xwf_id = UUIDFactory(seed ^ 0x57E4).new()
    StampedeLog(scheduler, sink, xwf_id=xwf_id, site="desktop",
                hostname="dart-desktop")
    report = scheduler.run()

    # the tracker's threshold is Triana's "local condition" release; since
    # ThresholdSinkUnit-style early release only triggers for that class,
    # the run completes when the stream drains or the tracker satisfies.
    return StreamingDARTResult(
        xwf_id=xwf_id,
        report=report,
        contour=list(tracker.unit.contour),
        frames_streamed=len(frames),
        invocations=report.invocations,
    )
