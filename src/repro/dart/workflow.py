"""The DART workflows (paper §VI, Fig. 6) and the experiment driver.

Structure reproduced from the paper:

* a **meta/root workflow** on the user's desktop splits the 306-line sweep
  input file into chunks of ~16 commands, wraps each chunk in a SHIWA
  bundle, POSTs the bundles to the TrianaCloud broker and monitors them;
* each **sub-workflow bundle** holds an input-preparation task named by
  its command-line range (``unit:304-305`` in Table III), the executable
  DART tasks (``exec0`` …), a ``file.zipper`` collating the outputs and a
  ``file.Output_0`` results task;
* the bundles run on 8 cloud nodes, each bundle executing 4 tasks at a
  time.

Every exec task does *real* work: it parses its DART command line, builds
the corresponding :class:`~repro.dart.shs.SHSParams`, and scores them on a
synthetic audio corpus.  Its simulated duration follows the calibrated
model in :mod:`repro.dart.sweep`.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bus.client import EventSink
from repro.dart.audio import ToneSpec, synth_missing_fundamental, synth_tone
from repro.dart.shs import evaluate_params
from repro.dart.sweep import (
    SweepCommand,
    command_duration,
    generate_commands,
    parse_command,
)
from repro.triana.bundles import WorkflowBundle, register_unit_codec
from repro.triana.cloud import CloudJoinUnit, TrianaCloudBroker
from repro.triana.scheduler import Scheduler, SchedulerReport
from repro.triana.stampede_log import StampedeLog
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import ConstantUnit, ExecUnit, GatherUnit, ZipperUnit
from repro.util.simclock import SimClock
from repro.util.uuidgen import UUIDFactory

__all__ = [
    "DartExecUnit",
    "build_sub_workflow",
    "chunk_commands",
    "DARTSubmitterUnit",
    "DARTRunResult",
    "run_dart_experiment",
]

_CORPUS_SR = 8000.0
_corpus_cache: Optional[List[Tuple[np.ndarray, float]]] = None


def _corpus() -> List[Tuple[np.ndarray, float]]:
    """Small synthetic test corpus shared by all exec tasks (lazy, cached)."""
    global _corpus_cache
    if _corpus_cache is None:
        cases: List[Tuple[np.ndarray, float]] = []
        for i, f0 in enumerate([82.4, 110.0, 146.8, 220.0, 329.6, 440.0]):
            spec = ToneSpec(f0=f0, duration=0.3, sample_rate=_CORPUS_SR,
                            noise_level=0.05, seed=i)
            cases.append((synth_tone(spec), f0))
        for i, f0 in enumerate([98.0, 196.0, 293.7]):
            spec = ToneSpec(f0=f0, duration=0.3, sample_rate=_CORPUS_SR,
                            noise_level=0.05, seed=100 + i)
            cases.append((synth_missing_fundamental(spec), f0))
        _corpus_cache = cases
    return _corpus_cache


class DartExecUnit(ExecUnit):
    """One DART execution: runs SHS with the command's parameters."""

    type_desc = "processing"

    def __init__(self, name: str, command_line: str, noise_sigma: float = 0.08):
        cmd = parse_command(command_line)
        super().__init__(
            name,
            argv=command_line.split(),
            runner=None,
            base_seconds=command_duration(cmd),
            noise_sigma=noise_sigma,
        )
        self.command_line = command_line
        self.sweep = cmd

    def process(self, inputs) -> Dict[str, float]:
        accuracy = evaluate_params(self.sweep.params, _corpus(), _CORPUS_SR)
        return {
            "index": self.sweep.index,
            "harmonics": self.sweep.harmonics,
            "compression": self.sweep.compression,
            "window": self.sweep.window,
            "accuracy": accuracy,
        }


register_unit_codec(
    "dart_exec",
    DartExecUnit,
    lambda u: {"command_line": u.command_line, "noise_sigma": u.noise_sigma},
    lambda name, kw: DartExecUnit(name, kw["command_line"],
                                  noise_sigma=kw.get("noise_sigma", 0.08)),
)


def chunk_commands(
    commands: Sequence[str], chunk_size: int = 16, seed: int = 0
) -> List[Tuple[int, int, List[str]]]:
    """Shuffle the sweep file and cut it into contiguous line ranges.

    The separate Python script that generated the paper's input file fixed
    the line order; we shuffle deterministically so each bundle carries a
    balanced mix of cheap and expensive parameter points (otherwise the
    last bundles — highest harmonic counts — dominate the makespan).
    Returns (first_line, last_line, lines) per chunk.
    """
    rng = np.random.Generator(np.random.PCG64(seed ^ 0xDA87))
    order = rng.permutation(len(commands))
    shuffled = [commands[i] for i in order]
    chunks = []
    for start in range(0, len(shuffled), chunk_size):
        lines = shuffled[start : start + chunk_size]
        chunks.append((start, start + len(lines) - 1, lines))
    return chunks


def build_sub_workflow(
    name: str, first_line: int, last_line: int, lines: Sequence[str]
) -> TaskGraph:
    """One DART bundle graph: unit → exec* → zipper → Output_0."""
    graph = TaskGraph(name)
    unit = graph.add(
        ConstantUnit(f"unit:{first_line}-{last_line}", value=list(lines))
    )
    zipper = graph.add(ZipperUnit("file.zipper"))
    for i, line in enumerate(lines):
        exec_task = graph.add(DartExecUnit(f"exec{i}", line))
        graph.connect(unit, exec_task)
        graph.connect(exec_task, zipper)
    output = graph.add(GatherUnit("file.Output_0"))
    output.unit.type_desc = "file"
    graph.connect(zipper, output)
    return graph


class DARTSubmitterUnit(CloudJoinUnit):
    """The root meta-workflow task: creates, submits and monitors bundles."""

    type_desc = "unit"

    def __init__(
        self,
        name: str,
        broker: TrianaCloudBroker,
        commands: Sequence[str],
        chunk_size: int = 16,
        seed: int = 0,
        root_xwf_id: Optional[str] = None,
    ):
        super().__init__(name, broker)
        self.commands = list(commands)
        self.chunk_size = chunk_size
        self.seed = seed
        self.root_xwf_id = root_xwf_id
        self.bundles_submitted = 0

    def process(self, inputs) -> Optional[dict]:
        chunks = chunk_commands(self.commands, self.chunk_size, self.seed)
        for k, (lo, hi, lines) in enumerate(chunks):
            graph = build_sub_workflow(f"dart-bundle-{k:02d}", lo, hi, lines)
            bundle = WorkflowBundle.from_graph(
                graph,
                parent_xwf_id=None,  # filled from the attached parent log
                root_xwf_id=self.root_xwf_id,
            )
            self.broker.submit(bundle.to_json(), submitting_job=self.name)
            self.bundles_submitted += 1
        return None  # completed externally when the broker reports all-done


@dataclass
class DARTRunResult:
    """Handle to everything a DART experiment produced."""

    root_xwf_id: str
    wall_time: float
    root_report: SchedulerReport
    broker: TrianaCloudBroker
    clock: SimClock
    n_bundles: int
    n_exec_tasks: int
    best_result: Optional[Dict[str, float]] = None
    all_results: List[Dict[str, float]] = field(default_factory=list)


def run_dart_experiment(
    sink: EventSink,
    seed: int = 0,
    n_nodes: int = 8,
    slots_per_bundle: int = 4,
    bundles_per_node: int = 3,
    chunk_size: int = 16,
    commands: Optional[Sequence[str]] = None,
    start_time: float = 1331640000.0,
) -> DARTRunResult:
    """Execute the full DART experiment, emitting Stampede events to ``sink``.

    Defaults reproduce the paper's deployment: 306 sweep commands, chunks
    of 16 → 20 bundles, 8 cloud nodes running 4 tasks at a time per bundle.
    """
    commands = list(commands) if commands is not None else generate_commands()
    clock = SimClock(start_time)
    uuids = UUIDFactory(seed)
    root_xwf_id = uuids.new()

    broker = TrianaCloudBroker(
        clock,
        sink,
        n_nodes=n_nodes,
        slots_per_bundle=slots_per_bundle,
        bundles_per_node=bundles_per_node,
        seed=seed,
    )
    root_graph = TaskGraph("dart-meta")
    submitter = DARTSubmitterUnit(
        "DARTMonitor", broker, commands, chunk_size=chunk_size, seed=seed,
        root_xwf_id=root_xwf_id,
    )
    monitor_task = root_graph.add(submitter)

    scheduler = Scheduler(
        root_graph,
        clock=clock,
        rng=np.random.Generator(np.random.PCG64(seed)),
    )
    root_log = StampedeLog(
        scheduler,
        sink,
        xwf_id=root_xwf_id,
        site="desktop",
        hostname="dart-desktop",
        user="dart",
        submit_dir="/home/dart/sweep",
    )
    broker.attach_parent(root_log)
    submitter.bind(scheduler)

    scheduler.start()
    clock.run()
    report = scheduler.finalize()

    # Collect the science: every exec task result, and the winning point.
    all_results: List[Dict[str, float]] = []
    for run in broker.runs:
        for task_name, value in run.results.items():
            if task_name.startswith("exec") and isinstance(value, dict):
                all_results.append(value)
    all_results.sort(key=lambda r: r["index"])
    best = (
        max(all_results, key=lambda r: (r["accuracy"], -r["index"]))
        if all_results
        else None
    )
    return DARTRunResult(
        root_xwf_id=root_xwf_id,
        wall_time=report.wall_time,
        root_report=report,
        broker=broker,
        clock=clock,
        n_bundles=len(broker.runs),
        n_exec_tasks=len(commands),
        best_result=best,
        all_results=all_results,
    )
