"""The DART experiment on the Pegasus-style engine.

The paper's §V-A notes that running Triana in single-step mode makes the
run "more compatible with a Pegasus run, allowing us to more easily
compare a user's experience of using Stampede in both systems".  This
module completes that comparison: the same 306-command sweep, structured
the Pegasus way — a parent workflow whose 20 sub-DAX jobs each run one
bundle's workflow (unit → execs → zipper → Output_0) on a Condor-style
site catalog.

The task accounting matches the Triana variant exactly: 1 parent task +
20 bundles × (execs + 3 bundle tasks) = 367 tasks for the standard
configuration, so Table I reproduces identically from either engine.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bus.client import EventSink
from repro.dart.sweep import command_duration, generate_commands, parse_command
from repro.dart.workflow import chunk_commands
from repro.pegasus.abstract import AbstractTask, AbstractWorkflow
from repro.pegasus.hierarchy import HierarchicalRun, SubDaxJob
from repro.pegasus.planner import PlannerConfig
from repro.pegasus.sites import Site, SiteCatalog

__all__ = ["build_bundle_aw", "build_parent_aw", "run_dart_pegasus",
           "DARTPegasusResult"]


def build_bundle_aw(
    name: str, first_line: int, last_line: int, lines: Sequence[str]
) -> AbstractWorkflow:
    """One bundle as an abstract workflow: unit → exec* → zipper → Output_0."""
    aw = AbstractWorkflow(name)
    unit_id = f"unit:{first_line}-{last_line}"
    aw.add_task(
        AbstractTask(unit_id, transformation=unit_id, runtime_estimate=1.0)
    )
    aw.add_task(
        AbstractTask("file.zipper", transformation="file.zipper",
                     runtime_estimate=1.0)
    )
    aw.add_task(
        AbstractTask("file.Output_0", transformation="file.Output_0",
                     runtime_estimate=1.0)
    )
    for i, line in enumerate(lines):
        cmd = parse_command(line)
        exec_id = f"exec{i}"
        aw.add_task(
            AbstractTask(
                exec_id,
                transformation=exec_id,
                argv=line,
                runtime_estimate=command_duration(cmd),
            )
        )
        aw.add_dependency(unit_id, exec_id)
        aw.add_dependency(exec_id, "file.zipper")
    aw.add_dependency("file.zipper", "file.Output_0")
    return aw


def build_parent_aw() -> AbstractWorkflow:
    """The parent: a single sweep-preparation task the sub-DAX jobs follow."""
    aw = AbstractWorkflow("dart-pegasus-meta")
    aw.add_task(
        AbstractTask(
            "prepare_sweep",
            transformation="prepare_sweep",
            argv="--input sweep_commands.txt --chunk 16",
            runtime_estimate=1.0,
        )
    )
    return aw


@dataclass
class DARTPegasusResult:
    """Outcome of the Pegasus-variant DART run."""

    xwf_id: str
    wall_time: float
    ok: bool
    n_bundles: int
    n_exec_tasks: int
    run: HierarchicalRun


def run_dart_pegasus(
    sink: EventSink,
    seed: int = 0,
    n_nodes: int = 8,
    slots_per_node: int = 12,
    chunk_size: int = 16,
    commands: Optional[Sequence[str]] = None,
) -> DARTPegasusResult:
    """Run the DART sweep as a hierarchical Pegasus workflow.

    The site catalog mirrors the TrianaCloud deployment: ``n_nodes``
    single-host sites whose slot count matches the oversubscribed thread
    capacity of the Triana variant (bundles_per_node × slots_per_bundle).
    """
    commands = list(commands) if commands is not None else generate_commands()
    chunks = chunk_commands(commands, chunk_size, seed)
    parent = build_parent_aw()
    sub_jobs: List[SubDaxJob] = []
    for k, (lo, hi, lines) in enumerate(chunks):
        sub_jobs.append(
            SubDaxJob(
                f"subdax_bundle_{k:02d}",
                build_bundle_aw(f"dart-bundle-{k:02d}", lo, hi, lines),
                depends_on=["prepare_sweep"],
            )
        )
    catalog = SiteCatalog(
        [
            Site(
                f"trianaworker{i}",
                slots=slots_per_node,
                mean_queue_delay=0.5,
                hosts_per_site=1,
            )
            for i in range(n_nodes)
        ]
    )
    config = PlannerConfig(
        cluster_size=1,
        add_create_dir=False,
        add_stage_in=False,
        add_stage_out=False,
        max_retries=0,
    )
    run = HierarchicalRun(
        parent,
        sub_jobs,
        sink,
        catalog=catalog,
        planner_config=config,
        seed=seed,
        child_planner_config=config,
    )
    report = run.run()
    return DARTPegasusResult(
        xwf_id=run.xwf_id,
        wall_time=report.wall_time,
        ok=report.ok,
        n_bundles=len(sub_jobs),
        n_exec_tasks=len(commands),
        run=run,
    )
