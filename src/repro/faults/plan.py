"""Declarative, seeded fault plans for the monitoring pipeline.

A :class:`FaultPlan` describes what may go wrong in each layer of the
paper's Figure-1 pipeline — engine → bus → loader → archive — as plain
data, so a chaos run is a *spec plus one RNG seed* and therefore exactly
reproducible:

.. code-block:: python

    plan = FaultPlan.from_dict({
        "seed": 42,
        "bus": {"drop": 0.05, "duplicate": 0.05, "reorder": 0.10,
                "disconnect_after": [120]},
        "archive": {"fail_transactions": [2, 5]},
        "engine": {"crash": {"b": [1]}, "hang_seconds": 60.0},
    })

Each layer draws from its own deterministic RNG stream (derived from the
seed and the layer name), so adding faults to one layer never perturbs
another layer's dice.  Every injected fault is tallied in
:class:`FaultStats`, which serializes to JSON for the chaos-smoke CI
artifact.

The wrappers that *apply* a plan live next door:
:class:`repro.faults.bus.ChaosBroker`,
:class:`repro.faults.archive.ChaosDatabase`, and
:class:`repro.faults.engine.EngineFaultInjector`.
"""
from __future__ import annotations

import json
import random
import threading
import zlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "FaultPlanError",
    "BusFaultSpec",
    "ArchiveFaultSpec",
    "EngineFaultSpec",
    "FaultStats",
    "FaultPlan",
]

_MAX_RATE = 0.9  # rates above this make geometric redelivery degenerate


class FaultPlanError(ValueError):
    """A fault spec failed validation."""


def _check_rate(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= _MAX_RATE:
        raise FaultPlanError(f"{name} must be in [0, {_MAX_RATE}], got {value}")
    return value


@dataclass(frozen=True)
class BusFaultSpec:
    """What can happen to a message between publisher and consumer.

    All faults honor AMQP delivery semantics, so the resilience layer can
    recover: a *dropped* delivery was never acked (the broker redelivers
    it), a *duplicate* is a second fan-out of the same stamped message,
    *reorder*/*delay* hold a delivery back so later ones overtake it, and
    *disconnect_after* severs the consumer connection after the n-th
    ``get`` (requeueing everything in flight).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_depth: int = 3
    delay: float = 0.0
    delay_polls: int = 2
    disconnect_after: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "delay"):
            _check_rate(f"bus.{name}", getattr(self, name))
        if self.reorder_depth < 1 or self.delay_polls < 1:
            raise FaultPlanError("reorder_depth/delay_polls must be >= 1")
        if any(n < 1 for n in self.disconnect_after):
            raise FaultPlanError("disconnect_after ordinals are 1-based")

    @property
    def active(self) -> bool:
        return bool(
            self.drop or self.duplicate or self.reorder or self.delay
            or self.disconnect_after
        )


@dataclass(frozen=True)
class ArchiveFaultSpec:
    """Transient archive failures: lock contention on write transactions.

    ``fail_transactions`` lists 1-based ordinals of write-transaction
    *attempts* that raise ``sqlite3.OperationalError('database is
    locked')`` — attempt 2 failing means the retry (attempt 3) sees a
    healthy database, exactly the shape real lock contention has.
    ``error_rate`` adds seeded random failures on top.
    """

    fail_transactions: Tuple[int, ...] = ()
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("archive.error_rate", self.error_rate)
        if any(n < 1 for n in self.fail_transactions):
            raise FaultPlanError("fail_transactions ordinals are 1-based")

    @property
    def active(self) -> bool:
        return bool(self.fail_transactions or self.error_rate)


@dataclass(frozen=True)
class EngineFaultSpec:
    """Task-execution faults inside the engines.

    ``crash`` maps a job / task name to the 1-based attempt ordinals that
    fail with an injected non-zero exit (DAGMan then retries up to the
    job's ``max_retries``; Triana surfaces an ERROR state).  ``hang``
    maps names to attempts that stall for ``hang_seconds`` of simulated
    time before completing.  ``crash_rate`` / ``hang_rate`` add seeded
    random faults across all attempts.
    """

    crash: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    hang: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    hang_seconds: float = 60.0

    def __post_init__(self) -> None:
        _check_rate("engine.crash_rate", self.crash_rate)
        _check_rate("engine.hang_rate", self.hang_rate)
        if self.hang_seconds < 0:
            raise FaultPlanError("hang_seconds must be >= 0")

    @property
    def active(self) -> bool:
        return bool(self.crash or self.hang or self.crash_rate or self.hang_rate)


@dataclass
class FaultStats:
    """Tally of every fault injected and every recovery observed."""

    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_reordered: int = 0
    messages_delayed: int = 0
    disconnects: int = 0
    archive_faults: int = 0
    engine_crashes: int = 0
    engine_hangs: int = 0

    @property
    def total_injected(self) -> int:
        return sum(asdict(self).values())

    def to_dict(self) -> Dict[str, int]:
        data = asdict(self)
        data["total_injected"] = self.total_injected
        return data

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)


def _sub_mapping(data: Mapping[str, Any], key: str) -> Dict[str, Any]:
    value = data.get(key) or {}
    if not isinstance(value, Mapping):
        raise FaultPlanError(f"{key!r} section must be a mapping, got {value!r}")
    return dict(value)


def _int_tuple(value: Any) -> Tuple[int, ...]:
    if value is None:
        return ()
    if isinstance(value, (int, float)):
        return (int(value),)
    return tuple(int(v) for v in value)


def _name_attempts(value: Any) -> Dict[str, Tuple[int, ...]]:
    return {str(k): _int_tuple(v) for k, v in (value or {}).items()}


class FaultPlan:
    """One seeded, deterministic chaos scenario across all pipeline layers."""

    def __init__(
        self,
        seed: int = 0,
        bus: Optional[BusFaultSpec] = None,
        archive: Optional[ArchiveFaultSpec] = None,
        engine: Optional[EngineFaultSpec] = None,
        armed: bool = True,
    ):
        self.seed = int(seed)
        self.bus = bus or BusFaultSpec()
        self.archive = archive or ArchiveFaultSpec()
        self.engine = engine or EngineFaultSpec()
        self.stats = FaultStats()
        self._rngs: Dict[str, random.Random] = {}
        self._injectors: Dict[str, Any] = {}
        # plans arm at construction by default (existing behavior); a
        # disarmed plan's injectors pass traffic through untouched until
        # arm() flips the gate — how the replay harness switches chaos
        # on mid-storm, from another thread, without re-wiring the bus
        self._armed = threading.Event()
        if armed:
            self._armed.set()

    # -- arming ---------------------------------------------------------------
    @property
    def armed(self) -> bool:
        return self._armed.is_set()

    def arm(self) -> None:
        """Start injecting faults (idempotent; safe from any thread).

        Ordinal-scheduled faults (``disconnect_after``,
        ``fail_transactions``) count deliveries/attempts from the start
        of the run even while disarmed, so an ordinal already passed at
        arm time fires on the next opportunity.
        """
        self._armed.set()

    def disarm(self) -> None:
        self._armed.clear()

    # -- construction --------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from a YAML-shaped mapping (see module docstring)."""
        known = {"seed", "bus", "archive", "engine", "armed"}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan section(s): {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        bus = _sub_mapping(data, "bus")
        bus["disconnect_after"] = _int_tuple(bus.get("disconnect_after"))
        archive = _sub_mapping(data, "archive")
        archive["fail_transactions"] = _int_tuple(archive.get("fail_transactions"))
        engine = _sub_mapping(data, "engine")
        engine["crash"] = _name_attempts(engine.get("crash"))
        engine["hang"] = _name_attempts(engine.get("hang"))
        try:
            return cls(
                seed=int(data.get("seed", 0)),
                bus=BusFaultSpec(**bus),
                archive=ArchiveFaultSpec(**archive),
                engine=EngineFaultSpec(**engine),
                armed=bool(data.get("armed", True)),
            )
        except TypeError as exc:  # unknown field name inside a section
            raise FaultPlanError(str(exc)) from None

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON (or, when PyYAML is present, YAML) file."""
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            try:
                import yaml  # type: ignore[import-untyped]
            except ImportError:
                raise FaultPlanError(
                    f"{path}: not valid JSON and PyYAML is not installed"
                ) from None
            data = yaml.safe_load(text)
        if not isinstance(data, Mapping):
            raise FaultPlanError(f"{path}: fault plan must be a mapping")
        return cls.from_dict(data)

    # -- deterministic randomness --------------------------------------------
    def rng(self, layer: str) -> random.Random:
        """The per-layer RNG stream (stable across reconnects/retries)."""
        if layer not in self._rngs:
            self._rngs[layer] = random.Random(
                (self.seed << 32) ^ zlib.crc32(layer.encode("utf-8"))
            )
        return self._rngs[layer]

    # -- layer injectors (singletons, so state survives reconnects) ----------
    def bus_injector(self):
        if "bus" not in self._injectors:
            from repro.faults.bus import BusFaultInjector

            self._injectors["bus"] = BusFaultInjector(
                self.bus, self.rng("bus"), self.stats, gate=self._armed.is_set
            )
        return self._injectors["bus"]

    def archive_injector(self):
        if "archive" not in self._injectors:
            from repro.faults.archive import ArchiveFaultInjector

            self._injectors["archive"] = ArchiveFaultInjector(
                self.archive, self.rng("archive"), self.stats, gate=self._armed.is_set
            )
        return self._injectors["archive"]

    def engine_injector(self):
        if "engine" not in self._injectors:
            from repro.faults.engine import EngineFaultInjector

            self._injectors["engine"] = EngineFaultInjector(
                self.engine, self.rng("engine"), self.stats, gate=self._armed.is_set
            )
        return self._injectors["engine"]

    def wrap_database(self, db):
        """Wrap an ORM backend so archive faults fire on its writes."""
        from repro.faults.archive import ChaosDatabase

        return ChaosDatabase(db, self.archive_injector())

    def __repr__(self) -> str:
        active = [
            name
            for name, spec in (
                ("bus", self.bus),
                ("archive", self.archive),
                ("engine", self.engine),
            )
            if spec.active
        ]
        return f"FaultPlan(seed={self.seed}, active={active or 'none'})"
