"""Seeded, deterministic fault injection for the monitoring pipeline.

Declare a scenario as a :class:`FaultPlan` (one seed, per-layer specs),
then wrap each pipeline layer:

* bus — construct a :class:`ChaosBroker` in place of the plain broker;
* archive — ``archive.db = plan.wrap_database(archive.db)``;
* engines — pass ``plan.engine_injector()`` to ``DAGManRun(faults=...)``
  or ``Scheduler(fault_injector=...)``.

Every injected fault is tallied in ``plan.stats``; the resilience layer
(:mod:`repro.bus.reliable`, :mod:`repro.util.retry`,
:mod:`repro.loader.dlq`, :mod:`repro.loader.spill`) is what makes the
archive come out row-for-row identical anyway — see docs/resilience.md.
"""
from repro.faults.archive import ArchiveFaultInjector, ChaosDatabase
from repro.faults.bus import BusFaultInjector, ChaosBroker, ChaosConsumer
from repro.faults.engine import EngineFaultInjector, FaultDecision
from repro.faults.plan import (
    ArchiveFaultSpec,
    BusFaultSpec,
    EngineFaultSpec,
    FaultPlan,
    FaultPlanError,
    FaultStats,
)

__all__ = [
    "ArchiveFaultInjector",
    "ArchiveFaultSpec",
    "BusFaultInjector",
    "BusFaultSpec",
    "ChaosBroker",
    "ChaosConsumer",
    "ChaosDatabase",
    "EngineFaultInjector",
    "EngineFaultSpec",
    "FaultDecision",
    "FaultPlan",
    "FaultPlanError",
    "FaultStats",
]
