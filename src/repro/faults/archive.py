"""Archive-layer chaos: injected transient failures on write transactions.

:class:`ChaosDatabase` wraps any :class:`~repro.orm.database.Database`
and makes chosen write-transaction *attempts* fail with
``sqlite3.OperationalError('database is locked')`` — raised at
transaction entry, which is precisely where real SQLite lock contention
surfaces (``BEGIN IMMEDIATE`` cannot take the write lock).  Failing
before any statement runs also keeps the no-rollback
:class:`~repro.orm.database.MemoryDatabase` consistent, so the chaos
suite runs on either backend.

The loader's retry policy treats the injected error as transient (it is
in ``TRANSIENT_ERRORS``), backs off, and replays the batch — which is
the recovery path the chaos suite asserts.
"""
from __future__ import annotations

import random
import sqlite3
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.faults.plan import ArchiveFaultSpec, FaultStats

__all__ = ["ArchiveFaultInjector", "ChaosDatabase"]


class ArchiveFaultInjector:
    """Counts outermost write-transaction attempts and fails the chosen ones."""

    def __init__(
        self,
        spec: ArchiveFaultSpec,
        rng: random.Random,
        stats: FaultStats,
        gate: Optional[Callable[[], bool]] = None,
    ):
        self.spec = spec
        self.rng = rng
        self.stats = stats
        #: plan arm switch; attempts count even while disarmed (see
        #: BusFaultInjector.gate)
        self.gate = gate
        self.attempts = 0

    def on_transaction(self) -> None:
        self.attempts += 1
        if self.gate is not None and not self.gate():
            return
        fail = self.attempts in self.spec.fail_transactions
        if not fail and self.spec.error_rate:
            fail = self.rng.random() < self.spec.error_rate
        if fail:
            self.stats.archive_faults += 1
            raise sqlite3.OperationalError(
                f"database is locked [injected, attempt {self.attempts}]"
            )


class ChaosDatabase:
    """Transparent Database proxy with fault-injected transactions.

    Everything except :meth:`transaction` delegates to the wrapped
    backend.  Nested transactions join the outermost one (mirroring the
    backends' semantics), so only outermost entries count as attempts —
    the unit the loader retries.
    """

    def __init__(self, inner, injector: ArchiveFaultInjector):
        self._inner = inner
        self._injector = injector
        self._depth = 0
        # the injected error must be retryable even over a backend (like
        # MemoryDatabase) that never raises it on its own
        self.TRANSIENT_ERRORS = tuple(
            dict.fromkeys(
                tuple(inner.TRANSIENT_ERRORS) + (sqlite3.OperationalError,)
            )
        )

    @contextmanager
    def transaction(self) -> Iterator["ChaosDatabase"]:
        outermost = self._depth == 0
        self._depth += 1
        try:
            if outermost:
                self._injector.on_transaction()
            with self._inner.transaction():
                yield self
        finally:
            self._depth -= 1

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f"ChaosDatabase({self._inner!r})"
