"""Bus-layer chaos: a broker whose network misbehaves on schedule.

:class:`ChaosBroker` is a drop-in :class:`~repro.bus.broker.Broker` whose
deliveries suffer the faults a real AMQP deployment sees, within AMQP
semantics so the resilience layer can win:

* **drop** — the delivery is nacked back to the queue un-acked, so the
  broker redelivers it (``redelivered=True``); nothing is ever lost,
  which is exactly what at-least-once promises;
* **duplicate** — a published message fans out twice; the consumer-side
  :class:`~repro.bus.reliable.Resequencer` spots the repeated sequence
  stamp;
* **reorder** / **delay** — a delivery is held back a few polls so later
  messages overtake it; the resequencer restores publish order;
* **disconnect** — after the n-th delivery the consumer's connection is
  severed: in-flight messages requeue and every further operation raises
  :class:`~repro.bus.broker.ConnectionLostError` until the client
  re-subscribes.

All fault state lives in one :class:`BusFaultInjector` shared across
reconnects (obtained from the plan), so a scripted disconnect schedule
keeps counting across consumer generations and one seed replays the
exact same chaos.
"""
from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.bus.broker import (
    DEAD_LETTER_QUEUE,
    DEFAULT_EXCHANGE,
    DEFAULT_POLL_TIMEOUT,
    Broker,
    ConnectionLostError,
    Consumer,
)
from repro.bus.queues import Message
from repro.faults.plan import BusFaultSpec, FaultPlan, FaultStats

__all__ = ["BusFaultInjector", "ChaosBroker", "ChaosConsumer"]


class BusFaultInjector:
    """Seeded decision-maker for one plan's bus faults.

    Owns the delivery/poll counters, the holdback buffer (reordered and
    delayed deliveries waiting to be released), and the remaining
    scripted disconnect ordinals.  Shared by every :class:`ChaosConsumer`
    the broker hands out, so state survives reconnects.
    """

    def __init__(
        self,
        spec: BusFaultSpec,
        rng: random.Random,
        stats: FaultStats,
        gate: Optional[Callable[[], bool]] = None,
    ):
        self.spec = spec
        self.rng = rng
        self.stats = stats
        #: when set, faults only fire while gate() is true (the plan's
        #: arm switch); counters keep running either way so ordinal
        #: schedules stay anchored to the start of the run
        self.gate = gate
        self.polls = 0
        self.deliveries = 0
        self._disconnects_due = sorted(spec.disconnect_after)
        # (release-at-poll, message) for held-back deliveries
        self._holdback: List[Tuple[int, Message]] = []

    @property
    def armed(self) -> bool:
        return self.gate is None or self.gate()

    # -- publish side ---------------------------------------------------------
    def should_duplicate(self) -> bool:
        if not self.spec.duplicate or not self.armed:
            return False
        if self.rng.random() >= self.spec.duplicate:
            return False
        self.stats.messages_duplicated += 1
        return True

    # -- consume side ---------------------------------------------------------
    def poll(self) -> None:
        self.polls += 1

    def due_disconnect(self) -> bool:
        if not (
            self.armed
            and self._disconnects_due
            and self.deliveries >= self._disconnects_due[0]
        ):
            return False
        self._disconnects_due.pop(0)
        self.stats.disconnects += 1
        return True

    def classify(self, msg: Message) -> str:
        """Roll this delivery's fate: 'deliver', 'drop', or 'hold'."""
        self.deliveries += 1
        if not self.armed:
            return "deliver"
        spec, rng = self.spec, self.rng
        # a redelivery is never dropped again: the first drop already
        # proved the loss path, and re-rolling forever would turn a high
        # drop rate into livelock
        if spec.drop and not msg.redelivered and rng.random() < spec.drop:
            self.stats.messages_dropped += 1
            return "drop"
        if spec.reorder and rng.random() < spec.reorder:
            self.stats.messages_reordered += 1
            self._hold(msg, rng.randint(1, spec.reorder_depth))
            return "hold"
        if spec.delay and rng.random() < spec.delay:
            self.stats.messages_delayed += 1
            self._hold(msg, spec.delay_polls)
            return "hold"
        return "deliver"

    def _hold(self, msg: Message, polls_from_now: int) -> None:
        self._holdback.append((self.polls + polls_from_now, msg))

    def pop_due(self) -> Optional[Message]:
        for i, (due, msg) in enumerate(self._holdback):
            if due <= self.polls:
                self._holdback.pop(i)
                return msg
        return None

    def pop_any(self) -> Optional[Message]:
        """Release the oldest holdback even if not due (end-of-stream)."""
        if not self._holdback:
            return None
        return self._holdback.pop(0)[1]

    def clear_holdback(self) -> int:
        """Forget held deliveries (their queue requeues them on disconnect)."""
        dropped = len(self._holdback)
        self._holdback = []
        return dropped


class ChaosConsumer(Consumer):
    """A consumer whose deliveries pass through the fault injector."""

    def __init__(self, broker: Broker, queue, injector: BusFaultInjector):
        super().__init__(broker, queue)
        self._injector = injector

    def get(
        self,
        timeout: Optional[float] = DEFAULT_POLL_TIMEOUT,
        auto_ack: bool = True,
    ) -> Optional[Message]:
        inj = self._injector
        while True:
            self._check_connected()
            if inj.due_disconnect():
                inj.clear_holdback()
                self.disconnect()
                raise ConnectionLostError(
                    f"injected connection loss on queue {self.queue_name!r}"
                )
            inj.poll()
            msg = inj.pop_due()
            if msg is None:
                fresh = self._queue.get(timeout=timeout)
                if fresh is None:
                    # queue empty: flush the holdback rather than strand
                    # deliveries behind polls that will never come
                    msg = inj.pop_any()
                    if msg is None:
                        return None
                else:
                    fate = inj.classify(fresh)
                    if fate == "drop":
                        # lost on the wire: never acked, so the queue
                        # redelivers it (flagged redelivered)
                        self._queue.nack(fresh.delivery_tag, requeue=True)
                        continue
                    if fate == "hold":
                        continue
                    msg = fresh
            if auto_ack:
                self._queue.ack(msg.delivery_tag)
            return msg


class ChaosBroker(Broker):
    """Broker applying a :class:`~repro.faults.plan.FaultPlan`'s bus spec.

    Construct it in place of a plain :class:`Broker`; publishes may
    duplicate and every consumer it hands out is a :class:`ChaosConsumer`.
    """

    def __init__(
        self,
        plan: FaultPlan,
        dead_letter_queue: Optional[str] = DEAD_LETTER_QUEUE,
    ):
        super().__init__(dead_letter_queue=dead_letter_queue)
        self.plan = plan
        self._injector = plan.bus_injector()

    def publish(self, routing_key, body, exchange=DEFAULT_EXCHANGE, headers=None):
        delivered = super().publish(
            routing_key, body, exchange=exchange, headers=headers
        )
        if delivered and self._injector.should_duplicate():
            super().publish(routing_key, body, exchange=exchange, headers=headers)
        return delivered

    def subscribe(self, *args, **kwargs) -> Consumer:
        consumer = super().subscribe(*args, **kwargs)
        return ChaosConsumer(
            self, self.queue(consumer.queue_name), self._injector
        )

    def join_group(self, *args, **kwargs):
        """Group members share the same injector, so drops/reorders/
        scripted disconnects hit partitioned deliveries too.

        Note that publish-side *duplicates* are absorbed by the group
        router's per-publisher high-water mark before they reach a
        partition queue — that dedupe is part of the contract under
        test, not a gap in the chaos.
        """
        member = super().join_group(*args, **kwargs)
        member.fault_injector = self._injector
        return member
