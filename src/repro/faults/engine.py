"""Engine-layer chaos: crashing and hanging task attempts.

Both engines consult an :class:`EngineFaultInjector` at the moment an
attempt executes:

* :class:`~repro.pegasus.dagman.DAGManRun` asks per *(exec job id,
  attempt ordinal)* — an injected **crash** forces the attempt down the
  normal failure path (non-zero exit, POST_SCRIPT_FAILURE, DAGMan retry
  up to ``max_retries``), and a **hang** stretches the attempt by the
  plan's ``hang_seconds`` of simulated time before it completes;
* :class:`~repro.triana.scheduler.Scheduler` asks per *(task name,
  invocation ordinal)* — a crash becomes a unit error (ERROR state in
  the Triana lifecycle), a hang inflates the invocation duration.

Faults ride the engines' existing failure machinery rather than
bypassing it, so every injected crash produces the full, lintable
Stampede event lifecycle a real failure would.
"""
from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.faults.plan import EngineFaultSpec, FaultStats

__all__ = ["FaultDecision", "EngineFaultInjector"]

#: exit code injected crashes report (SIGKILL-style, distinct from the
#: engines' organic exit 1 so post-mortems can tell them apart)
INJECTED_EXITCODE = 137


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one attempt."""

    crash: bool = False
    hang_seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.crash and not self.hang_seconds


_NO_FAULT = FaultDecision()


class EngineFaultInjector:
    """Decides, per attempt, whether an engine task crashes or hangs."""

    def __init__(
        self,
        spec: EngineFaultSpec,
        rng: random.Random,
        stats: FaultStats,
        gate: Optional[Callable[[], bool]] = None,
    ):
        self.spec = spec
        self.rng = rng
        self.stats = stats
        #: plan arm switch (see BusFaultInjector.gate)
        self.gate = gate

    def attempt(self, name: str, attempt: int) -> FaultDecision:
        """Fault decision for attempt ``attempt`` (1-based) of ``name``."""
        spec = self.spec
        if not spec.active:
            return _NO_FAULT
        if self.gate is not None and not self.gate():
            return _NO_FAULT
        crash = attempt in spec.crash.get(name, ())
        hang = attempt in spec.hang.get(name, ())
        if not crash and spec.crash_rate:
            crash = self.rng.random() < spec.crash_rate
        if not hang and spec.hang_rate:
            hang = self.rng.random() < spec.hang_rate
        if crash:
            self.stats.engine_crashes += 1
        if hang:
            self.stats.engine_hangs += 1
        return FaultDecision(
            crash=crash, hang_seconds=spec.hang_seconds if hang else 0.0
        )

    # Triana counts invocations where DAGMan counts attempts; same decision
    invocation_fault = attempt
