"""Triana-style workflow engine: units, task graphs, scheduler, Stampede
logging, SHIWA bundles and the TrianaCloud distributed substrate."""
from repro.triana.appender import (
    AppenderRegistry,
    LogFileAppender,
    MemoryAppender,
    RabbitAppender,
    default_registry,
)
from repro.triana.bundles import BundleError, WorkflowBundle, register_unit_codec
from repro.triana.cloud import (
    BundleRun,
    CloudJoinUnit,
    CloudNode,
    SubmitBundleUnit,
    TrianaCloudBroker,
)
from repro.triana.execution import (
    EventEmitter,
    ExecutionEvent,
    ExecutionState,
)
from repro.triana.scheduler import (
    InvocationRecord,
    RunnableInstance,
    Scheduler,
    SchedulerReport,
)
from repro.triana.stampede_log import StampedeLog
from repro.triana.subworkflow import SubWorkflowUnit, attach_subworkflows
from repro.triana.taskgraph import Cable, Task, TaskGraph
from repro.triana.taskgraph_xml import (
    parse_taskgraph_xml,
    read_taskgraph,
    taskgraph_to_xml,
    write_taskgraph,
)
from repro.triana.unit import (
    CallableUnit,
    ConstantUnit,
    ExecUnit,
    FailingUnit,
    GatherUnit,
    SplitterUnit,
    StreamSourceUnit,
    ThresholdSinkUnit,
    Unit,
    UnitError,
    ZipperUnit,
)

__all__ = [
    "AppenderRegistry",
    "LogFileAppender",
    "MemoryAppender",
    "RabbitAppender",
    "default_registry",
    "BundleError",
    "WorkflowBundle",
    "register_unit_codec",
    "BundleRun",
    "CloudJoinUnit",
    "CloudNode",
    "SubmitBundleUnit",
    "TrianaCloudBroker",
    "EventEmitter",
    "ExecutionEvent",
    "ExecutionState",
    "InvocationRecord",
    "RunnableInstance",
    "Scheduler",
    "SchedulerReport",
    "StampedeLog",
    "SubWorkflowUnit",
    "attach_subworkflows",
    "Cable",
    "Task",
    "TaskGraph",
    "parse_taskgraph_xml",
    "read_taskgraph",
    "taskgraph_to_xml",
    "write_taskgraph",
    "CallableUnit",
    "ConstantUnit",
    "ExecUnit",
    "FailingUnit",
    "GatherUnit",
    "SplitterUnit",
    "StreamSourceUnit",
    "ThresholdSinkUnit",
    "Unit",
    "UnitError",
    "ZipperUnit",
]
