"""SHIWA-style workflow bundles (paper §V-D, §VI).

A bundle is a self-contained, serializable description of a sub-workflow
plus its concretized input parameters — "input variables or command line
arguments can be defined in advance of distribution".  Bundles are what
the root workflow POSTs to the TrianaCloud broker; because they cross a
(simulated) network boundary they serialize to plain JSON-compatible
dicts, via a registry of serializable unit types.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import (
    ConstantUnit,
    ExecUnit,
    GatherUnit,
    SplitterUnit,
    Unit,
    ZipperUnit,
)

__all__ = ["BundleError", "WorkflowBundle", "UNIT_CODECS", "register_unit_codec"]


class BundleError(ValueError):
    """A graph cannot be (de)serialized as a bundle."""


# unit type name -> (serialize(unit) -> kwargs, deserialize(name, kwargs) -> Unit)
UNIT_CODECS: Dict[str, Tuple[Callable[[Unit], dict], Callable[[str, dict], Unit]]] = {}


def register_unit_codec(
    type_name: str,
    unit_cls: type,
    serialize: Callable[[Unit], dict],
    deserialize: Callable[[str, dict], Unit],
) -> None:
    UNIT_CODECS[type_name] = (serialize, deserialize)
    _CLS_TO_NAME[unit_cls] = type_name


_CLS_TO_NAME: Dict[type, str] = {}

register_unit_codec(
    "constant",
    ConstantUnit,
    lambda u: {"value": u.value},
    lambda name, kw: ConstantUnit(name, kw["value"]),
)
register_unit_codec(
    "splitter",
    SplitterUnit,
    lambda u: {"chunk_size": u.chunk_size},
    lambda name, kw: SplitterUnit(name, kw["chunk_size"]),
)
register_unit_codec(
    "gather",
    GatherUnit,
    lambda u: {},
    lambda name, kw: GatherUnit(name),
)
register_unit_codec(
    "zipper",
    ZipperUnit,
    lambda u: {},
    lambda name, kw: ZipperUnit(name),
)
register_unit_codec(
    "exec",
    ExecUnit,
    lambda u: {
        "argv": u.argv,
        "base_seconds": u.base_seconds,
        "noise_sigma": u.noise_sigma,
    },
    lambda name, kw: ExecUnit(
        name,
        kw["argv"],
        base_seconds=kw.get("base_seconds", 60.0),
        noise_sigma=kw.get("noise_sigma", 0.12),
    ),
)


@dataclass
class WorkflowBundle:
    """One executable bundle: a serialized sub-workflow + metadata."""

    name: str
    graph_spec: dict
    parent_xwf_id: Optional[str] = None
    root_xwf_id: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_graph(
        cls,
        graph: TaskGraph,
        parent_xwf_id: Optional[str] = None,
        root_xwf_id: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> "WorkflowBundle":
        """Serialize a task graph into a bundle (graph must use codec'd units)."""
        tasks = []
        for task in graph.tasks():
            type_name = _CLS_TO_NAME.get(type(task.unit))
            if type_name is None:
                raise BundleError(
                    f"unit {task.unit!r} of type {type(task.unit).__name__} "
                    "has no registered codec; cannot bundle"
                )
            serialize, _ = UNIT_CODECS[type_name]
            tasks.append(
                {"name": task.name, "type": type_name, "kwargs": serialize(task.unit)}
            )
        spec = {
            "name": graph.name,
            "tasks": tasks,
            "edges": [[p, c] for p, c in graph.edges()],
        }
        return cls(
            name=graph.name,
            graph_spec=spec,
            parent_xwf_id=parent_xwf_id,
            root_xwf_id=root_xwf_id,
            params=dict(params or {}),
        )

    def to_graph(self) -> TaskGraph:
        """Reconstruct the executable task graph on the receiving node."""
        spec = self.graph_spec
        graph = TaskGraph(spec["name"])
        tasks = {}
        for tspec in spec["tasks"]:
            type_name = tspec["type"]
            if type_name not in UNIT_CODECS:
                raise BundleError(f"unknown unit type {type_name!r} in bundle")
            _, deserialize = UNIT_CODECS[type_name]
            unit = deserialize(tspec["name"], tspec["kwargs"])
            tasks[tspec["name"]] = graph.add(unit)
        for parent, child in spec["edges"]:
            graph.connect(tasks[parent], tasks[child])
        return graph

    # -- wire format ---------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "graph_spec": self.graph_spec,
                "parent_xwf_id": self.parent_xwf_id,
                "root_xwf_id": self.root_xwf_id,
                "params": self.params,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "WorkflowBundle":
        data = json.loads(text)
        return cls(
            name=data["name"],
            graph_spec=data["graph_spec"],
            parent_xwf_id=data.get("parent_xwf_id"),
            root_xwf_id=data.get("root_xwf_id"),
            params=data.get("params", {}),
        )

    @property
    def task_count(self) -> int:
        return len(self.graph_spec["tasks"])
