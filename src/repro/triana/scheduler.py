"""The Triana scheduler: runs task graphs on the virtual clock.

Responsibilities (paper Fig. 5): *Runnable Instances* control the running
of a task unit while the Scheduler controls the start/stop/reset events of
a task-graph lifecycle.  Listeners (the StampedeLog among them) receive
:class:`~repro.triana.execution.ExecutionEvent` transitions plus
:class:`InvocationRecord` completions.

Two execution modes (paper §V-A):

* **single-step** — each component is scheduled to be executed once, like
  a DAG; the graph must be acyclic.
* **continuous** — components wait for data repeatedly until released by a
  local condition (source exhaustion or an explicit stop), so a job can
  accumulate multiple invocations.

Timing model: when a task's inputs become available it is *submitted*
(``SCHEDULED`` + submit event).  It starts executing once a concurrency
slot is free, after a small scheduling overhead; the gap is the job's
queue time.  ``max_concurrent`` models the per-node task limit ("run 4 at
a time on the compute node").
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

import numpy as np

from repro.triana.execution import EventEmitter, ExecutionEvent, ExecutionState
from repro.triana.taskgraph import Task, TaskGraph
from repro.triana.unit import StreamSourceUnit, UnitError
from repro.util.simclock import SimClock

__all__ = ["InvocationRecord", "RunnableInstance", "Scheduler", "SchedulerReport"]


@dataclass(frozen=True)
class InvocationRecord:
    """One completed process() call of a unit."""

    task_name: str
    transformation: str
    inv_seq: int  # 1-based invocation number within the task's instance
    start_time: float
    duration: float
    exitcode: int
    error_text: str = ""
    argv: str = ""


@dataclass
class SchedulerReport:
    """Outcome of one graph run."""

    completed: int = 0
    errored: int = 0
    aborted: int = 0
    invocations: int = 0
    wall_time: float = 0.0
    final_state: ExecutionState = ExecutionState.NOT_INITIALIZED

    @property
    def ok(self) -> bool:
        return self.errored == 0 and self.aborted == 0


class RunnableInstance:
    """Controls the running of one task unit (one Stampede job instance)."""

    def __init__(self, task: Task):
        self.task = task
        self.emitter = EventEmitter(task.name)
        self.invocations = 0
        self.submitted = False
        self.running_invocation = False
        self.finished_inputs = False  # continuous: upstream exhausted
        self.last_result: Any = None

    @property
    def state(self) -> ExecutionState:
        return self.emitter.state


class Scheduler:
    """Executes a TaskGraph on a SimClock, emitting execution events."""

    SCHEDULING_OVERHEAD = 0.05  # seconds between submit and start, unloaded

    def __init__(
        self,
        graph: TaskGraph,
        clock: Optional[SimClock] = None,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
        mode: str = "single-step",
        max_concurrent: Optional[int] = None,
        fault_injector=None,
    ):
        if mode not in ("single-step", "continuous"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "single-step" and not graph.is_dag():
            raise ValueError(
                f"graph {graph.name!r} contains a loop; single-step requires a DAG"
            )
        self.graph = graph
        self.clock = clock if clock is not None else SimClock()
        self.rng = rng if rng is not None else np.random.Generator(np.random.PCG64(seed))
        self.mode = mode
        self.max_concurrent = max_concurrent
        #: optional EngineFaultInjector (repro.faults): consulted per
        #: (task name, invocation) to crash or hang units on demand
        self.fault_injector = fault_injector
        self.graph_emitter = EventEmitter(graph.name, is_graph=True)
        self.instances: Dict[str, RunnableInstance] = {
            t.name: RunnableInstance(t) for t in graph.tasks()
        }
        self.results: Dict[str, Any] = {}
        self._running = 0
        self._ready_queue: Deque[RunnableInstance] = deque()
        self._external_pending: Dict[str, Any] = {}
        self._stopped = False
        self._paused = False
        self._released = False  # a local condition ended the streaming run
        self._exec_listeners: List[Callable[[ExecutionEvent], None]] = []
        self._inv_listeners: List[Callable[[InvocationRecord], None]] = []
        self.report = SchedulerReport()

    # -- listener plumbing -----------------------------------------------------
    def add_execution_listener(self, listener: Callable[[ExecutionEvent], None]) -> None:
        self._exec_listeners.append(listener)
        self.graph_emitter.add_listener(listener)
        for instance in self.instances.values():
            instance.emitter.add_listener(listener)

    def add_invocation_listener(
        self, listener: Callable[[InvocationRecord], None]
    ) -> None:
        self._inv_listeners.append(listener)

    def _emit_invocation(self, record: InvocationRecord) -> None:
        self.report.invocations += 1
        for listener in self._inv_listeners:
            listener(record)

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Begin the run: wake the graph and submit source tasks."""
        start_time = self.clock.now
        self.graph_emitter.transition(ExecutionState.SCHEDULED, self.clock.now)
        self.graph_emitter.transition(ExecutionState.RUNNING, self.clock.now)
        self.report.wall_time = -start_time  # finalized at completion
        for instance in self.instances.values():
            instance.emitter.transition(ExecutionState.SCHEDULED, self.clock.now)
        self._pump()

    def run(self) -> SchedulerReport:
        """Run to completion (or stop/error) and return the report."""
        self.start()
        self.clock.run()
        return self.finalize()

    def finalize(self) -> SchedulerReport:
        """Close out the run after the clock has drained (used directly by
        drivers that share one clock across several schedulers)."""
        self._finalize()
        return self.report

    def pause(self) -> None:
        """The GUI pause: eligible-but-not-running tasks go PAUSED."""
        self._paused = True
        for instance in self.instances.values():
            if instance.state is ExecutionState.SCHEDULED:
                instance.emitter.transition(ExecutionState.PAUSED, self.clock.now)

    def resume(self) -> None:
        self._paused = False
        for instance in self.instances.values():
            if instance.state is ExecutionState.PAUSED:
                instance.emitter.transition(
                    ExecutionState.RUNNING, self.clock.now, detail="resumed"
                )
                # resumed tasks are eligible again; re-queue if inputs ready
                instance.emitter.state = ExecutionState.SCHEDULED
        self._pump()

    def stop(self) -> None:
        """The GUI stop button: abort every unfinished task."""
        self._stopped = True
        for instance in self.instances.values():
            if instance.state in (
                ExecutionState.SCHEDULED,
                ExecutionState.RUNNING,
                ExecutionState.PAUSED,
            ):
                instance.emitter.transition(
                    ExecutionState.SUSPENDED, self.clock.now, detail="user stop"
                )
                self.report.aborted += 1
        if self.graph_emitter.state is ExecutionState.RUNNING:
            self.graph_emitter.transition(
                ExecutionState.SUSPENDED, self.clock.now, detail="user stop"
            )

    # -- engine --------------------------------------------------------------------
    def _pump(self) -> None:
        """Submit newly-eligible tasks and start queued ones while slots free."""
        if self._stopped or self._paused or self._released:
            return
        for instance in self.instances.values():
            if instance.state is not ExecutionState.SCHEDULED:
                continue
            if instance.running_invocation or instance.submitted:
                continue
            task = instance.task
            if task.is_source:
                eligible = instance.invocations == 0 or self.mode == "continuous"
            else:
                eligible = task.inputs_ready()
            if eligible and not self._source_exhausted(instance):
                instance.submitted = True
                self._ready_queue.append(instance)
        while self._ready_queue and (
            self.max_concurrent is None or self._running < self.max_concurrent
        ):
            instance = self._ready_queue.popleft()
            self._start_invocation(instance)

    def _source_exhausted(self, instance: RunnableInstance) -> bool:
        unit = instance.task.unit
        if isinstance(unit, StreamSourceUnit):
            return unit.exhausted
        # ordinary sources fire once
        return instance.task.is_source and instance.invocations > 0

    def _start_invocation(self, instance: RunnableInstance) -> None:
        task = instance.task
        self._running += 1
        overhead = self.SCHEDULING_OVERHEAD * (0.5 + self.rng.random())
        self.clock.schedule(overhead, lambda: self._execute(instance))

    def _execute(self, instance: RunnableInstance) -> None:
        if self._stopped or instance.state not in (
            ExecutionState.SCHEDULED,
            ExecutionState.RUNNING,
        ):
            self._running -= 1
            return
        task = instance.task
        if instance.state is ExecutionState.SCHEDULED:
            instance.emitter.transition(ExecutionState.RUNNING, self.clock.now)
        instance.running_invocation = True
        instance.invocations += 1
        inputs = task.take_inputs() if not task.is_source else []
        start = self.clock.now
        error_text = ""
        exitcode = 0
        result: Any = None
        try:
            result = task.unit.process(inputs)
        except UnitError as exc:
            exitcode = 1
            error_text = str(exc)
        except Exception as exc:  # unit bug: also an ERROR state in Triana
            exitcode = 1
            error_text = f"{type(exc).__name__}: {exc}"
        hang_extra = 0.0
        if self.fault_injector is not None and exitcode == 0:
            # injected faults ride the unit-error path so they produce the
            # same ERROR-state lifecycle an organic failure would
            decision = self.fault_injector.invocation_fault(
                task.name, instance.invocations
            )
            if decision.crash:
                exitcode = 1
                error_text = "injected fault: unit crashed"
            hang_extra = decision.hang_seconds
        if getattr(task.unit, "external", False) and exitcode == 0:
            # Externally-completed unit (e.g. waiting on the TrianaCloud
            # broker): someone must call complete_external() later.
            self._external_pending[task.name] = (instance, result, start)
            return
        duration = float(task.unit.duration(inputs, self.rng)) + hang_extra
        self.clock.schedule(
            duration,
            lambda: self._complete(instance, result, exitcode, error_text, start, duration),
        )

    def complete_external(
        self, task_name: str, result: Any = None, exitcode: int = 0,
        error_text: str = "",
    ) -> None:
        """Finish an external unit's in-flight invocation at the current time."""
        instance, started_result, start = self._external_pending.pop(task_name)
        final = result if result is not None else started_result
        self._complete(
            instance, final, exitcode, error_text, start, self.clock.now - start
        )

    def _complete(
        self,
        instance: RunnableInstance,
        result: Any,
        exitcode: int,
        error_text: str,
        start: float,
        duration: float,
    ) -> None:
        task = instance.task
        instance.running_invocation = False
        instance.submitted = False
        self._running -= 1
        argv = " ".join(getattr(task.unit, "argv", []) or [])
        self._emit_invocation(
            InvocationRecord(
                task_name=task.name,
                transformation=task.unit.transformation,
                inv_seq=instance.invocations,
                start_time=start,
                duration=duration,
                exitcode=exitcode,
                error_text=error_text,
                argv=argv,
            )
        )
        if exitcode != 0:
            instance.emitter.transition(
                ExecutionState.ERROR, self.clock.now, detail=error_text
            )
            self.report.errored += 1
            self._maybe_finish_graph()
            self._pump()
            return
        stop_sentinel = (
            isinstance(task.unit, StreamSourceUnit) and result is StreamSourceUnit.STOP
        )
        if not stop_sentinel:
            instance.last_result = result
            self.results[task.name] = result
            task.broadcast(result)
        done = self._task_done(instance) or self._released
        if done:
            instance.emitter.transition(ExecutionState.COMPLETE, self.clock.now)
            self.report.completed += 1
        else:
            # continuous mode: stays RUNNING, but is re-eligible; flip back
            # to SCHEDULED silently so _pump resubmits it on next data.
            instance.emitter.state = ExecutionState.SCHEDULED
        # any unit exposing a truthy `satisfied` attribute releases the
        # workflow in continuous mode (Triana's "local condition")
        if getattr(task.unit, "satisfied", False) and self.mode == "continuous":
            self._release_all()
        self._maybe_finish_graph()
        self._pump()

    def _task_done(self, instance: RunnableInstance) -> bool:
        if self.mode == "single-step":
            return True
        task = instance.task
        unit = task.unit
        if isinstance(unit, StreamSourceUnit):
            return unit.exhausted
        if task.is_source:
            return True
        # a continuous task is done when upstream tasks are finished and no
        # buffered data remains on its input cables
        upstream_done = all(
            self.instances[c.source.name].state
            in (ExecutionState.COMPLETE, ExecutionState.ERROR, ExecutionState.SUSPENDED)
            for c in task.in_cables
        )
        return upstream_done and not task.inputs_ready()

    def _release_all(self) -> None:
        """A local condition released the workflow (threshold reached).

        No new invocations start; in-flight ones finish and their tasks
        complete immediately after.
        """
        self._released = True
        for instance in self.instances.values():
            if instance.state in (ExecutionState.SCHEDULED, ExecutionState.RUNNING):
                if not instance.running_invocation:
                    instance.emitter.transition(
                        ExecutionState.COMPLETE, self.clock.now, detail="released"
                    )
                    self.report.completed += 1

    def _maybe_finish_graph(self) -> None:
        if self.graph_emitter.state is not ExecutionState.RUNNING:
            return
        states = [i.state for i in self.instances.values()]
        pending = [
            s
            for s in states
            if s in (ExecutionState.SCHEDULED, ExecutionState.RUNNING,
                     ExecutionState.PAUSED)
        ]
        if pending:
            # unfinished tasks may still be waiting on data that will never
            # arrive (an upstream error): treat those as unreachable
            if not self._progress_possible():
                self.graph_emitter.transition(
                    ExecutionState.ERROR, self.clock.now, detail="deadlocked by failure"
                )
            return
        if any(s is ExecutionState.ERROR for s in states):
            self.graph_emitter.transition(ExecutionState.ERROR, self.clock.now)
        elif any(s is ExecutionState.SUSPENDED for s in states):
            self.graph_emitter.transition(ExecutionState.SUSPENDED, self.clock.now)
        else:
            self.graph_emitter.transition(ExecutionState.COMPLETE, self.clock.now)

    def _progress_possible(self) -> bool:
        """Can any pending task still run (now or after running ones finish)?"""
        for instance in self.instances.values():
            if instance.running_invocation or instance.submitted:
                return True
            if instance.state is ExecutionState.SCHEDULED:
                task = instance.task
                if task.is_source and not self._source_exhausted(instance):
                    return True
                if task.inputs_ready():
                    return True
                # inputs could still arrive from live upstream tasks
                for cable in task.in_cables:
                    upstream = self.instances[cable.source.name]
                    if upstream.state in (
                        ExecutionState.SCHEDULED,
                        ExecutionState.RUNNING,
                        ExecutionState.PAUSED,
                    ):
                        return True
        return False

    def _finalize(self) -> None:
        self.report.wall_time += self.clock.now
        if self.graph_emitter.state is ExecutionState.RUNNING:
            # clock drained with tasks pending: deadlock (e.g. failed parent)
            self.graph_emitter.transition(
                ExecutionState.ERROR, self.clock.now, detail="no progress possible"
            )
        self.report.final_state = self.graph_emitter.state
