"""Triana task graphs: tasks wrapping units, connected by cables.

A task graph contains tasks, which may themselves be task graphs (the
sub-workflow nesting of paper Fig. 4).  Cables are FIFO queues between an
output port of one task and an input port of another; Triana graphs may
contain loops (used only in continuous mode — single-step requires a DAG).
"""
from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from repro.triana.unit import Unit
from repro.util.graph import DiGraph

__all__ = ["Cable", "Task", "TaskGraph"]


class Cable:
    """A data connection: FIFO from a source task to a sink task input."""

    def __init__(self, source: "Task", sink: "Task", sink_port: int):
        self.source = source
        self.sink = sink
        self.sink_port = sink_port
        self._queue: Deque[Any] = deque()

    def send(self, data: Any) -> None:
        self._queue.append(data)

    def has_data(self) -> bool:
        return bool(self._queue)

    def receive(self) -> Any:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"<Cable {self.source.name} -> {self.sink.name}[{self.sink_port}]>"


class Task:
    """A node of the task graph: one unit plus its cables."""

    def __init__(self, unit: Unit, name: Optional[str] = None):
        self.unit = unit
        self.name = name or unit.name
        self.in_cables: List[Cable] = []
        self.out_cables: List[Cable] = []
        self.graph: Optional["TaskGraph"] = None

    @property
    def is_source(self) -> bool:
        return not self.in_cables

    @property
    def is_sink(self) -> bool:
        return not self.out_cables

    def inputs_ready(self) -> bool:
        """True when every input cable holds at least one datum."""
        return all(c.has_data() for c in self.in_cables)

    def take_inputs(self) -> List[Any]:
        return [c.receive() for c in self.in_cables]

    def broadcast(self, data: Any) -> None:
        for cable in self.out_cables:
            cable.send(data)

    def __repr__(self) -> str:
        return f"<Task {self.name!r}>"


class TaskGraph:
    """A workflow: tasks + cables, possibly nested sub-graphs."""

    def __init__(self, name: str):
        self.name = name
        self._tasks: Dict[str, Task] = {}
        self.subgraphs: List["TaskGraph"] = []
        self.parent: Optional["TaskGraph"] = None

    # -- construction ------------------------------------------------------------
    def add(self, unit_or_task) -> Task:
        """Add a unit (auto-wrapped) or a prepared Task; returns the Task."""
        task = unit_or_task if isinstance(unit_or_task, Task) else Task(unit_or_task)
        if task.name in self._tasks:
            raise ValueError(f"duplicate task name {task.name!r} in {self.name!r}")
        task.graph = self
        self._tasks[task.name] = task
        return task

    def connect(self, source: Task, sink: Task, sink_port: Optional[int] = None) -> Cable:
        """Wire source's output to the next (or given) input port of sink."""
        for task in (source, sink):
            if task.graph is not self:
                raise ValueError(f"task {task.name!r} is not in graph {self.name!r}")
        port = sink_port if sink_port is not None else len(sink.in_cables)
        cable = Cable(source, sink, port)
        source.out_cables.append(cable)
        sink.in_cables.append(cable)
        return cable

    def add_subgraph(self, graph: "TaskGraph") -> None:
        graph.parent = self
        self.subgraphs.append(graph)

    # -- queries -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __getitem__(self, name: str) -> Task:
        return self._tasks[name]

    def tasks(self) -> List[Task]:
        return list(self._tasks.values())

    def cables(self) -> List[Cable]:
        seen: List[Cable] = []
        for task in self._tasks.values():
            seen.extend(task.out_cables)
        return seen

    def edges(self) -> List[Tuple[str, str]]:
        return [(c.source.name, c.sink.name) for c in self.cables()]

    def sources(self) -> List[Task]:
        return [t for t in self._tasks.values() if t.is_source]

    def sinks(self) -> List[Task]:
        return [t for t in self._tasks.values() if t.is_sink]

    def as_digraph(self) -> DiGraph:
        g = DiGraph()
        for name in self._tasks:
            g.add_node(name)
        for parent, child in self.edges():
            g.add_edge(parent, child)
        return g

    def is_dag(self) -> bool:
        return self.as_digraph().is_dag()

    def walk(self) -> Iterator["TaskGraph"]:
        """This graph and all nested sub-graphs, depth-first."""
        yield self
        for sub in self.subgraphs:
            yield from sub.walk()

    def __repr__(self) -> str:
        return f"<TaskGraph {self.name!r}: {len(self)} tasks, {len(self.cables())} cables>"
