"""Triana task-graph XML serialization.

Triana persists workflows as XML documents; the SHIWA bundles of §V-D
carry such files ("This set of workflow files is added to an existing
bundle file").  This module writes/parses a task-graph XML format built
on the same unit-codec registry the JSON bundles use, so any bundleable
graph is also XML-serializable::

    <taskgraph name="...">
      <tasks>
        <task name="exec0" type="dart_exec"> <param .../> </task>
      </tasks>
      <cables> <cable from="a" to="b"/> </cables>
      <subgraphs> ... nested taskgraph elements ... </subgraphs>
    </taskgraph>
"""
from __future__ import annotations

import json
import os
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.triana.bundles import _CLS_TO_NAME, UNIT_CODECS, BundleError
from repro.triana.taskgraph import TaskGraph

__all__ = ["taskgraph_to_xml", "parse_taskgraph_xml", "write_taskgraph",
           "read_taskgraph", "RawTask", "RawTaskGraph",
           "taskgraph_structure"]


def _graph_element(graph: TaskGraph) -> ET.Element:
    root = ET.Element("taskgraph", {"name": graph.name})
    tasks = ET.SubElement(root, "tasks")
    for task in graph.tasks():
        type_name = _CLS_TO_NAME.get(type(task.unit))
        if type_name is None:
            raise BundleError(
                f"unit {task.unit!r} has no registered codec; "
                "cannot serialize to XML"
            )
        serialize, _ = UNIT_CODECS[type_name]
        node = ET.SubElement(tasks, "task",
                             {"name": task.name, "type": type_name})
        for key, value in serialize(task.unit).items():
            param = ET.SubElement(node, "param", {"name": key})
            # JSON-encode values so lists/numbers survive untouched
            param.text = json.dumps(value)
    cables = ET.SubElement(root, "cables")
    for parent, child in graph.edges():
        ET.SubElement(cables, "cable", {"from": parent, "to": child})
    if graph.subgraphs:
        subs = ET.SubElement(root, "subgraphs")
        for sub in graph.subgraphs:
            subs.append(_graph_element(sub))
    return root


def taskgraph_to_xml(graph: TaskGraph) -> str:
    """Serialize a task graph (and nested sub-graphs) to XML text."""
    root = _graph_element(graph)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _parse_element(root: ET.Element) -> TaskGraph:
    if root.tag != "taskgraph":
        raise BundleError(f"not a taskgraph document: root {root.tag!r}")
    graph = TaskGraph(root.attrib["name"])
    tasks = {}
    tasks_el = root.find("tasks")
    for node in (tasks_el.findall("task") if tasks_el is not None else []):
        type_name = node.attrib["type"]
        if type_name not in UNIT_CODECS:
            raise BundleError(f"unknown unit type {type_name!r} in XML")
        _, deserialize = UNIT_CODECS[type_name]
        kwargs = {
            p.attrib["name"]: json.loads(p.text or "null")
            for p in node.findall("param")
        }
        tasks[node.attrib["name"]] = graph.add(
            deserialize(node.attrib["name"], kwargs)
        )
    cables_el = root.find("cables")
    for cable in (cables_el.findall("cable") if cables_el is not None else []):
        graph.connect(tasks[cable.attrib["from"]], tasks[cable.attrib["to"]])
    subs_el = root.find("subgraphs")
    for sub in (subs_el.findall("taskgraph") if subs_el is not None else []):
        graph.add_subgraph(_parse_element(sub))
    return graph


def parse_taskgraph_xml(text: str) -> TaskGraph:
    """Parse task-graph XML back into an executable TaskGraph."""
    return _parse_element(ET.fromstring(text))


@dataclass
class RawTask:
    """One ``<task>`` element as written, before codec resolution."""

    name: str
    type_name: str
    bad_params: List[str] = field(default_factory=list)  # non-JSON payloads
    line: int = 1


@dataclass
class RawTaskGraph:
    """Uninterpreted task-graph structure for analysis tools.

    :func:`parse_taskgraph_xml` instantiates units and wires cables, raising
    on the first unknown type or dangling cable ref; this raw form keeps
    every declaration (including broken ones) so ``stampede-lint`` can
    report them all, recursively over nested sub-graphs.
    """

    name: str
    tasks: List[RawTask] = field(default_factory=list)
    cables: List[Tuple[str, str, int]] = field(default_factory=list)  # from, to, line
    subgraphs: List["RawTaskGraph"] = field(default_factory=list)


def _line_of(text: str, token: str, seen: dict) -> int:
    """Line of the next unvisited occurrence of ``token`` (1-based)."""
    start = seen.get(token, 0)
    pos = text.find(token, start)
    if pos < 0:
        return 1
    seen[token] = pos + 1
    return text.count("\n", 0, pos) + 1


def _raw_element(root: ET.Element, text: str, seen: dict) -> RawTaskGraph:
    raw = RawTaskGraph(root.attrib.get("name", "unnamed"))
    tasks_el = root.find("tasks")
    for node in (tasks_el.findall("task") if tasks_el is not None else []):
        name = node.attrib.get("name", "")
        task = RawTask(
            name=name,
            type_name=node.attrib.get("type", ""),
            line=_line_of(text, f'name="{name}"', seen),
        )
        for param in node.findall("param"):
            try:
                json.loads(param.text or "null")
            except json.JSONDecodeError:
                task.bad_params.append(param.attrib.get("name", ""))
        raw.tasks.append(task)
    cables_el = root.find("cables")
    for cable in (cables_el.findall("cable") if cables_el is not None else []):
        src = cable.attrib.get("from", "")
        raw.cables.append(
            (src, cable.attrib.get("to", ""), _line_of(text, f'from="{src}"', seen))
        )
    subs_el = root.find("subgraphs")
    for sub in (subs_el.findall("taskgraph") if subs_el is not None else []):
        raw.subgraphs.append(_raw_element(sub, text, seen))
    return raw


def taskgraph_structure(source: Union[str, os.PathLike]) -> RawTaskGraph:
    """Extract the raw structure of a task-graph XML document (path or text).

    Raises ``xml.etree.ElementTree.ParseError`` on malformed XML and
    :class:`BundleError` when the root element is not ``<taskgraph>``; all
    structural problems are preserved in the returned object.
    """
    text = source
    if isinstance(source, (str, os.PathLike)) and os.path.exists(str(source)):
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    text = str(text)
    root = ET.fromstring(text)
    if root.tag != "taskgraph":
        raise BundleError(f"not a taskgraph document: root {root.tag!r}")
    return _raw_element(root, text, {})


def write_taskgraph(graph: TaskGraph, path: Union[str, os.PathLike]) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('<?xml version="1.0" encoding="UTF-8"?>\n')
        fh.write(taskgraph_to_xml(graph) + "\n")
    return str(path)


def read_taskgraph(path: Union[str, os.PathLike]) -> TaskGraph:
    with open(path, "r", encoding="utf-8") as fh:
        return parse_taskgraph_xml(fh.read())
