"""StampedeLog: maps Triana execution events to Stampede events (paper §V-B).

The Scheduler holds a StampedeLog object which listens for Triana
*Execution Events* and converts them to *Stampede Events*; it also creates
the events required for schema compliance that are not directly related to
Triana events, such as the mapping of tasks to units.

Mapping summary (paper §V-B):

* graph ``SCHEDULED``            → wf.plan + static section (task/job/edge/
                                   map events) + static.end
* graph ``RUNNING``              → xwf.start
* task ``SCHEDULED`` ("WOKEN")   → job_inst.submit.start / submit.end
* task ``RUNNING`` ← SCHEDULED   → job_inst.host.info + job_inst.main.start
* task ``RUNNING`` ← PAUSED      → job_inst.held.end
* task ``PAUSED``                → job_inst.held.start
* each unit process() completion → inv.start + inv.end (exit −1 on error)
* task ``COMPLETE`` / ``ERROR``  → job_inst.main.term + main.end
* task ``SUSPENDED``             → job_inst.abort.info
* graph terminal state           → xwf.end

Because Triana has no planning stage, tasks map one-to-one onto jobs.
"""
from __future__ import annotations

from typing import Dict, Optional

from repro.bus.client import EventSink
from repro.netlogger.events import NLEvent
from repro.schema.stampede import Events, FAILURE, SUCCESS
from repro.triana.execution import ExecutionEvent, ExecutionState
from repro.triana.scheduler import InvocationRecord, Scheduler

__all__ = ["StampedeLog"]


class StampedeLog:
    """Attaches to a Scheduler and emits the Stampede event stream."""

    def __init__(
        self,
        scheduler: Scheduler,
        sink: EventSink,
        xwf_id: str,
        parent_xwf_id: Optional[str] = None,
        root_xwf_id: Optional[str] = None,
        site: str = "local",
        hostname: str = "localhost",
        user: str = "triana",
        submit_dir: str = "/triana/runs",
        planner_version: str = "triana-4.0-stampede",
    ):
        self.scheduler = scheduler
        self.sink = sink
        self.xwf_id = xwf_id
        self.parent_xwf_id = parent_xwf_id
        self.root_xwf_id = root_xwf_id or xwf_id
        self.site = site
        self.hostname = hostname
        self.user = user
        self.submit_dir = submit_dir
        self.planner_version = planner_version
        self.events_emitted = 0
        self._js_seq: Dict[str, int] = {}  # task -> next jobstate seq
        self._durations: Dict[str, float] = {}  # task -> cumulative inv dur
        self._exitcodes: Dict[str, int] = {}  # task -> worst invocation exit
        self._stderr: Dict[str, str] = {}
        scheduler.add_execution_listener(self._on_execution_event)
        scheduler.add_invocation_listener(self._on_invocation)

    # -- emission helpers ----------------------------------------------------
    def _emit(self, name: str, ts: float, **attrs) -> None:
        attrs["xwf.id"] = self.xwf_id
        self.sink.emit(NLEvent(name, ts, attrs))
        self.events_emitted += 1

    def _next_js(self, task_name: str) -> int:
        seq = self._js_seq.get(task_name, 0)
        self._js_seq[task_name] = seq + 1
        return seq

    def emit_subwf_map(self, subwf_id: str, job_name: str, ts: float) -> None:
        """Record that job ``job_name`` of this workflow runs a sub-workflow."""
        self._emit(
            Events.MAP_SUBWF_JOB,
            ts,
            **{"subwf.id": subwf_id, "job.id": job_name, "job_inst.id": 1},
        )

    # -- static section --------------------------------------------------------
    def _emit_planning_events(self, ts: float) -> None:
        graph = self.scheduler.graph
        plan_attrs = {
            "submit.hostname": self.hostname,
            "dax.label": graph.name,
            "dag.file.name": f"{graph.name}.taskgraph",
            "planner.version": self.planner_version,
            "user": self.user,
            "submit_dir": self.submit_dir,
            "root.xwf.id": self.root_xwf_id,
        }
        if self.parent_xwf_id is not None:
            plan_attrs["parent.xwf.id"] = self.parent_xwf_id
        self._emit(Events.WF_PLAN, ts, **plan_attrs)
        self._emit(Events.STATIC_START, ts)
        for task in graph.tasks():
            self._emit(
                Events.TASK_INFO,
                ts,
                **{
                    "task.id": task.name,
                    "type_desc": task.unit.type_desc,
                    "transformation": task.unit.transformation,
                    "argv": " ".join(getattr(task.unit, "argv", []) or []),
                },
            )
        for parent, child in graph.edges():
            self._emit(
                Events.TASK_EDGE, ts,
                **{"parent.task.id": parent, "child.task.id": child},
            )
        for task in graph.tasks():
            # no planning stage: one job per task, never clustered
            self._emit(
                Events.JOB_INFO,
                ts,
                **{
                    "job.id": task.name,
                    "type_desc": task.unit.type_desc,
                    "clustered": 0,
                    "max_retries": 0,
                    "executable": task.unit.transformation,
                    "task_count": 1,
                },
            )
        for parent, child in graph.edges():
            self._emit(
                Events.JOB_EDGE, ts,
                **{"parent.job.id": parent, "child.job.id": child},
            )
        for task in graph.tasks():
            self._emit(
                Events.MAP_TASK_JOB, ts, **{"task.id": task.name, "job.id": task.name}
            )
        self._emit(Events.STATIC_END, ts)

    # -- listeners ---------------------------------------------------------------
    def _on_execution_event(self, event: ExecutionEvent) -> None:
        ts = event.time
        if event.is_graph:
            self._on_graph_event(event)
            return
        name = event.task_name
        ji = {"job.id": name, "job_inst.id": 1}
        if event.new_state is ExecutionState.SCHEDULED:
            if event.old_state is ExecutionState.NOT_INITIALIZED:
                # WOKEN: Job Submit Start, waiting for input data
                self._emit(
                    Events.JOB_INST_SUBMIT_START, ts,
                    **ji, **{"js.id": self._next_js(name), "sched.id": name},
                )
                self._emit(
                    Events.JOB_INST_SUBMIT_END, ts,
                    **ji, **{"js.id": self._next_js(name), "status": SUCCESS},
                )
        elif event.new_state is ExecutionState.RUNNING:
            if event.old_state is ExecutionState.PAUSED:
                self._emit(
                    Events.JOB_INST_HELD_END, ts,
                    **ji, **{"js.id": self._next_js(name), "status": SUCCESS},
                )
            elif event.old_state is ExecutionState.SCHEDULED:
                self._emit(
                    Events.JOB_INST_HOST_INFO, ts,
                    **ji,
                    **{
                        "js.id": self._next_js(name),
                        "site": self.site,
                        "hostname": self.hostname,
                    },
                )
                self._emit(
                    Events.JOB_INST_MAIN_START, ts,
                    **ji, **{"js.id": self._next_js(name)},
                )
        elif event.new_state is ExecutionState.PAUSED:
            self._emit(
                Events.JOB_INST_HELD_START, ts,
                **ji, **{"js.id": self._next_js(name), "reason": "paused in GUI"},
            )
        elif event.new_state in (ExecutionState.COMPLETE, ExecutionState.ERROR):
            exitcode = self._exitcodes.get(name, 0)
            status = SUCCESS if event.new_state is ExecutionState.COMPLETE else FAILURE
            if status == FAILURE and exitcode == 0:
                exitcode = 1
            self._emit(
                Events.JOB_INST_MAIN_TERM, ts,
                **ji, **{"js.id": self._next_js(name), "status": status},
            )
            attrs = {
                "js.id": self._next_js(name),
                "site": self.site,
                "user": self.user,
                "status": status,
                "exitcode": exitcode,
                "local.dur": round(self._durations.get(name, 0.0), 6),
                "stdout.file": f"{name}.out",
                "stderr.file": f"{name}.err",
            }
            if status == FAILURE and self._stderr.get(name):
                attrs["stderr.text"] = self._stderr[name]
            self._emit(Events.JOB_INST_MAIN_END, ts, **ji, **attrs)
        elif event.new_state is ExecutionState.SUSPENDED:
            self._emit(
                Events.JOB_INST_ABORT_INFO, ts,
                **ji, **{"js.id": self._next_js(name), "reason": event.detail or "stopped"},
            )

    def _on_graph_event(self, event: ExecutionEvent) -> None:
        ts = event.time
        if event.new_state is ExecutionState.SCHEDULED:
            self._emit_planning_events(ts)
        elif event.new_state is ExecutionState.RUNNING:
            self._emit(Events.XWF_START, ts, restart_count=0)
        elif event.new_state in (
            ExecutionState.COMPLETE,
            ExecutionState.ERROR,
            ExecutionState.SUSPENDED,
        ):
            status = SUCCESS if event.new_state is ExecutionState.COMPLETE else FAILURE
            self._emit(Events.XWF_END, ts, restart_count=0, status=status)

    def _on_invocation(self, record: InvocationRecord) -> None:
        name = record.task_name
        self._durations[name] = self._durations.get(name, 0.0) + record.duration
        if record.exitcode != 0:
            self._exitcodes[name] = record.exitcode
            self._stderr[name] = record.error_text
        base = {
            "job.id": name,
            "job_inst.id": 1,
            "inv.id": record.inv_seq,
            "task.id": name,
        }
        self._emit(Events.INV_START, record.start_time, **base)
        self._emit(
            Events.INV_END,
            record.start_time + record.duration,
            **base,
            **{
                "start_time": round(record.start_time, 6),
                "dur": round(record.duration, 6),
                "remote_cpu_time": round(record.duration * 0.92, 6),
                "exitcode": record.exitcode,
                "transformation": record.transformation,
                "executable": record.transformation,
                "argv": record.argv,
                "status": SUCCESS if record.exitcode == 0 else FAILURE,
                "site": self.site,
                "hostname": self.hostname,
            },
        )
