"""Log appenders (the LOG4J integration of paper §V-C).

Triana logs through standard appenders; the Stampede integration added a
RabbitMQ appender so events reach the AMQP queue in real time, alongside
the conventional log-file appender used for later evaluation.  Appenders
are EventSinks discovered by name through a small registry, mirroring the
"discovered using the standard LOG4J system" mechanism.
"""
from __future__ import annotations

from typing import Callable, Dict, List

from repro.bus.broker import DEFAULT_EXCHANGE, Broker
from repro.bus.client import BusSink, EventSink, FileSink, MultiSink
from repro.netlogger.events import NLEvent

__all__ = [
    "RabbitAppender",
    "LogFileAppender",
    "MemoryAppender",
    "AppenderRegistry",
    "default_registry",
]


class RabbitAppender(BusSink):
    """Publishes each Stampede event onto the AMQP bus as it is produced."""

    def __init__(self, broker: Broker, exchange: str = DEFAULT_EXCHANGE):
        super().__init__(broker, exchange)


class LogFileAppender(FileSink):
    """Appends BP lines to a plain-text log file (post-mortem evaluation)."""


class MemoryAppender(EventSink):
    """Buffers events in memory — used by tests and the dashboard demo."""

    def __init__(self):
        self.events: List[NLEvent] = []

    def emit(self, event: NLEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class AppenderRegistry:
    """Name-to-factory registry (the LOG4J discovery stand-in)."""

    def __init__(self):
        self._factories: Dict[str, Callable[..., EventSink]] = {}

    def register(self, name: str, factory: Callable[..., EventSink]) -> None:
        if name in self._factories:
            raise ValueError(f"appender {name!r} already registered")
        self._factories[name] = factory

    def create(self, name: str, **kwargs) -> EventSink:
        if name not in self._factories:
            raise KeyError(
                f"no appender {name!r}; known: {sorted(self._factories)}"
            )
        return self._factories[name](**kwargs)

    def names(self) -> List[str]:
        return sorted(self._factories)


def default_registry() -> AppenderRegistry:
    registry = AppenderRegistry()
    registry.register("rabbit", RabbitAppender)
    registry.register("file", LogFileAppender)
    registry.register("memory", MemoryAppender)
    registry.register(
        "multi", lambda sinks: MultiSink(*sinks)
    )
    return registry
