"""TrianaCloud: the distributed-execution substrate (paper §V-D, §VI).

The root workflow POSTs workflow bundles to the *TrianaCloud Broker*; the
broker assigns each bundle to a cloud node, where a Triana engine executes
the sub-workflow.  In the DART experiment there are 8 nodes, each running
the bundle's 16 executable tasks 4 at a time.

The simulation runs every node on one shared :class:`SimClock`, so the
root workflow, the broker and all node engines produce one coherent
timeline — and the Stampede events from all of them interleave on the bus
exactly as they did on the real deployment.
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

import numpy as np

from repro.bus.client import EventSink
from repro.triana.bundles import WorkflowBundle
from repro.triana.execution import ExecutionState
from repro.triana.scheduler import Scheduler, SchedulerReport
from repro.triana.stampede_log import StampedeLog
from repro.triana.unit import Unit
from repro.util.simclock import SimClock
from repro.util.uuidgen import derive_uuid

__all__ = ["CloudNode", "BundleRun", "TrianaCloudBroker", "SubmitBundleUnit",
           "CloudJoinUnit"]


@dataclass
class BundleRun:
    """Book-keeping for one bundle execution."""

    bundle: WorkflowBundle
    xwf_id: str
    node: Optional["CloudNode"] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    report: Optional[SchedulerReport] = None
    results: Dict[str, Any] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.finished_at is not None


class CloudNode:
    """One cloud worker.

    Runs up to ``bundles_per_node`` bundles concurrently (the real
    deployment oversubscribed its single-core nodes with several bundle
    engines), each bundle executing ``slots_per_bundle`` tasks at a time —
    "run 4 at a time on the compute node".
    """

    def __init__(self, name: str, slots_per_bundle: int = 4,
                 bundles_per_node: int = 1):
        self.name = name
        self.slots_per_bundle = slots_per_bundle
        self.bundles_per_node = bundles_per_node
        self.active_bundles = 0
        self.bundles_executed = 0

    @property
    def busy(self) -> bool:
        return self.active_bundles >= self.bundles_per_node


class TrianaCloudBroker:
    """Receives bundles (the HTTP POST of Fig. 6) and runs them on nodes."""

    def __init__(
        self,
        clock: SimClock,
        sink: EventSink,
        n_nodes: int = 8,
        slots_per_bundle: int = 4,
        bundles_per_node: int = 1,
        seed: int = 0,
        node_name_prefix: str = "trianaworker",
        dispatch_latency: float = 0.5,
        faults=None,
    ):
        self.clock = clock
        self.sink = sink
        #: optional EngineFaultInjector passed to every bundle scheduler
        self.faults = faults
        self.nodes = [
            CloudNode(f"{node_name_prefix}{i}", slots_per_bundle, bundles_per_node)
            for i in range(n_nodes)
        ]
        self.rng = np.random.Generator(np.random.PCG64(seed ^ 0xC10D))
        self.dispatch_latency = dispatch_latency
        self.runs: List[BundleRun] = []
        self._queue: Deque[BundleRun] = deque()
        self._on_all_done: List[Callable[[], None]] = []
        self._parent_log: Optional[StampedeLog] = None

    # -- wiring -------------------------------------------------------------
    def attach_parent(self, parent_log: StampedeLog) -> None:
        """Parent workflow whose jobs the sub-workflows map onto."""
        self._parent_log = parent_log

    def on_all_done(self, callback: Callable[[], None]) -> None:
        self._on_all_done.append(callback)

    # -- submission (the HTTP POST) -----------------------------------------------
    def submit(self, bundle_json: str, submitting_job: Optional[str] = None) -> BundleRun:
        """Accept a serialized bundle; returns its run handle."""
        bundle = WorkflowBundle.from_json(bundle_json)
        parent = bundle.parent_xwf_id or (
            self._parent_log.xwf_id if self._parent_log else None
        )
        xwf_id = derive_uuid(parent or "trianacloud", bundle.name)
        run = BundleRun(bundle=bundle, xwf_id=xwf_id, submitted_at=self.clock.now)
        self.runs.append(run)
        if self._parent_log is not None and submitting_job is not None:
            self._parent_log.emit_subwf_map(xwf_id, submitting_job, self.clock.now)
        self._queue.append(run)
        self.clock.schedule(self.dispatch_latency, self._dispatch)
        return run

    # -- scheduling -----------------------------------------------------------------
    def _dispatch(self) -> None:
        while self._queue:
            free = [n for n in self.nodes if not n.busy]
            if not free:
                return
            # least-loaded node first: spreads bundles across the pool
            node = min(free, key=lambda n: n.active_bundles)
            run = self._queue.popleft()
            self._start_run(run, node)

    def _start_run(self, run: BundleRun, node: CloudNode) -> None:
        node.active_bundles += 1
        run.node = node
        run.started_at = self.clock.now
        graph = run.bundle.to_graph()
        scheduler = Scheduler(
            graph,
            clock=self.clock,
            rng=np.random.Generator(
                np.random.PCG64(int(self.rng.integers(0, 2**63)))
            ),
            max_concurrent=node.slots_per_bundle,
            fault_injector=self.faults,
        )
        parent_xwf = run.bundle.parent_xwf_id or (
            self._parent_log.xwf_id if self._parent_log else None
        )
        root_xwf = run.bundle.root_xwf_id or parent_xwf or run.xwf_id
        StampedeLog(
            scheduler,
            self.sink,
            xwf_id=run.xwf_id,
            parent_xwf_id=parent_xwf,
            root_xwf_id=root_xwf,
            site=node.name,
            hostname=node.name,
        )

        def watch(event):
            if not event.is_graph:
                return
            if event.new_state in (
                ExecutionState.COMPLETE,
                ExecutionState.ERROR,
                ExecutionState.SUSPENDED,
            ):
                self._finish_run(run, node, scheduler)

        scheduler.add_execution_listener(watch)
        scheduler.start()

    def _finish_run(self, run: BundleRun, node: CloudNode, scheduler: Scheduler) -> None:
        run.finished_at = self.clock.now
        run.results = dict(scheduler.results)
        run.report = scheduler.report
        run.report.final_state = scheduler.graph_emitter.state
        node.active_bundles -= 1
        node.bundles_executed += 1
        self._dispatch()
        if all(r.done for r in self.runs) and not self._queue:
            for callback in self._on_all_done:
                callback()

    # -- status ------------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return bool(self.runs) and all(r.done for r in self.runs) and not self._queue

    def pending_count(self) -> int:
        return len(self._queue) + sum(
            1 for r in self.runs if r.started_at is not None and not r.done
        )


class SubmitBundleUnit(Unit):
    """Root-workflow unit that POSTs one bundle to the broker."""

    type_desc = "unit"

    def __init__(
        self,
        name: str,
        broker: TrianaCloudBroker,
        bundle: WorkflowBundle,
        seconds: float = 1.0,
    ):
        super().__init__(name)
        self.broker = broker
        self.bundle = bundle
        self._seconds = seconds

    def process(self, inputs) -> Any:
        run = self.broker.submit(self.bundle.to_json(), submitting_job=self.name)
        return {"bundle": self.bundle.name, "xwf_id": run.xwf_id}

    def duration(self, inputs, rng) -> float:
        return self._seconds


class CloudJoinUnit(Unit):
    """Root-workflow monitor task: completes when all bundles have finished.

    Marked ``external`` so the scheduler leaves its invocation open until
    the broker's all-done callback fires.
    """

    type_desc = "unit"

    def __init__(self, name: str, broker: TrianaCloudBroker):
        super().__init__(name)
        self.broker = broker
        self._scheduler: Optional[Scheduler] = None

    @property
    def external(self) -> bool:
        # Only wait externally while bundles are still in flight.
        return not self.broker.all_done

    def bind(self, scheduler: Scheduler) -> None:
        """Register the broker callback that releases this unit."""
        self._scheduler = scheduler
        self.broker.on_all_done(self._release)

    def _release(self) -> None:
        if (
            self._scheduler is not None
            and self.name in self._scheduler._external_pending
        ):
            failed = sum(
                1
                for r in self.broker.runs
                if r.report is not None and not r.report.ok
            )
            self._scheduler.complete_external(
                self.name,
                result={"bundles": len(self.broker.runs), "failed": failed},
                exitcode=0 if failed == 0 else 1,
                error_text=f"{failed} bundle(s) failed" if failed else "",
            )

    def process(self, inputs) -> Any:
        if self.broker.all_done:
            # everything already finished before the monitor started
            failed = sum(
                1 for r in self.broker.runs if r.report is not None and not r.report.ok
            )
            return {"bundles": len(self.broker.runs), "failed": failed}
        return None

    def duration(self, inputs, rng) -> float:  # pragma: no cover - external
        return 0.0
