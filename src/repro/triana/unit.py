"""Triana units: the Java "Unit" class of the paper, in Python.

Each workflow component is a unit with a ``process()`` method containing
the code to run.  Units also expose a *simulated duration* so the engines
can execute on a virtual clock: ``process()`` does the real data work
(e.g. SHS pitch detection), while ``duration()`` supplies the seconds the
run occupies on the simulated testbed.
"""
from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "UnitError",
    "Unit",
    "CallableUnit",
    "ConstantUnit",
    "SplitterUnit",
    "GatherUnit",
    "ZipperUnit",
    "ExecUnit",
    "FailingUnit",
    "StreamSourceUnit",
    "ThresholdSinkUnit",
]


class UnitError(RuntimeError):
    """Raised by a unit's process(); maps to Triana's ERROR state."""


class Unit:
    """Base component.  Subclasses override :meth:`process`.

    ``in_count``/``out_count`` are informational; the task graph wires
    cables explicitly.
    """

    #: logical type used in stampede.task.info type_desc
    type_desc: str = "unit"

    def __init__(self, name: str):
        if not name:
            raise ValueError("unit name must be non-empty")
        self.name = name

    def process(self, inputs: Sequence[Any]) -> Any:
        """Transform input data into output data (the real work)."""
        raise NotImplementedError

    def duration(self, inputs: Sequence[Any], rng: np.random.Generator) -> float:
        """Seconds this unit occupies on the simulated testbed."""
        return 1.0

    @property
    def transformation(self) -> str:
        """Logical transformation name recorded in the Stampede logs."""
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class CallableUnit(Unit):
    """Wrap an arbitrary function as a unit."""

    type_desc = "processing"

    def __init__(
        self,
        name: str,
        fn: Callable[[Sequence[Any]], Any],
        seconds: float = 1.0,
        jitter: float = 0.0,
    ):
        super().__init__(name)
        self._fn = fn
        self._seconds = seconds
        self._jitter = jitter

    def process(self, inputs: Sequence[Any]) -> Any:
        return self._fn(inputs)

    def duration(self, inputs: Sequence[Any], rng: np.random.Generator) -> float:
        if self._jitter <= 0:
            return self._seconds
        return max(0.01, rng.normal(self._seconds, self._jitter))


class ConstantUnit(Unit):
    """Source unit emitting a fixed value (e.g. the sweep input file)."""

    type_desc = "file"

    def __init__(self, name: str, value: Any, seconds: float = 1.0):
        super().__init__(name)
        self.value = value
        self._seconds = seconds

    def process(self, inputs: Sequence[Any]) -> Any:
        return self.value

    def duration(self, inputs, rng) -> float:
        return self._seconds


class SplitterUnit(Unit):
    """Split a list input into a list-of-chunks of ``chunk_size``."""

    type_desc = "processing"

    def __init__(self, name: str, chunk_size: int, seconds: float = 1.0):
        super().__init__(name)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self._seconds = seconds

    def process(self, inputs: Sequence[Any]) -> List[list]:
        (items,) = inputs
        return [
            list(items[i : i + self.chunk_size])
            for i in range(0, len(items), self.chunk_size)
        ]

    def duration(self, inputs, rng) -> float:
        return self._seconds


class GatherUnit(Unit):
    """Collect all inputs into one list (fan-in)."""

    type_desc = "processing"

    def __init__(self, name: str, seconds: float = 1.0):
        super().__init__(name)
        self._seconds = seconds

    def process(self, inputs: Sequence[Any]) -> list:
        return list(inputs)

    def duration(self, inputs, rng) -> float:
        return self._seconds


class ZipperUnit(GatherUnit):
    """The DART 'Zipper': collates all outputs into a results archive."""

    type_desc = "file"

    def process(self, inputs: Sequence[Any]) -> Dict[str, Any]:
        return {"archive": list(inputs), "count": len(inputs)}


class ExecUnit(Unit):
    """Run a command-line style task (the DART JAR executions).

    ``runner`` maps the argv list to a result; the simulated duration is
    ``base_seconds`` plus lognormal load noise, matching the 36–75 s spread
    of the paper's Table II exec entries.
    """

    type_desc = "processing"

    def __init__(
        self,
        name: str,
        argv: Sequence[str],
        runner: Optional[Callable[[Sequence[str]], Any]] = None,
        base_seconds: float = 60.0,
        noise_sigma: float = 0.12,
    ):
        super().__init__(name)
        self.argv = list(argv)
        self._runner = runner
        self.base_seconds = base_seconds
        self.noise_sigma = noise_sigma

    def process(self, inputs: Sequence[Any]) -> Any:
        if self._runner is None:
            return {"argv": self.argv, "status": 0}
        return self._runner(self.argv)

    def duration(self, inputs, rng: np.random.Generator) -> float:
        return float(self.base_seconds * rng.lognormal(0.0, self.noise_sigma))


class FailingUnit(Unit):
    """Deterministically failing unit, for fault-injection tests."""

    type_desc = "processing"

    def __init__(self, name: str, message: str = "injected failure",
                 seconds: float = 1.0, fail_on_call: int = 1):
        super().__init__(name)
        self.message = message
        self._seconds = seconds
        self._fail_on_call = fail_on_call
        self._calls = 0

    def process(self, inputs: Sequence[Any]) -> Any:
        self._calls += 1
        if self._calls >= self._fail_on_call:
            raise UnitError(self.message)
        return None

    def duration(self, inputs, rng) -> float:
        return self._seconds


class StreamSourceUnit(Unit):
    """Continuous-mode source: emits one chunk per invocation, then stops.

    When the chunks are exhausted the unit raises StopIteration-like
    sentinel handled by the scheduler (it returns :data:`STOP`).
    """

    type_desc = "source"
    STOP = object()

    def __init__(self, name: str, chunks: Sequence[Any], seconds: float = 1.0):
        super().__init__(name)
        self._chunks = list(chunks)
        self._index = 0
        self._seconds = seconds

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._chunks)

    def process(self, inputs: Sequence[Any]) -> Any:
        if self.exhausted:
            return self.STOP
        chunk = self._chunks[self._index]
        self._index += 1
        return chunk

    def duration(self, inputs, rng) -> float:
        return self._seconds


class ThresholdSinkUnit(Unit):
    """Continuous-mode sink: accumulates values until a threshold is hit.

    Models the paper's "data can be analyzed until a certain threshold
    value is reached, within an iterative algorithm".
    """

    type_desc = "sink"

    def __init__(self, name: str, threshold: float, seconds: float = 1.0):
        super().__init__(name)
        self.threshold = threshold
        self.total = 0.0
        self.satisfied = False
        self._seconds = seconds

    def process(self, inputs: Sequence[Any]) -> float:
        self.total += float(sum(float(x) for x in inputs))
        if self.total >= self.threshold:
            self.satisfied = True
        return self.total

    def duration(self, inputs, rng) -> float:
        return self._seconds
