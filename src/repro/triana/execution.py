"""Triana execution states and events (paper §V-B).

The states are exactly the set the paper lists as "natively recognised
within Triana by the workflow and tasks listener interfaces"; transitions
are delivered to listeners as :class:`ExecutionEvent` objects that carry
both the new and the previous state, "giving some context as to the flow
of the workflow".
"""
from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = ["ExecutionState", "ExecutionEvent", "ExecutionListener", "EventEmitter"]


class ExecutionState(enum.Enum):
    NOT_INITIALIZED = "NOT_INITIALIZED"
    NOT_EXECUTABLE = "NOT_EXECUTABLE"
    SCHEDULED = "SCHEDULED"
    RUNNING = "RUNNING"
    PAUSED = "PAUSED"
    COMPLETE = "COMPLETE"
    RESETTING = "RESETTING"
    RESET = "RESET"
    ERROR = "ERROR"
    SUSPENDED = "SUSPENDED"
    UNKNOWN = "UNKNOWN"
    LOCK = "LOCK"

    def __str__(self) -> str:
        return self.value


#: Transitions allowed from each state.  The lifecycle follows the paper's
#: "execution requested" -> "execution starting" -> "execution finished" ->
#: "execution reset" phases.
_ALLOWED = {
    ExecutionState.NOT_INITIALIZED: {ExecutionState.SCHEDULED,
                                     ExecutionState.NOT_EXECUTABLE},
    ExecutionState.SCHEDULED: {ExecutionState.RUNNING, ExecutionState.PAUSED,
                               ExecutionState.ERROR, ExecutionState.SUSPENDED,
                               # released by a local condition before running
                               ExecutionState.COMPLETE},
    ExecutionState.RUNNING: {ExecutionState.COMPLETE, ExecutionState.ERROR,
                             ExecutionState.PAUSED, ExecutionState.SUSPENDED,
                             ExecutionState.RUNNING, ExecutionState.UNKNOWN},
    ExecutionState.PAUSED: {ExecutionState.RUNNING, ExecutionState.SUSPENDED,
                            ExecutionState.ERROR, ExecutionState.SCHEDULED},
    ExecutionState.COMPLETE: {ExecutionState.RESETTING, ExecutionState.SCHEDULED,
                              ExecutionState.RUNNING},
    ExecutionState.ERROR: {ExecutionState.RESETTING},
    ExecutionState.SUSPENDED: {ExecutionState.RESETTING},
    ExecutionState.RESETTING: {ExecutionState.RESET},
    ExecutionState.RESET: {ExecutionState.SCHEDULED},
    ExecutionState.NOT_EXECUTABLE: set(),
    ExecutionState.UNKNOWN: {ExecutionState.RESETTING},
    ExecutionState.LOCK: set(),
}


@dataclass(frozen=True)
class ExecutionEvent:
    """A state transition of one task (or of the whole task graph)."""

    task_name: str
    old_state: ExecutionState
    new_state: ExecutionState
    time: float
    detail: str = ""
    is_graph: bool = False  # True when the whole task graph transitioned

    def __str__(self) -> str:
        return (
            f"{self.task_name}: {self.old_state} -> {self.new_state} "
            f"@ {self.time:.3f}{' (' + self.detail + ')' if self.detail else ''}"
        )


ExecutionListener = Callable[[ExecutionEvent], None]


class EventEmitter:
    """State holder + listener fan-out for one task or graph."""

    def __init__(self, name: str, is_graph: bool = False):
        self.name = name
        self.is_graph = is_graph
        self.state = ExecutionState.NOT_INITIALIZED
        self._listeners: List[ExecutionListener] = []

    def add_listener(self, listener: ExecutionListener) -> None:
        self._listeners.append(listener)

    def transition(
        self, new_state: ExecutionState, time: float, detail: str = ""
    ) -> ExecutionEvent:
        if new_state not in _ALLOWED[self.state]:
            raise ValueError(
                f"illegal transition {self.state} -> {new_state} for {self.name!r}"
            )
        event = ExecutionEvent(
            self.name, self.state, new_state, time, detail, is_graph=self.is_graph
        )
        self.state = new_state
        for listener in self._listeners:
            listener(event)
        return event
