"""Inline sub-workflows: a task whose body is another task graph.

Paper Fig. 4: "A task graph contains tasks, which may be another task
graph (i.e. a sub-workflow, which can contain a sub-workflow, and so
on)."  :class:`SubWorkflowUnit` realizes that nesting for local (non-
cloud) execution: when the parent task starts, a child Scheduler runs the
inner graph on the same clock, with its own StampedeLog keyed by a
derived xwf.id whose ``parent.xwf.id`` points at the parent run — and the
parent emits the ``stampede.xwf.map.subwf_job`` linkage.

The child graph is self-contained (like a SHIWA bundle, its inputs are
concretized at construction); the child's sink results (by task name)
form the parent task's output dict.
"""
from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.bus.client import EventSink
from repro.triana.scheduler import Scheduler
from repro.triana.stampede_log import StampedeLog
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import Unit
from repro.util.uuidgen import derive_uuid

__all__ = ["SubWorkflowUnit", "attach_subworkflows"]


class SubWorkflowUnit(Unit):
    """A unit that executes a nested task graph as a sub-workflow run."""

    type_desc = "dax"

    def __init__(
        self,
        name: str,
        graph: TaskGraph,
        max_concurrent: Optional[int] = None,
    ):
        super().__init__(name)
        self.graph = graph
        self.max_concurrent = max_concurrent
        self._parent_scheduler: Optional[Scheduler] = None
        self._parent_log: Optional[StampedeLog] = None
        self.child_scheduler: Optional[Scheduler] = None
        self.child_xwf_id: Optional[str] = None

    @property
    def external(self) -> bool:
        return True

    def bind(self, scheduler: Scheduler, log: Optional[StampedeLog]) -> None:
        """Attach to the parent's scheduler (and its StampedeLog, if any)."""
        self._parent_scheduler = scheduler
        self._parent_log = log

    def process(self, inputs: Sequence[Any]) -> None:
        parent = self._parent_scheduler
        if parent is None:
            raise RuntimeError(
                f"SubWorkflowUnit {self.name!r} was never bound to a scheduler"
            )
        clock = parent.clock
        child = Scheduler(
            self.graph,
            clock=clock,
            rng=np.random.Generator(
                np.random.PCG64(int(parent.rng.integers(0, 2**63)))
            ),
            max_concurrent=self.max_concurrent,
        )
        self.child_scheduler = child
        child_log: Optional[StampedeLog] = None
        if self._parent_log is not None:
            self.child_xwf_id = derive_uuid(self._parent_log.xwf_id, self.name)
            child_log = StampedeLog(
                child,
                self._parent_log.sink,
                xwf_id=self.child_xwf_id,
                parent_xwf_id=self._parent_log.xwf_id,
                root_xwf_id=self._parent_log.root_xwf_id,
                site=self._parent_log.site,
                hostname=self._parent_log.hostname,
            )
            self._parent_log.emit_subwf_map(
                self.child_xwf_id, self.name, clock.now
            )
        # sub-workflows may nest "and so on" (Fig. 4): bind any
        # SubWorkflowUnit inside the child to the child's run
        attach_subworkflows(child, child_log)
        def watch(event):
            if not event.is_graph:
                return
            from repro.triana.execution import ExecutionState

            if event.new_state in (
                ExecutionState.COMPLETE,
                ExecutionState.ERROR,
                ExecutionState.SUSPENDED,
            ):
                ok = event.new_state is ExecutionState.COMPLETE
                results: Dict[str, Any] = {
                    t.name: child.results.get(t.name)
                    for t in self.graph.sinks()
                }
                parent.complete_external(
                    self.name,
                    result=results,
                    exitcode=0 if ok else 1,
                    error_text="" if ok else f"sub-workflow {event.new_state}",
                )

        child.add_execution_listener(watch)
        child.start()
        return None

    def duration(self, inputs, rng) -> float:  # pragma: no cover - external
        return 0.0


def attach_subworkflows(scheduler: Scheduler,
                        log: Optional[StampedeLog] = None) -> int:
    """Bind every SubWorkflowUnit in a graph to its parent run.

    Call after constructing the parent Scheduler (and StampedeLog).
    Returns the number of sub-workflow units bound.
    """
    bound = 0
    for task in scheduler.graph.tasks():
        if isinstance(task.unit, SubWorkflowUnit):
            task.unit.bind(scheduler, log)
            bound += 1
    return bound
