"""Stampede event schema: YANG source, compiler, registry and validator."""
from repro.schema.compiler import EventSchema, LeafSpec, SchemaRegistry, compile_module
from repro.schema.stampede import (
    FAILURE,
    INCOMPLETE,
    STAMPEDE_SCHEMA,
    SUCCESS,
    Events,
)
from repro.schema.validator import EventValidator, ValidationReport, Violation
from repro.schema.yang_source import STAMPEDE_YANG

__all__ = [
    "EventSchema",
    "LeafSpec",
    "SchemaRegistry",
    "compile_module",
    "FAILURE",
    "INCOMPLETE",
    "STAMPEDE_SCHEMA",
    "SUCCESS",
    "Events",
    "EventValidator",
    "ValidationReport",
    "Violation",
    "STAMPEDE_YANG",
]
