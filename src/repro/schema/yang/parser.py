"""Recursive-descent parser for the YANG subset (RFC 6020 statement grammar).

Grammar::

    statement  = keyword [argument] (";" / "{" *statement "}")
    argument   = string *( "+" string )        ; quoted concatenation
               / unquoted-token
"""
from __future__ import annotations

from typing import List, Optional

from repro.schema.yang.ast import YangStatement
from repro.schema.yang.lexer import Token, TokenKind, YangLexError, tokenize

__all__ = ["YangParseError", "parse_yang", "parse_module"]


class YangParseError(ValueError):
    def __init__(self, message: str, token: Optional[Token] = None):
        if token is not None:
            message = f"{message} (line {token.line}, column {token.col})"
        super().__init__(message)


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[Token]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> Token:
        tok = self._peek()
        if tok is None:
            raise YangParseError("unexpected end of input")
        self._pos += 1
        return tok

    def parse_statements(self) -> List[YangStatement]:
        statements: List[YangStatement] = []
        while True:
            tok = self._peek()
            if tok is None or tok.kind is TokenKind.RBRACE:
                return statements
            statements.append(self.parse_statement())

    def parse_statement(self) -> YangStatement:
        keyword_tok = self._next()
        if keyword_tok.kind is not TokenKind.STRING or keyword_tok.quoted:
            raise YangParseError(
                f"expected statement keyword, got {keyword_tok.value!r}", keyword_tok
            )
        keyword = keyword_tok.value
        arg: Optional[str] = None

        tok = self._peek()
        if tok is not None and tok.kind is TokenKind.STRING:
            arg = self._parse_argument()
            tok = self._peek()

        if tok is None:
            raise YangParseError(f"statement {keyword!r} not terminated", keyword_tok)
        if tok.kind is TokenKind.SEMI:
            self._next()
            return YangStatement(keyword, arg, line=keyword_tok.line)
        if tok.kind is TokenKind.LBRACE:
            self._next()
            children = self.parse_statements()
            closing = self._peek()
            if closing is None or closing.kind is not TokenKind.RBRACE:
                raise YangParseError(f"unclosed block for {keyword!r}", keyword_tok)
            self._next()
            return YangStatement(keyword, arg, children, line=keyword_tok.line)
        raise YangParseError(
            f"expected ';' or '{{' after {keyword!r}, got {tok.value!r}", tok
        )

    def _parse_argument(self) -> str:
        first = self._next()
        parts = [first.value]
        # Quoted strings may be concatenated with '+' (RFC 6020 §6.1.3).
        while True:
            tok = self._peek()
            if tok is None or tok.kind is not TokenKind.PLUS:
                break
            if not first.quoted:
                raise YangParseError("'+' concatenation requires quoted strings", tok)
            self._next()
            nxt = self._next()
            if nxt.kind is not TokenKind.STRING or not nxt.quoted:
                raise YangParseError("expected quoted string after '+'", nxt)
            parts.append(nxt.value)
        return "".join(parts)


def parse_yang(text: str) -> List[YangStatement]:
    """Parse YANG text into a list of top-level statements."""
    parser = _Parser(tokenize(text))
    statements = parser.parse_statements()
    trailing = parser._peek()
    if trailing is not None:
        raise YangParseError(f"unexpected {trailing.value!r}", trailing)
    return statements


def parse_module(text: str) -> YangStatement:
    """Parse YANG text that must consist of exactly one module statement."""
    statements = parse_yang(text)
    if len(statements) != 1 or statements[0].keyword != "module":
        raise YangParseError("expected a single top-level 'module' statement")
    return statements[0]
