"""YANG-subset toolchain (RFC 6020): lexer, parser, AST, type system."""
from repro.schema.yang.ast import YangStatement
from repro.schema.yang.lexer import Token, TokenKind, YangLexError, tokenize
from repro.schema.yang.parser import YangParseError, parse_module, parse_yang
from repro.schema.yang.types import (
    BUILTIN_TYPES,
    TypeRegistry,
    YangType,
    YangTypeError,
)

__all__ = [
    "YangStatement",
    "Token",
    "TokenKind",
    "YangLexError",
    "tokenize",
    "YangParseError",
    "parse_module",
    "parse_yang",
    "BUILTIN_TYPES",
    "TypeRegistry",
    "YangType",
    "YangTypeError",
]
