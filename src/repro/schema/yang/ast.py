"""AST for the YANG subset: every construct is a (keyword, argument, children) statement."""
from __future__ import annotations

from typing import Iterator, List, Optional

__all__ = ["YangStatement"]


class YangStatement:
    """One YANG statement, e.g. ``leaf restart_count { ... }``.

    The uniform statement shape (RFC 6020 §6.3) means the parser needs no
    per-keyword grammar; semantic interpretation happens in the compiler.
    """

    __slots__ = ("keyword", "arg", "children", "line")

    def __init__(
        self,
        keyword: str,
        arg: Optional[str] = None,
        children: Optional[List["YangStatement"]] = None,
        line: int = 0,
    ):
        self.keyword = keyword
        self.arg = arg
        self.children: List[YangStatement] = children or []
        self.line = line

    # -- navigation ----------------------------------------------------------
    def find_all(self, keyword: str) -> List["YangStatement"]:
        return [c for c in self.children if c.keyword == keyword]

    def find_one(self, keyword: str) -> Optional["YangStatement"]:
        for c in self.children:
            if c.keyword == keyword:
                return c
        return None

    def arg_of(self, keyword: str, default: Optional[str] = None) -> Optional[str]:
        stmt = self.find_one(keyword)
        return stmt.arg if stmt is not None else default

    def walk(self) -> Iterator["YangStatement"]:
        yield self
        for child in self.children:
            yield from child.walk()

    # -- serialization ---------------------------------------------------------
    def to_yang(self, indent: int = 0) -> str:
        pad = "    " * indent
        head = self.keyword
        if self.arg is not None:
            head += f" {_format_arg(self.arg)}"
        if not self.children:
            return f"{pad}{head};"
        lines = [f"{pad}{head} {{"]
        for child in self.children:
            lines.append(child.to_yang(indent + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"YangStatement({self.keyword!r}, {self.arg!r}, {len(self.children)} children)"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, YangStatement)
            and self.keyword == other.keyword
            and self.arg == other.arg
            and self.children == other.children
        )

    def __hash__(self):
        return hash((self.keyword, self.arg, tuple(self.children)))


def _format_arg(arg: str) -> str:
    if arg == "" or any(c in arg for c in " \t\n{};\"'+/"):
        escaped = arg.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    return arg
