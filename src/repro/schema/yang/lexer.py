"""Tokenizer for the YANG subset used by the Stampede event schema.

Implements the pieces of RFC 6020 lexical structure the schema needs:
unquoted arguments, single- and double-quoted strings with escapes,
string concatenation with ``+``, statement terminators ``;``, blocks
``{ }``, and both comment styles (``//`` and ``/* */``).
"""
from __future__ import annotations

import enum
from typing import Iterator, List, NamedTuple

__all__ = ["TokenKind", "Token", "YangLexError", "tokenize"]


class YangLexError(ValueError):
    def __init__(self, message: str, line: int, col: int):
        self.line = line
        self.col = col
        super().__init__(f"{message} (line {line}, column {col})")


class TokenKind(enum.Enum):
    STRING = "string"  # quoted or unquoted argument/keyword text
    LBRACE = "{"
    RBRACE = "}"
    SEMI = ";"
    PLUS = "+"


class Token(NamedTuple):
    kind: TokenKind
    value: str
    line: int
    col: int
    quoted: bool = False


_DELIMS = set("{};")
_WS = set(" \t\r\n")


def tokenize(text: str) -> List[Token]:
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    pos = 0
    line = 1
    col = 1
    n = len(text)

    def advance(count: int = 1) -> None:
        nonlocal pos, line, col
        for _ in range(count):
            if pos < n and text[pos] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1

    while pos < n:
        ch = text[pos]
        if ch in _WS:
            advance()
            continue
        if ch == "/" and pos + 1 < n and text[pos + 1] == "/":
            while pos < n and text[pos] != "\n":
                advance()
            continue
        if ch == "/" and pos + 1 < n and text[pos + 1] == "*":
            start_line, start_col = line, col
            advance(2)
            while pos + 1 < n and not (text[pos] == "*" and text[pos + 1] == "/"):
                advance()
            if pos + 1 >= n:
                raise YangLexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch == "{":
            yield Token(TokenKind.LBRACE, "{", line, col)
            advance()
            continue
        if ch == "}":
            yield Token(TokenKind.RBRACE, "}", line, col)
            advance()
            continue
        if ch == ";":
            yield Token(TokenKind.SEMI, ";", line, col)
            advance()
            continue
        if ch == "+":
            yield Token(TokenKind.PLUS, "+", line, col)
            advance()
            continue
        if ch in "\"'":
            start_line, start_col = line, col
            quote = ch
            advance()
            out: List[str] = []
            while pos < n and text[pos] != quote:
                if quote == '"' and text[pos] == "\\":
                    if pos + 1 >= n:
                        raise YangLexError("dangling escape", line, col)
                    esc = text[pos + 1]
                    # Known escapes are translated; anything else keeps the
                    # backslash so XSD regex classes like \d survive.
                    out.append(
                        {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, "\\" + esc)
                    )
                    advance(2)
                else:
                    out.append(text[pos])
                    advance()
            if pos >= n:
                raise YangLexError("unterminated string", start_line, start_col)
            advance()  # closing quote
            yield Token(TokenKind.STRING, "".join(out), start_line, start_col, quoted=True)
            continue
        # unquoted token: run until whitespace or delimiter
        start_line, start_col = line, col
        start = pos
        while pos < n and text[pos] not in _WS and text[pos] not in _DELIMS:
            advance()
        yield Token(TokenKind.STRING, text[start:pos], start_line, start_col)
