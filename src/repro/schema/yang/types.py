"""YANG type system subset: built-in types, restrictions, typedefs, unions.

Covers what the Stampede schema uses: integer types with ranges, string
with pattern, decimal64, boolean, enumeration, union, and derived typedefs
(``nl_ts`` for timestamps, ``uuid``, ``nl_level``).
"""
from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence

from repro.schema.yang.ast import YangStatement

__all__ = ["YangTypeError", "YangType", "TypeRegistry", "BUILTIN_TYPES"]


class YangTypeError(ValueError):
    """A value failed type validation."""


class YangType:
    """Base class: a type checks string values (BP attributes are strings)."""

    name = "type"

    def check(self, value: str) -> None:
        raise NotImplementedError

    def is_valid(self, value: str) -> bool:
        try:
            self.check(value)
            return True
        except YangTypeError:
            return False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class StringType(YangType):
    name = "string"

    def __init__(self, pattern: Optional[str] = None, length: Optional[str] = None):
        self._pattern = re.compile(pattern) if pattern else None
        self._min_len, self._max_len = _parse_length(length)

    def check(self, value: str) -> None:
        if self._pattern is not None and self._pattern.fullmatch(value) is None:
            raise YangTypeError(
                f"value {value!r} does not match pattern {self._pattern.pattern!r}"
            )
        if self._min_len is not None and len(value) < self._min_len:
            raise YangTypeError(f"value {value!r} shorter than {self._min_len}")
        if self._max_len is not None and len(value) > self._max_len:
            raise YangTypeError(f"value {value!r} longer than {self._max_len}")


class IntType(YangType):
    def __init__(self, name: str, lo: int, hi: int, range_spec: Optional[str] = None):
        self.name = name
        self._lo, self._hi = lo, hi
        if range_spec:
            self._lo, self._hi = _parse_range(range_spec, lo, hi)

    def check(self, value: str) -> None:
        try:
            num = int(str(value), 0)
        except ValueError:
            raise YangTypeError(f"value {value!r} is not an integer") from None
        if not (self._lo <= num <= self._hi):
            raise YangTypeError(
                f"value {num} outside range [{self._lo}, {self._hi}] for {self.name}"
            )


class Decimal64Type(YangType):
    name = "decimal64"

    def check(self, value: str) -> None:
        try:
            float(str(value))
        except ValueError:
            raise YangTypeError(f"value {value!r} is not a decimal") from None


class BooleanType(YangType):
    name = "boolean"

    def check(self, value: str) -> None:
        if str(value).lower() not in ("true", "false", "0", "1"):
            raise YangTypeError(f"value {value!r} is not a boolean")


class EnumerationType(YangType):
    name = "enumeration"

    def __init__(self, values: Sequence[str]):
        if not values:
            raise ValueError("enumeration requires at least one enum")
        self.values = list(values)

    def check(self, value: str) -> None:
        if value not in self.values:
            raise YangTypeError(f"value {value!r} not in enumeration {self.values}")


class UnionType(YangType):
    name = "union"

    def __init__(self, members: Sequence[YangType]):
        if not members:
            raise ValueError("union requires at least one member type")
        self.members = list(members)

    def check(self, value: str) -> None:
        errors: List[str] = []
        for member in self.members:
            try:
                member.check(value)
                return
            except YangTypeError as exc:
                errors.append(str(exc))
        raise YangTypeError(f"value {value!r} matches no union member: {errors}")


BUILTIN_TYPES = {
    "string": lambda stmt: StringType(
        pattern=stmt.arg_of("pattern") if stmt else None,
        length=stmt.arg_of("length") if stmt else None,
    ),
    "uint8": lambda stmt: IntType("uint8", 0, 2**8 - 1, stmt.arg_of("range") if stmt else None),
    "uint16": lambda stmt: IntType("uint16", 0, 2**16 - 1, stmt.arg_of("range") if stmt else None),
    "uint32": lambda stmt: IntType("uint32", 0, 2**32 - 1, stmt.arg_of("range") if stmt else None),
    "uint64": lambda stmt: IntType("uint64", 0, 2**64 - 1, stmt.arg_of("range") if stmt else None),
    "int8": lambda stmt: IntType("int8", -(2**7), 2**7 - 1, stmt.arg_of("range") if stmt else None),
    "int16": lambda stmt: IntType("int16", -(2**15), 2**15 - 1, stmt.arg_of("range") if stmt else None),
    "int32": lambda stmt: IntType("int32", -(2**31), 2**31 - 1, stmt.arg_of("range") if stmt else None),
    "int64": lambda stmt: IntType("int64", -(2**63), 2**63 - 1, stmt.arg_of("range") if stmt else None),
    "decimal64": lambda stmt: Decimal64Type(),
    "boolean": lambda stmt: BooleanType(),
}


class TypeRegistry:
    """Resolves type statements (including typedefs and unions) to YangType."""

    def __init__(self):
        self._typedefs: Dict[str, YangStatement] = {}
        self._cache: Dict[str, YangType] = {}

    def register_typedef(self, stmt: YangStatement) -> None:
        if stmt.arg is None:
            raise ValueError("typedef requires a name argument")
        if stmt.arg in self._typedefs or stmt.arg in BUILTIN_TYPES:
            raise ValueError(f"duplicate typedef {stmt.arg!r}")
        self._typedefs[stmt.arg] = stmt

    def resolve(self, type_stmt: YangStatement) -> YangType:
        """Resolve a ``type NAME { ... }`` statement to a checker."""
        name = type_stmt.arg
        if name is None:
            raise ValueError("type statement requires an argument")
        if name == "enumeration":
            enums = [e.arg for e in type_stmt.find_all("enum") if e.arg is not None]
            return EnumerationType(enums)
        if name == "union":
            members = [self.resolve(m) for m in type_stmt.find_all("type")]
            return UnionType(members)
        if name in BUILTIN_TYPES:
            return BUILTIN_TYPES[name](type_stmt)
        if name in self._typedefs:
            if name not in self._cache:
                inner = self._typedefs[name].find_one("type")
                if inner is None:
                    raise ValueError(f"typedef {name!r} missing a type statement")
                self._cache[name] = self.resolve(inner)
            return self._cache[name]
        raise ValueError(f"unknown type {name!r}")


def _parse_range(spec: str, lo: int, hi: int):
    """Parse a simple 'MIN..MAX' range restriction."""
    parts = spec.split("..")
    if len(parts) != 2:
        raise ValueError(f"unsupported range spec {spec!r}")
    min_s, max_s = (p.strip() for p in parts)
    new_lo = lo if min_s == "min" else int(min_s)
    new_hi = hi if max_s == "max" else int(max_s)
    return new_lo, new_hi


def _parse_length(spec: Optional[str]):
    if spec is None:
        return None, None
    parts = spec.split("..")
    if len(parts) == 1:
        n = int(parts[0])
        return n, n
    min_s, max_s = (p.strip() for p in parts)
    return (
        None if min_s == "min" else int(min_s),
        None if max_s == "max" else int(max_s),
    )
