"""The Stampede event schema, in YANG.

This is the authoritative definition of every ``stampede.*`` event the
monitoring infrastructure understands (the reproduction of the schema the
paper cites at acs.lbl.gov/projects/stampede).  The module text is parsed
and compiled at import time by :mod:`repro.schema.stampede`, so the YANG
parser is exercised on every run — exactly how the paper used pyang.
"""

STAMPEDE_YANG = r"""
module stampede {
    namespace "http://repro.example/stampede";
    prefix stmp;

    organization "Stampede reproduction";
    description
        "Events describing the execution of distributed scientific
         workflows: the common data model shared by the Pegasus- and
         Triana-style engines.";

    // ---- derived types ---------------------------------------------------

    typedef nl_ts {
        description "Timestamp, ISO8601 or seconds since 1/1/1970";
        type union {
            type string {
                pattern
                    "\d{4}-\d{2}-\d{2}[Tt ]\d{2}:\d{2}:\d{2}(\.\d+)?([Zz]|[+-]\d{2}:?\d{2})?";
            }
            type decimal64;
        }
    }

    typedef uuid {
        description "RFC 4122 universally unique identifier";
        type string {
            pattern
                "[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}";
        }
    }

    typedef nl_level {
        description "NetLogger severity level";
        type enumeration {
            enum Fatal;
            enum Error;
            enum Warn;
            enum Info;
            enum Debug;
            enum Trace;
        }
    }

    typedef intbool {
        description "Boolean encoded as 0/1";
        type uint8 {
            range "0..1";
        }
    }

    typedef status_code {
        description "Termination status: 0 success, -1 failure, -2 incomplete";
        type int32;
    }

    // ---- groupings ---------------------------------------------------------

    grouping base-event {
        description "Common components in all events";
        leaf ts {
            type nl_ts;
            mandatory "true";
            description "Timestamp, ISO8601 or seconds since 1/1/1970";
        }
        leaf level {
            type nl_level;
            description "Severity level of the event";
        }
        leaf xwf.id {
            type uuid;
            description "Executable workflow id";
        }
    }

    grouping base-job-inst-event {
        description "Common components of job-instance events";
        uses base-event;
        leaf job.id {
            type string;
            mandatory "true";
            description "Identifier of the job in the executable workflow";
        }
        leaf job_inst.id {
            type int32;
            mandatory "true";
            description "Job instance (submission attempt) sequence number";
        }
        leaf js.id {
            type int32;
            description "Jobstate sequence id within the job instance";
        }
    }

    // ---- workflow lifecycle ------------------------------------------------

    container stampede.wf.plan {
        description
            "Workflow planned (or parsed, for engines without a planning
             stage); carries the static description of the run.";
        uses base-event;
        leaf submit.hostname {
            type string;
            mandatory "true";
            description "Host from which the workflow was submitted";
        }
        leaf dax.label { type string; description "Label of the abstract workflow"; }
        leaf dax.index { type string; description "Index of the abstract workflow"; }
        leaf dax.version { type string; description "Version of the abstract workflow format"; }
        leaf dax.file { type string; description "Path of the abstract workflow file"; }
        leaf dag.file.name {
            type string;
            mandatory "true";
            description "Name of the executable workflow (DAG) file";
        }
        leaf planner.version {
            type string;
            mandatory "true";
            description "Version of the planner / engine";
        }
        leaf grid_dn { type string; description "Grid certificate distinguished name"; }
        leaf user { type string; description "User who submitted the workflow"; }
        leaf submit_dir {
            type string;
            mandatory "true";
            description "Directory from which the workflow was submitted";
        }
        leaf argv { type string; description "Command-line arguments of the submission"; }
        leaf parent.xwf.id {
            type uuid;
            description "Executable workflow id of the parent, for sub-workflows";
        }
        leaf root.xwf.id {
            type uuid;
            mandatory "true";
            description "Executable workflow id of the root of the hierarchy";
        }
    }

    container stampede.static.start {
        description "Start of the static (task/job description) event section";
        uses base-event;
    }

    container stampede.static.end {
        description "End of the static event section: all AW/EW mapping
                     events have been emitted and execution may proceed";
        uses base-event;
    }

    container stampede.xwf.start {
        description "Start of one run of the executable workflow";
        uses base-event;
        leaf restart_count {
            type uint32;
            mandatory "true";
            description "Number of times workflow was restarted (due to failures)";
        }
    }

    container stampede.xwf.end {
        description "End of one run of the executable workflow";
        uses base-event;
        leaf restart_count {
            type uint32;
            mandatory "true";
            description "Number of times workflow was restarted (due to failures)";
        }
        leaf status {
            type status_code;
            mandatory "true";
            description "Termination status of the run";
        }
    }

    // ---- static description: abstract workflow --------------------------------

    container stampede.task.info {
        description "One task (computation) in the abstract workflow";
        uses base-event;
        leaf task.id {
            type string;
            mandatory "true";
            description "Identifier of the task in the abstract workflow";
        }
        leaf task.class {
            type int32;
            description "Numeric class of the task (compute, transfer, ...)";
        }
        leaf type_desc {
            type string;
            mandatory "true";
            description "Human-readable type of the task";
        }
        leaf transformation {
            type string;
            mandatory "true";
            description "Logical name of the executable / unit";
        }
        leaf argv { type string; description "Arguments of the task"; }
    }

    container stampede.task.edge {
        description "Dependency between two tasks in the abstract workflow";
        uses base-event;
        leaf parent.task.id { type string; mandatory "true"; }
        leaf child.task.id { type string; mandatory "true"; }
    }

    // ---- static description: executable workflow --------------------------------

    container stampede.job.info {
        description "One job (node) in the executable workflow";
        uses base-event;
        leaf job.id {
            type string;
            mandatory "true";
            description "Identifier of the job in the executable workflow";
        }
        leaf type_desc {
            type string;
            mandatory "true";
            description "Type of the job (compute, stage-in, ...)";
        }
        leaf clustered {
            type intbool;
            mandatory "true";
            description "Whether multiple tasks were clustered into this job";
        }
        leaf max_retries {
            type uint32;
            mandatory "true";
            description "Maximum number of retries for this job";
        }
        leaf executable {
            type string;
            mandatory "true";
            description "Path or name of the executable";
        }
        leaf argv { type string; description "Arguments of the job"; }
        leaf task_count {
            type uint32;
            mandatory "true";
            description "Number of abstract-workflow tasks in the job";
        }
    }

    container stampede.job.edge {
        description "Dependency between two jobs in the executable workflow";
        uses base-event;
        leaf parent.job.id { type string; mandatory "true"; }
        leaf child.job.id { type string; mandatory "true"; }
    }

    container stampede.wf.map.task_job {
        description "Mapping of an abstract-workflow task onto an
                     executable-workflow job (many-to-many)";
        uses base-event;
        leaf task.id { type string; mandatory "true"; }
        leaf job.id { type string; mandatory "true"; }
    }

    container stampede.xwf.map.subwf_job {
        description "Mapping of a sub-workflow onto the job that runs it";
        uses base-event;
        leaf subwf.id {
            type uuid;
            mandatory "true";
            description "Executable workflow id of the sub-workflow";
        }
        leaf job.id { type string; mandatory "true"; }
        leaf job_inst.id { type int32; mandatory "true"; }
    }

    // ---- job-instance lifecycle ----------------------------------------------

    container stampede.job_inst.pre.start {
        description "Pre-script of a job instance started";
        uses base-job-inst-event;
    }

    container stampede.job_inst.pre.term {
        description "Pre-script of a job instance terminated";
        uses base-job-inst-event;
        leaf status { type status_code; mandatory "true"; }
    }

    container stampede.job_inst.pre.end {
        description "Pre-script of a job instance ended";
        uses base-job-inst-event;
        leaf status { type status_code; mandatory "true"; }
        leaf exitcode { type int32; mandatory "true"; }
    }

    container stampede.job_inst.submit.start {
        description "Job instance submitted to the scheduling substrate";
        uses base-job-inst-event;
        leaf sched.id {
            type string;
            description "Identifier assigned by the scheduler (e.g. Condor id)";
        }
    }

    container stampede.job_inst.submit.end {
        description "Submission of the job instance acknowledged";
        uses base-job-inst-event;
        leaf status { type status_code; mandatory "true"; }
    }

    container stampede.job_inst.held.start {
        description "Job instance held (e.g. paused in Triana, held in Condor)";
        uses base-job-inst-event;
        leaf reason { type string; description "Why the job was held"; }
    }

    container stampede.job_inst.held.end {
        description "Job instance released from the held state";
        uses base-job-inst-event;
        leaf status { type status_code; }
    }

    container stampede.job_inst.main.start {
        description "Main part of the job instance started executing";
        uses base-job-inst-event;
        leaf stdout.file { type string; }
        leaf stderr.file { type string; }
        leaf sched.id { type string; }
    }

    container stampede.job_inst.main.term {
        description "Main part of the job instance terminated";
        uses base-job-inst-event;
        leaf status { type status_code; mandatory "true"; }
    }

    container stampede.job_inst.main.end {
        description "Main part of the job instance ended; carries the
                     engine-measured duration and captured output";
        uses base-job-inst-event;
        leaf stdout.file { type string; }
        leaf stdout.text { type string; }
        leaf stderr.file { type string; }
        leaf stderr.text { type string; }
        leaf user { type string; }
        leaf site {
            type string;
            mandatory "true";
            description "Execution site the job instance ran on";
        }
        leaf multiplier_factor {
            type uint32;
            description "Core-count multiplier applied to the duration";
        }
        leaf status { type status_code; mandatory "true"; }
        leaf exitcode { type int32; mandatory "true"; }
        leaf local.dur {
            type decimal64;
            mandatory "true";
            description "Duration of the job instance as seen by the engine";
        }
    }

    container stampede.job_inst.post.start {
        description "Post-script of a job instance started";
        uses base-job-inst-event;
    }

    container stampede.job_inst.post.term {
        description "Post-script of a job instance terminated";
        uses base-job-inst-event;
        leaf status { type status_code; mandatory "true"; }
    }

    container stampede.job_inst.post.end {
        description "Post-script of a job instance ended";
        uses base-job-inst-event;
        leaf status { type status_code; mandatory "true"; }
        leaf exitcode { type int32; mandatory "true"; }
    }

    container stampede.job_inst.host.info {
        description "Host the job instance was matched to";
        uses base-job-inst-event;
        leaf site { type string; mandatory "true"; }
        leaf hostname { type string; mandatory "true"; }
        leaf ip { type string; }
        leaf total_memory { type uint64; description "Memory of the host in bytes"; }
        leaf uname { type string; description "Operating system identification"; }
    }

    container stampede.job_inst.image.info {
        description "Memory image size of the running job instance";
        uses base-job-inst-event;
        leaf size { type uint64; description "Image size in bytes"; }
    }

    container stampede.job_inst.abort.info {
        description "Job instance was aborted (e.g. user pressed stop)";
        uses base-job-inst-event;
        leaf reason { type string; }
    }

    // ---- invocations -----------------------------------------------------------

    container stampede.inv.start {
        description "Invocation of an executable on a remote node started";
        uses base-event;
        leaf job.id { type string; mandatory "true"; }
        leaf job_inst.id { type int32; mandatory "true"; }
        leaf inv.id {
            type int32;
            mandatory "true";
            description "Invocation sequence number within the job instance";
        }
        leaf task.id {
            type string;
            description "Abstract task this invocation instantiates; absent
                         for jobs the engine added that are not in the AW";
        }
    }

    container stampede.inv.end {
        description "Invocation of an executable on a remote node ended";
        uses base-event;
        leaf job.id { type string; mandatory "true"; }
        leaf job_inst.id { type int32; mandatory "true"; }
        leaf inv.id { type int32; mandatory "true"; }
        leaf task.id { type string; }
        leaf start_time {
            type nl_ts;
            mandatory "true";
            description "Start timestamp of the invocation on the remote node";
        }
        leaf dur {
            type decimal64;
            mandatory "true";
            description "Duration of the invocation on the remote node";
        }
        leaf remote_cpu_time {
            type decimal64;
            description "CPU time consumed on the remote node";
        }
        leaf exitcode { type int32; mandatory "true"; }
        leaf transformation { type string; mandatory "true"; }
        leaf executable { type string; mandatory "true"; }
        leaf argv { type string; }
        leaf task.class { type int32; }
        leaf status { type status_code; mandatory "true"; }
        leaf site { type string; description "Execution site"; }
        leaf hostname { type string; description "Host the invocation ran on"; }
    }
}
"""
