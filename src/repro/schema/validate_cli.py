"""stampede-validate: check BP logs against the YANG schema (pyang stand-in).

The paper validates log messages with pyang against the published YANG
module; this CLI does the same for our compiled schema::

    stampede-validate run.bp                 # validate a log file
    stampede-validate --dump-schema          # print the YANG module
    stampede-validate --list-events          # enumerate event types
"""
from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.netlogger.stream import BPReader
from repro.schema.stampede import STAMPEDE_SCHEMA
from repro.schema.validator import EventValidator
from repro.schema.yang_source import STAMPEDE_YANG

__all__ = ["main"]


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="stampede-validate",
        description="Validate NetLogger BP logs against the Stampede schema.",
    )
    parser.add_argument("input", nargs="?", help="BP log file ('-' for stdin)")
    parser.add_argument(
        "--dump-schema", action="store_true", help="print the YANG module and exit"
    )
    parser.add_argument(
        "--list-events", action="store_true",
        help="list event types with their mandatory attributes and exit",
    )
    parser.add_argument(
        "--allow-unknown-events", action="store_true",
        help="tolerate event types outside the schema",
    )
    parser.add_argument(
        "--allow-unknown-attrs", action="store_true",
        help="tolerate attributes not declared for their event",
    )
    parser.add_argument(
        "--max-violations", type=int, default=20,
        help="print at most this many violations (default 20)",
    )
    args = parser.parse_args(argv)

    if args.dump_schema:
        print(STAMPEDE_YANG.strip())
        return 0
    if args.list_events:
        for name in sorted(STAMPEDE_SCHEMA.event_names()):
            schema = STAMPEDE_SCHEMA.get(name)
            mandatory = ", ".join(
                n for n in schema.mandatory_leaves if n != "ts"
            )
            print(f"{name}  [{mandatory}]" if mandatory else name)
        return 0
    if args.input is None:
        parser.error("an input file is required (or --dump-schema/--list-events)")

    validator = EventValidator(
        STAMPEDE_SCHEMA,
        allow_unknown_events=args.allow_unknown_events,
        allow_unknown_attrs=args.allow_unknown_attrs,
    )
    source = sys.stdin if args.input == "-" else args.input
    reader = BPReader(source, on_error="skip")
    report = validator.validate(reader)
    for lineno, line, exc in reader.errors[: args.max_violations]:
        print(f"line {lineno}: unparseable BP: {exc}", file=sys.stderr)
    for violation in report.violations[: args.max_violations]:
        print(str(violation), file=sys.stderr)
    hidden = len(report.violations) - args.max_violations
    if hidden > 0:
        print(f"... and {hidden} more violation(s)", file=sys.stderr)
    print(report.summary())
    return 0 if report.ok and not reader.errors else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
