"""Validate NetLogger events against the Stampede schema (pyang substitute).

Validation checks, per event:
  * the event type exists in the schema;
  * every mandatory attribute is present;
  * every present attribute is declared (unknown attributes are reported —
    configurable, since BP permits engine-specific extras);
  * every value satisfies its YANG type.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Optional

from repro.netlogger.events import NLEvent
from repro.schema.compiler import SchemaRegistry
from repro.schema.yang.types import YangTypeError

__all__ = ["Violation", "ValidationReport", "EventValidator"]

# Attributes handled by the BP envelope itself rather than per-event leaves.
_ENVELOPE = ("ts", "event", "level")


@dataclass(frozen=True)
class Violation:
    """One schema violation found in one event."""

    event_name: str
    kind: str  # 'unknown-event' | 'missing' | 'unknown-attr' | 'bad-type'
    attribute: str = ""
    message: str = ""

    def __str__(self) -> str:
        loc = f"{self.event_name}.{self.attribute}" if self.attribute else self.event_name
        return f"[{self.kind}] {loc}: {self.message}"


@dataclass
class ValidationReport:
    """Aggregate result of validating a stream of events."""

    events_checked: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return f"validated {self.events_checked} event(s): {status}"


class EventValidator:
    """Checks events against a compiled SchemaRegistry."""

    def __init__(
        self,
        registry: SchemaRegistry,
        allow_unknown_events: bool = False,
        allow_unknown_attrs: bool = False,
    ):
        self._registry = registry
        self._allow_unknown_events = allow_unknown_events
        self._allow_unknown_attrs = allow_unknown_attrs

    def validate_event(self, event: NLEvent) -> List[Violation]:
        """Return the violations for one event (empty list when valid)."""
        return self.validate_attrs(event.event, event.attrs)

    def validate_attrs(
        self, event_name: str, attrs: Mapping[str, object]
    ) -> List[Violation]:
        """Validate a raw attribute mapping as if it were event ``event_name``.

        This is the NLEvent-free entry point used by ``stampede-lint``, which
        works from parsed BP pairs so it can report on lines that never make
        it into a typed event.  Envelope attributes (``ts``/``event``/
        ``level``) present in ``attrs`` are ignored.
        """
        schema = self._registry.get(event_name)
        if schema is None:
            if self._allow_unknown_events:
                return []
            return [
                Violation(
                    event_name,
                    "unknown-event",
                    message=f"event type not in schema module {self._registry.module_name!r}",
                )
            ]
        violations: List[Violation] = []
        for name in schema.mandatory_leaves:
            if name in _ENVELOPE:
                continue  # carried by the NLEvent envelope, always present
            if name not in attrs:
                violations.append(
                    Violation(
                        event_name, "missing", name, "mandatory attribute absent"
                    )
                )
        for name, value in attrs.items():
            if name in _ENVELOPE:
                continue
            leaf = schema.leaves.get(name)
            if leaf is None:
                if not self._allow_unknown_attrs:
                    violations.append(
                        Violation(
                            event_name, "unknown-attr", name, "attribute not in schema"
                        )
                    )
                continue
            try:
                leaf.yang_type.check(str(value))
            except YangTypeError as exc:
                violations.append(Violation(event_name, "bad-type", name, str(exc)))
        return violations

    def validate(self, events: Iterable[NLEvent]) -> ValidationReport:
        """Validate a stream of events, returning an aggregate report."""
        report = ValidationReport()
        for event in events:
            report.events_checked += 1
            report.violations.extend(self.validate_event(event))
        return report

    def check(self, event: NLEvent) -> None:
        """Raise ValueError on the first violation (strict mode)."""
        violations = self.validate_event(event)
        if violations:
            raise ValueError(str(violations[0]))
