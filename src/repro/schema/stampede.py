"""Compiled Stampede schema singleton and event-name constants.

Importing this module parses the YANG source and exposes the registry the
rest of the system (engines, loader, validator) shares.  The constants
below are the canonical event names so producers don't scatter string
literals.
"""
from __future__ import annotations

from repro.schema.compiler import SchemaRegistry, compile_module
from repro.schema.yang_source import STAMPEDE_YANG

__all__ = ["STAMPEDE_SCHEMA", "Events", "SUCCESS", "FAILURE", "INCOMPLETE"]

STAMPEDE_SCHEMA: SchemaRegistry = compile_module(STAMPEDE_YANG)

# Termination status codes used throughout the data model.
SUCCESS = 0
FAILURE = -1
INCOMPLETE = -2


class Events:
    """Canonical Stampede event names (mirrors the YANG containers)."""

    WF_PLAN = "stampede.wf.plan"
    STATIC_START = "stampede.static.start"
    STATIC_END = "stampede.static.end"
    XWF_START = "stampede.xwf.start"
    XWF_END = "stampede.xwf.end"
    TASK_INFO = "stampede.task.info"
    TASK_EDGE = "stampede.task.edge"
    JOB_INFO = "stampede.job.info"
    JOB_EDGE = "stampede.job.edge"
    MAP_TASK_JOB = "stampede.wf.map.task_job"
    MAP_SUBWF_JOB = "stampede.xwf.map.subwf_job"
    JOB_INST_PRE_START = "stampede.job_inst.pre.start"
    JOB_INST_PRE_TERM = "stampede.job_inst.pre.term"
    JOB_INST_PRE_END = "stampede.job_inst.pre.end"
    JOB_INST_SUBMIT_START = "stampede.job_inst.submit.start"
    JOB_INST_SUBMIT_END = "stampede.job_inst.submit.end"
    JOB_INST_HELD_START = "stampede.job_inst.held.start"
    JOB_INST_HELD_END = "stampede.job_inst.held.end"
    JOB_INST_MAIN_START = "stampede.job_inst.main.start"
    JOB_INST_MAIN_TERM = "stampede.job_inst.main.term"
    JOB_INST_MAIN_END = "stampede.job_inst.main.end"
    JOB_INST_POST_START = "stampede.job_inst.post.start"
    JOB_INST_POST_TERM = "stampede.job_inst.post.term"
    JOB_INST_POST_END = "stampede.job_inst.post.end"
    JOB_INST_HOST_INFO = "stampede.job_inst.host.info"
    JOB_INST_IMAGE_INFO = "stampede.job_inst.image.info"
    JOB_INST_ABORT_INFO = "stampede.job_inst.abort.info"
    INV_START = "stampede.inv.start"
    INV_END = "stampede.inv.end"

    @classmethod
    def all(cls):
        return [
            value
            for name, value in vars(cls).items()
            if not name.startswith("_") and isinstance(value, str)
        ]


def _check_schema_complete() -> None:
    """Every constant must have a schema; every schema must have a constant."""
    constants = set(Events.all())
    schemas = set(STAMPEDE_SCHEMA.event_names())
    missing = constants - schemas
    extra = schemas - constants
    if missing or extra:
        raise RuntimeError(
            f"schema/constant mismatch: missing={sorted(missing)} extra={sorted(extra)}"
        )


_check_schema_complete()
