"""Compile a parsed YANG module into an event-schema registry.

The Stampede schema models each event type as a ``container`` whose
``leaf`` statements are the event's attributes; ``grouping``/``uses``
provide shared attribute sets (the ``base-event``).  The compiler resolves
groupings and typedefs and produces flat :class:`EventSchema` objects the
validator and the loader consume.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.schema.yang.ast import YangStatement
from repro.schema.yang.parser import parse_module
from repro.schema.yang.types import TypeRegistry, YangType

__all__ = ["LeafSpec", "EventSchema", "SchemaRegistry", "compile_module"]


@dataclass(frozen=True)
class LeafSpec:
    """One attribute of an event: name, resolved type, mandatoriness."""

    name: str
    yang_type: YangType
    mandatory: bool = False
    description: str = ""
    type_name: str = ""


@dataclass
class EventSchema:
    """Flattened schema for one event type (one YANG container)."""

    name: str
    description: str = ""
    leaves: Dict[str, LeafSpec] = field(default_factory=dict)

    @property
    def mandatory_leaves(self) -> List[str]:
        return [n for n, leaf in self.leaves.items() if leaf.mandatory]

    def __contains__(self, attr: str) -> bool:
        return attr in self.leaves


class SchemaRegistry:
    """All event schemas from one YANG module, addressable by event name."""

    def __init__(self, module_name: str):
        self.module_name = module_name
        self._events: Dict[str, EventSchema] = {}

    def add(self, schema: EventSchema) -> None:
        if schema.name in self._events:
            raise ValueError(f"duplicate event schema {schema.name!r}")
        self._events[schema.name] = schema

    def get(self, event_name: str) -> Optional[EventSchema]:
        return self._events.get(event_name)

    def __contains__(self, event_name: str) -> bool:
        return event_name in self._events

    def __len__(self) -> int:
        return len(self._events)

    def event_names(self) -> List[str]:
        return list(self._events)


def compile_module(text: str) -> SchemaRegistry:
    """Parse YANG text and compile it into a SchemaRegistry."""
    module = parse_module(text)
    if module.arg is None:
        raise ValueError("module statement requires a name")
    types = TypeRegistry()
    groupings: Dict[str, YangStatement] = {}

    for stmt in module.children:
        if stmt.keyword == "typedef":
            types.register_typedef(stmt)
        elif stmt.keyword == "grouping":
            if stmt.arg is None:
                raise ValueError("grouping requires a name")
            if stmt.arg in groupings:
                raise ValueError(f"duplicate grouping {stmt.arg!r}")
            groupings[stmt.arg] = stmt

    registry = SchemaRegistry(module.arg)
    for stmt in module.children:
        if stmt.keyword != "container":
            continue
        if stmt.arg is None:
            raise ValueError("container requires a name")
        schema = EventSchema(
            name=stmt.arg,
            description=_clean(stmt.arg_of("description", "")),
        )
        _collect_leaves(stmt, schema, groupings, types, seen_groupings=set())
        registry.add(schema)
    return registry


def _collect_leaves(
    node: YangStatement,
    schema: EventSchema,
    groupings: Dict[str, YangStatement],
    types: TypeRegistry,
    seen_groupings: set,
) -> None:
    for child in node.children:
        if child.keyword == "uses":
            name = child.arg
            if name not in groupings:
                raise ValueError(f"uses of unknown grouping {name!r} in {schema.name}")
            if name in seen_groupings:
                raise ValueError(f"circular grouping use: {name!r}")
            _collect_leaves(
                groupings[name], schema, groupings, types, seen_groupings | {name}
            )
        elif child.keyword == "leaf":
            leaf = _compile_leaf(child, types, schema.name)
            # A leaf re-declared in the container overrides the grouping's
            # copy (used nowhere in the stock schema, but well-defined).
            schema.leaves[leaf.name] = leaf


def _compile_leaf(stmt: YangStatement, types: TypeRegistry, owner: str) -> LeafSpec:
    if stmt.arg is None:
        raise ValueError(f"leaf in {owner} requires a name")
    type_stmt = stmt.find_one("type")
    if type_stmt is None:
        raise ValueError(f"leaf {stmt.arg!r} in {owner} missing a type")
    mandatory_arg = stmt.arg_of("mandatory", "false") or "false"
    return LeafSpec(
        name=stmt.arg,
        yang_type=types.resolve(type_stmt),
        mandatory=mandatory_arg.strip().lower() == "true",
        description=_clean(stmt.arg_of("description", "")),
        type_name=type_stmt.arg or "",
    )


def _clean(text: Optional[str]) -> str:
    if not text:
        return ""
    return " ".join(text.split())
