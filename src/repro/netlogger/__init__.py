"""NetLogger Toolkit substrate: BP log format, typed events, streams, filters."""
from repro.netlogger.bp import (
    BPParseError,
    format_bp_line,
    parse_bp_line,
    parse_bp_pairs,
    quote_value,
)
from repro.netlogger.events import Level, NLEvent
from repro.netlogger.filters import (
    by_pattern,
    by_time_window,
    by_workflow,
    event_counts,
    sample,
    split_by_workflow,
)
from repro.netlogger.stream import (
    BPReader,
    BPWriter,
    read_events,
    tail_events,
    write_events,
)

__all__ = [
    "BPParseError",
    "format_bp_line",
    "parse_bp_line",
    "parse_bp_pairs",
    "quote_value",
    "Level",
    "NLEvent",
    "by_pattern",
    "by_time_window",
    "by_workflow",
    "event_counts",
    "sample",
    "split_by_workflow",
    "BPReader",
    "BPWriter",
    "read_events",
    "tail_events",
    "write_events",
]
