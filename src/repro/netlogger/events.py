"""Typed NetLogger event objects layered over raw BP attribute maps."""
from __future__ import annotations

import enum
import sys
from typing import Dict, Mapping, Optional

from repro.netlogger.bp import format_bp_line, parse_bp_line
from repro.util.timeutil import format_iso, parse_ts, parse_ts_cached

__all__ = ["Level", "NLEvent"]


class Level(enum.Enum):
    """Syslog-style severity levels used by NetLogger."""

    FATAL = "Fatal"
    ERROR = "Error"
    WARN = "Warn"
    INFO = "Info"
    DEBUG = "Debug"
    TRACE = "Trace"

    @classmethod
    def parse(cls, text: str) -> "Level":
        member = _LEVEL_LOOKUP.get(text)
        if member is not None:
            return member
        member = _LEVEL_LOOKUP.get(text.lower())
        if member is not None:
            return member
        raise ValueError(f"unknown NetLogger level: {text!r}")


#: exact and lowercased spellings -> member; one dict hit on the hot path
_LEVEL_LOOKUP: Dict[str, "Level"] = {
    **{m.value: m for m in Level},
    **{m.value.lower(): m for m in Level},
}


class NLEvent:
    """One NetLogger event: a timestamp, an event name, and attributes.

    The ``event`` field is hierarchical (dot-separated) and doubles as the
    AMQP routing key when events are published to the message bus.
    """

    __slots__ = ("ts", "event", "level", "attrs")

    def __init__(
        self,
        event: str,
        ts: float,
        attrs: Optional[Mapping[str, object]] = None,
        level: Level = Level.INFO,
    ):
        if not event:
            raise ValueError("event name must be non-empty")
        self.event = event
        self.ts = float(ts)
        self.level = level
        self.attrs: Dict[str, object] = dict(attrs or {})

    # -- accessors -----------------------------------------------------------
    def get(self, key: str, default: object = None) -> object:
        return self.attrs.get(key, default)

    def __getitem__(self, key: str) -> object:
        return self.attrs[key]

    def __contains__(self, key: str) -> bool:
        return key in self.attrs

    @property
    def prefix(self) -> str:
        """First component of the event name (e.g. ``stampede``)."""
        return self.event.split(".", 1)[0]

    def matches_prefix(self, prefix: str) -> bool:
        """True if the event name equals or is nested under ``prefix``."""
        return self.event == prefix or self.event.startswith(prefix + ".")

    # -- conversion ----------------------------------------------------------
    def to_bp(self) -> str:
        """Serialize to one BP log line."""
        out: Dict[str, object] = {
            "ts": format_iso(self.ts),
            "event": self.event,
            "level": self.level.value,
        }
        for key, value in self.attrs.items():
            if key in ("ts", "event", "level"):
                continue
            out[key] = value
        return format_bp_line(out)

    @classmethod
    def from_bp(cls, line: str, fast: bool = True) -> "NLEvent":
        """Parse one BP log line into a typed event.

        ``fast=False`` forces the strict char-by-char BP scanner (the
        ``--parse-mode strict`` path); the default uses the C-speed
        tokenizers with automatic fallback, plus memoized timestamp and
        level lookups.  Both produce identical events.
        """
        raw = parse_bp_line(line, fast=fast)
        ts_raw = raw.pop("ts")
        ts = parse_ts_cached(ts_raw) if fast else parse_ts(ts_raw)
        # event names draw from a small vocabulary; interning collapses
        # millions of parsed lines onto one string object per name
        event = sys.intern(raw.pop("event"))
        if not event:
            raise ValueError("event name must be non-empty")
        level = Level.parse(raw.pop("level", "Info"))
        # parse_ts returns a float and the parsed dict is freshly built
        # and ours to keep, so skip __init__'s re-validation and copy
        self = cls.__new__(cls)
        self.event = event
        self.ts = ts
        self.level = level
        self.attrs = raw
        return self

    def copy(self) -> "NLEvent":
        return NLEvent(self.event, self.ts, dict(self.attrs), self.level)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NLEvent)
            and self.event == other.event
            and self.ts == other.ts
            and self.level == other.level
            and {k: str(v) for k, v in self.attrs.items()}
            == {k: str(v) for k, v in other.attrs.items()}
        )

    def __hash__(self):
        return hash((self.event, self.ts))

    def __repr__(self) -> str:
        return f"NLEvent({self.event!r}, ts={self.ts}, attrs={self.attrs!r})"
