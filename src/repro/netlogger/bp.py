"""NetLogger Best Practices (BP) log format.

A BP log message is a single line of ``name=value`` pairs, e.g.::

    ts=2012-03-13T12:35:38.000000Z event=stampede.xwf.start level=Info \
    xwf.id=ea17e8ac-02ac-4909-b5e3-16e367392556 restart_count=0

Rules implemented here (per the Grid Logging Best Practices guide the
paper references):

* ``ts`` and ``event`` are required; ``level`` is conventional.
* Names are dotted identifiers (``xwf.id``, ``job_inst.main.start``).
* Values containing whitespace, ``=`` or quotes are double-quoted, with
  ``\\`` escapes for embedded quotes and backslashes.
* Pair order is preserved round-trip (``ts`` and ``event`` first on output).

Two scanners implement the grammar:

* the *fast path* — ``str.split`` tokenization for lines without quotes
  or escapes, and a compiled-regex tokenizer for lines with simple
  quoted values — both of which run almost entirely in C;
* the *strict path* — the original char-by-char scanner, which reports
  exact error columns and handles every corner of the grammar.

The fast path only commits to a parse it is certain about; anything
irregular (malformed names, stray quotes, dangling escapes) falls back
to the strict scanner, so the two paths are behavior-identical by
construction — a property the test suite fuzzes.  ``parse_bp_line`` and
``parse_bp_pairs`` take ``fast=False`` to force the strict scanner.
"""
from __future__ import annotations

import sys
import re
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "BPParseError",
    "parse_bp_line",
    "parse_bp_pairs",
    "format_bp_line",
    "quote_value",
]

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")

# Characters that force a value to be quoted on output.
_NEEDS_QUOTE_RE = re.compile(r'[\s="\\]|^$')

# -- fast-path tokenizers ---------------------------------------------------
# One pair: NAME=VALUE where VALUE is a fully quoted token (followed by
# whitespace or end-of-line, as the strict scanner requires) or an
# unquoted run of non-space characters not starting with a quote.
_FAST_PAIR_SRC = (
    r'[A-Za-z_][A-Za-z0-9_.\-]*=(?:"(?:[^"\\]|\\.)*"(?=\s|$)|(?!")\S*)'
)
#: whole-line shape check; only lines matching this use the regex tokenizer
_FAST_LINE_RE = re.compile(
    r"\s*(?:{pair}(?:\s+{pair})*)?\s*".format(pair=_FAST_PAIR_SRC)
)
_FAST_PAIR_RE = re.compile(
    r'([A-Za-z_][A-Za-z0-9_.\-]*)=("(?:[^"\\]|\\.)*"(?=\s|$)|(?!")\S*)'
)
_UNESCAPE_RE = re.compile(r"\\(.)")

#: memoized name validation; attribute names repeat heavily, so the
#: regex runs once per distinct name and the stored key is interned
#: (one shared string object per name across millions of events).
_NAME_CACHE: Dict[str, Optional[str]] = {}
#: distinct-from-everything default for cache .get() probes on the hot
#: path (None is a legitimate cached verdict meaning "invalid name")
_UNSEEN = object()


def _valid_name(name: str) -> Optional[str]:
    """Return the interned name if valid, else None (memoized)."""
    try:
        return _NAME_CACHE[name]
    except KeyError:
        interned = (
            sys.intern(name) if _NAME_RE.fullmatch(name) else None
        )
        if len(_NAME_CACHE) < 65536:  # bound pathological inputs
            _NAME_CACHE[name] = interned
        return interned


class BPParseError(ValueError):
    """Raised on a malformed BP line; carries the offending column."""

    def __init__(self, message: str, line: str, pos: int):
        self.line = line
        self.pos = pos
        super().__init__(f"{message} at column {pos}: {line!r}")


def quote_value(value: str) -> str:
    """Quote a value if the BP grammar requires it."""
    if _NEEDS_QUOTE_RE.search(value):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return value


def format_bp_line(attrs: Dict[str, object]) -> str:
    """Serialize an attribute mapping to one BP line.

    ``ts`` and ``event`` are emitted first (in that order) regardless of the
    mapping's iteration order; remaining keys keep their order.
    """
    if "ts" not in attrs or "event" not in attrs:
        raise ValueError(f"BP message requires ts and event: {attrs!r}")
    parts: List[str] = []
    for key in ("ts", "event"):
        parts.append(f"{key}={quote_value(_stringify(attrs[key]))}")
    for key, value in attrs.items():
        if key in ("ts", "event"):
            continue
        if not _NAME_RE.fullmatch(key):
            raise ValueError(f"invalid BP attribute name: {key!r}")
        parts.append(f"{key}={quote_value(_stringify(value))}")
    return " ".join(parts)


def parse_bp_line(line: str, strict: bool = False, fast: bool = True) -> Dict[str, str]:
    """Parse one BP line into an ordered dict of string attributes.

    A name appearing more than once is ambiguous producer output.  By
    default the last occurrence wins (the historical NetLogger behaviour);
    with ``strict=True`` a duplicate raises :class:`BPParseError` instead.
    Callers that want to *report* duplicates without failing (e.g. the
    ``stampede-lint`` stream analyzer) should use :func:`parse_bp_pairs`,
    which preserves every occurrence.

    ``fast=False`` forces the char-by-char scanner; the default tries the
    C-speed tokenizers first and falls back automatically, producing
    identical results either way.
    """
    pairs = _fast_pairs(line.rstrip("\n")) if fast else None
    if pairs is None:
        pairs = _scan_pairs(line)
    if strict:
        attrs: Dict[str, str] = {}
        for key, value in pairs:
            if key in attrs:
                raise BPParseError(f"duplicate attribute {key!r}", line, 0)
            attrs[key] = value
    else:
        # dict() keeps the last occurrence per key — exactly the
        # historical last-wins duplicate rule — in one C-level pass.
        attrs = dict(pairs)
    if "ts" not in attrs:
        raise BPParseError("missing required attribute 'ts'", line, 0)
    if "event" not in attrs:
        raise BPParseError("missing required attribute 'event'", line, 0)
    return attrs


def parse_bp_pairs(line: str, fast: bool = True) -> List[Tuple[str, str]]:
    """Parse one BP line into (name, value) pairs, keeping duplicates.

    Unlike :func:`parse_bp_line` this performs no required-attribute checks
    and keeps repeated names, so callers can inspect exactly what the
    producer wrote.
    """
    if fast:
        pairs = _fast_pairs(line.rstrip("\n"))
        if pairs is not None:
            return pairs
    return list(_scan_pairs(line))


def _fast_pairs(text: str) -> Optional[List[Tuple[str, str]]]:
    """C-speed tokenization of one BP line; None means "use the scanner".

    Quote-free lines split on whitespace and partition on ``=``; lines
    with simple quoted values run through a compiled regex whose
    whole-line shape check guarantees the pair pattern consumes exactly
    the strict grammar.  Any line the fast path cannot be certain about
    (invalid name, stray quote, dangling escape, garbage between pairs)
    returns None so the caller falls back to the strict scanner — which
    either parses the corner case or raises with a precise column.
    """
    cache_get = _NAME_CACHE.get
    if '"' not in text and "\\" not in text:
        out: List[Tuple[str, str]] = []
        append = out.append
        for token in text.split():
            name, eq, value = token.partition("=")
            if not eq:
                return None
            interned = cache_get(name, _UNSEEN)
            if interned is _UNSEEN:
                interned = _valid_name(name)
            if interned is None:
                return None
            append((interned, value))
        return out
    if _FAST_LINE_RE.fullmatch(text) is None:
        return None
    out = []
    append = out.append
    for name, value in _FAST_PAIR_RE.findall(text):
        if value[:1] == '"':
            value = value[1:-1]
            if "\\" in value:
                value = _UNESCAPE_RE.sub(r"\1", value)
        interned = cache_get(name, _UNSEEN)
        if interned is _UNSEEN:
            interned = _valid_name(name)
        if interned is None:  # pragma: no cover - regex already validated
            return None
        append((interned, value))
    return out


def _scan_pairs(line: str) -> Iterator[Tuple[str, str]]:
    text = line.rstrip("\n")
    pos = 0
    length = len(text)
    while pos < length:
        # skip whitespace between pairs
        while pos < length and text[pos].isspace():
            pos += 1
        if pos >= length:
            break
        m = _NAME_RE.match(text, pos)
        if m is None:
            raise BPParseError("expected attribute name", text, pos)
        name = m.group(0)
        pos = m.end()
        if pos >= length or text[pos] != "=":
            raise BPParseError(f"expected '=' after {name!r}", text, pos)
        pos += 1
        if pos < length and text[pos] == '"':
            value, pos = _scan_quoted(text, pos)
        else:
            end = pos
            while end < length and not text[end].isspace():
                end += 1
            value = text[pos:end]
            pos = end
        yield name, value


def _scan_quoted(text: str, pos: int) -> Tuple[str, int]:
    """Scan a double-quoted value starting at the opening quote."""
    assert text[pos] == '"'
    pos += 1
    out: List[str] = []
    while pos < len(text):
        ch = text[pos]
        if ch == "\\":
            if pos + 1 >= len(text):
                raise BPParseError("dangling escape", text, pos)
            out.append(text[pos + 1])
            pos += 2
        elif ch == '"':
            return "".join(out), pos + 1
        else:
            out.append(ch)
            pos += 1
    raise BPParseError("unterminated quoted value", text, pos)


def _stringify(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        # Keep float rendering stable and compact for round-trips.
        return repr(value)
    return str(value)
