"""NetLogger Best Practices (BP) log format.

A BP log message is a single line of ``name=value`` pairs, e.g.::

    ts=2012-03-13T12:35:38.000000Z event=stampede.xwf.start level=Info \
    xwf.id=ea17e8ac-02ac-4909-b5e3-16e367392556 restart_count=0

Rules implemented here (per the Grid Logging Best Practices guide the
paper references):

* ``ts`` and ``event`` are required; ``level`` is conventional.
* Names are dotted identifiers (``xwf.id``, ``job_inst.main.start``).
* Values containing whitespace, ``=`` or quotes are double-quoted, with
  ``\\`` escapes for embedded quotes and backslashes.
* Pair order is preserved round-trip (``ts`` and ``event`` first on output).
"""
from __future__ import annotations

import re
from typing import Dict, Iterator, List, Tuple

__all__ = [
    "BPParseError",
    "parse_bp_line",
    "parse_bp_pairs",
    "format_bp_line",
    "quote_value",
]

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")

# Characters that force a value to be quoted on output.
_NEEDS_QUOTE_RE = re.compile(r'[\s="\\]|^$')


class BPParseError(ValueError):
    """Raised on a malformed BP line; carries the offending column."""

    def __init__(self, message: str, line: str, pos: int):
        self.line = line
        self.pos = pos
        super().__init__(f"{message} at column {pos}: {line!r}")


def quote_value(value: str) -> str:
    """Quote a value if the BP grammar requires it."""
    if _NEEDS_QUOTE_RE.search(value):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return value


def format_bp_line(attrs: Dict[str, object]) -> str:
    """Serialize an attribute mapping to one BP line.

    ``ts`` and ``event`` are emitted first (in that order) regardless of the
    mapping's iteration order; remaining keys keep their order.
    """
    if "ts" not in attrs or "event" not in attrs:
        raise ValueError(f"BP message requires ts and event: {attrs!r}")
    parts: List[str] = []
    for key in ("ts", "event"):
        parts.append(f"{key}={quote_value(_stringify(attrs[key]))}")
    for key, value in attrs.items():
        if key in ("ts", "event"):
            continue
        if not _NAME_RE.fullmatch(key):
            raise ValueError(f"invalid BP attribute name: {key!r}")
        parts.append(f"{key}={quote_value(_stringify(value))}")
    return " ".join(parts)


def parse_bp_line(line: str, strict: bool = False) -> Dict[str, str]:
    """Parse one BP line into an ordered dict of string attributes.

    A name appearing more than once is ambiguous producer output.  By
    default the last occurrence wins (the historical NetLogger behaviour);
    with ``strict=True`` a duplicate raises :class:`BPParseError` instead.
    Callers that want to *report* duplicates without failing (e.g. the
    ``stampede-lint`` stream analyzer) should use :func:`parse_bp_pairs`,
    which preserves every occurrence.
    """
    attrs: Dict[str, str] = {}
    for key, value in _scan_pairs(line):
        if strict and key in attrs:
            raise BPParseError(f"duplicate attribute {key!r}", line, 0)
        attrs[key] = value
    if "ts" not in attrs:
        raise BPParseError("missing required attribute 'ts'", line, 0)
    if "event" not in attrs:
        raise BPParseError("missing required attribute 'event'", line, 0)
    return attrs


def parse_bp_pairs(line: str) -> List[Tuple[str, str]]:
    """Parse one BP line into (name, value) pairs, keeping duplicates.

    Unlike :func:`parse_bp_line` this performs no required-attribute checks
    and keeps repeated names, so callers can inspect exactly what the
    producer wrote.
    """
    return list(_scan_pairs(line))


def _scan_pairs(line: str) -> Iterator[Tuple[str, str]]:
    text = line.rstrip("\n")
    pos = 0
    length = len(text)
    while pos < length:
        # skip whitespace between pairs
        while pos < length and text[pos].isspace():
            pos += 1
        if pos >= length:
            break
        m = _NAME_RE.match(text, pos)
        if m is None:
            raise BPParseError("expected attribute name", text, pos)
        name = m.group(0)
        pos = m.end()
        if pos >= length or text[pos] != "=":
            raise BPParseError(f"expected '=' after {name!r}", text, pos)
        pos += 1
        if pos < length and text[pos] == '"':
            value, pos = _scan_quoted(text, pos)
        else:
            end = pos
            while end < length and not text[end].isspace():
                end += 1
            value = text[pos:end]
            pos = end
        yield name, value


def _scan_quoted(text: str, pos: int) -> Tuple[str, int]:
    """Scan a double-quoted value starting at the opening quote."""
    assert text[pos] == '"'
    pos += 1
    out: List[str] = []
    while pos < len(text):
        ch = text[pos]
        if ch == "\\":
            if pos + 1 >= len(text):
                raise BPParseError("dangling escape", text, pos)
            out.append(text[pos + 1])
            pos += 2
        elif ch == '"':
            return "".join(out), pos + 1
        else:
            out.append(ch)
            pos += 1
    raise BPParseError("unterminated quoted value", text, pos)


def _stringify(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        # Keep float rendering stable and compact for round-trips.
        return repr(value)
    return str(value)
