"""Streaming readers and writers for BP log files.

``nl_load`` reads its input either from a file or from an AMQP queue; this
module supplies the file side: line-oriented readers that tolerate blank
lines and comments, an error-collecting mode for partially corrupt logs,
and an appending writer that flushes per record (the "real-time" property
the paper leans on).
"""
from __future__ import annotations

import os
from typing import Callable, Iterable, Iterator, List, Optional, TextIO, Tuple, Union

from repro.netlogger.bp import BPParseError
from repro.netlogger.events import NLEvent

__all__ = [
    "BPReader",
    "BPWriter",
    "read_events",
    "write_events",
    "read_events_with_offsets",
    "read_lines",
    "read_lines_with_offsets",
    "tail_events",
    "tail_events_with_offsets",
    "tail_lines_with_offsets",
    "tail_raw",
]

PathOrFile = Union[str, os.PathLike, TextIO]


class BPReader:
    """Iterate NLEvents from a BP log stream.

    ``on_error`` controls handling of malformed lines:
      * ``'raise'``  — propagate BPParseError (default);
      * ``'skip'``   — drop the line, recording it in :attr:`errors`;
      * callable     — invoked with (line_number, line, exception).
    """

    def __init__(
        self,
        source: PathOrFile,
        on_error: Union[str, Callable[[int, str, Exception], None]] = "raise",
    ):
        self._source = source
        self._on_error = on_error
        self.errors: List[Tuple[int, str, Exception]] = []
        self.lines_read = 0

    def __iter__(self) -> Iterator[NLEvent]:
        close = False
        if isinstance(self._source, (str, os.PathLike)):
            fh: TextIO = open(self._source, "r", encoding="utf-8")
            close = True
        else:
            fh = self._source
        try:
            for lineno, line in enumerate(fh, start=1):
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                self.lines_read += 1
                try:
                    yield NLEvent.from_bp(stripped)
                except (BPParseError, ValueError) as exc:
                    if self._on_error == "raise":
                        raise
                    self.errors.append((lineno, stripped, exc))
                    if callable(self._on_error):
                        self._on_error(lineno, stripped, exc)
        finally:
            if close:
                fh.close()


class BPWriter:
    """Append NLEvents to a BP log file, flushing per event."""

    def __init__(self, target: PathOrFile, flush_every: int = 1):
        if isinstance(target, (str, os.PathLike)):
            self._fh: TextIO = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._flush_every = max(1, flush_every)
        self._pending = 0
        self.events_written = 0

    def write(self, event: NLEvent) -> None:
        self._fh.write(event.to_bp() + "\n")
        self.events_written += 1
        self._pending += 1
        if self._pending >= self._flush_every:
            self._fh.flush()
            self._pending = 0

    def write_all(self, events: Iterable[NLEvent]) -> int:
        count = 0
        for event in events:
            self.write(event)
            count += 1
        return count

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "BPWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(source: PathOrFile, on_error: str = "raise") -> List[NLEvent]:
    """Read an entire BP log into memory."""
    return list(BPReader(source, on_error=on_error))


def write_events(target: PathOrFile, events: Iterable[NLEvent]) -> int:
    """Write events to a BP log; returns the count written."""
    with BPWriter(target, flush_every=1000) as writer:
        return writer.write_all(events)


def read_lines(source: PathOrFile) -> Iterator[Tuple[str, int]]:
    """Yield ``(stripped_line, line_number)`` pairs, skipping blanks/comments.

    The raw-line feed for the parallel parse pipeline: filtering happens
    here on the coordinating thread so workers only ever see real BP
    payload lines.
    """
    close = False
    if isinstance(source, (str, os.PathLike)):
        fh: TextIO = open(source, "r", encoding="utf-8")
        close = True
    else:
        fh = source
    try:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            yield stripped, lineno
    finally:
        if close:
            fh.close()


def read_lines_with_offsets(
    path: Union[str, os.PathLike], start_offset: int = 0
) -> Iterator[Tuple[str, int]]:
    """Yield ``(stripped_line, byte_offset_after_its_line)`` pairs.

    The offset-tracking raw feed for a checkpointing parallel load:
    parsing is elsewhere, but the offsets measured here are exactly what
    :func:`read_events_with_offsets` reports for the same file.
    """
    with open(path, "rb") as fh:
        fh.seek(start_offset)
        offset = start_offset
        for raw in fh:
            offset += len(raw)
            stripped = raw.decode("utf-8").strip()
            if not stripped or stripped.startswith("#"):
                continue
            yield stripped, offset


def read_events_with_offsets(
    path: Union[str, os.PathLike],
    start_offset: int = 0,
    on_error: str = "raise",
) -> Iterator[Tuple[NLEvent, int]]:
    """Yield ``(event, byte_offset_after_its_line)`` pairs from a BP file.

    The offsets are what a checkpointing loader persists: re-opening the
    file and seeking to the stored offset resumes exactly after the last
    durably-archived event.  ``on_error='skip'`` drops malformed lines.
    """
    for stripped, offset in read_lines_with_offsets(path, start_offset):
        try:
            event = NLEvent.from_bp(stripped)
        except (BPParseError, ValueError):
            if on_error == "raise":
                raise
            continue
        yield event, offset


def tail_events(
    path: Union[str, os.PathLike],
    poll: Callable[[], bool],
    start_at_end: bool = False,
) -> Iterator[NLEvent]:
    """Follow a growing BP log file, ``tail -f`` style.

    ``poll()`` is consulted whenever the reader reaches EOF: returning False
    ends the iteration (e.g. when the producing workflow has finished).
    Partial last lines are retained until their newline arrives.
    """
    start = os.path.getsize(path) if start_at_end else 0
    for event, _offset in tail_events_with_offsets(path, poll, start_offset=start):
        yield event


def tail_events_with_offsets(
    path: Union[str, os.PathLike],
    poll: Callable[[], bool],
    start_offset: int = 0,
) -> Iterator[Tuple[NLEvent, int]]:
    """Offset-reporting variant of :func:`tail_events`.

    Yields ``(event, byte_offset_after_its_line)``; reading starts at
    ``start_offset`` so a checkpointed follower resumes mid-file.
    """
    for kind, line, offset in tail_raw(path, poll, start_offset=start_offset):
        if kind == "line":
            yield NLEvent.from_bp(line), offset


def tail_lines_with_offsets(
    path: Union[str, os.PathLike],
    poll: Callable[[], bool],
    start_offset: int = 0,
) -> Iterator[Tuple[str, int]]:
    """Raw-line variant of :func:`tail_events_with_offsets` (no parsing)."""
    for kind, line, offset in tail_raw(path, poll, start_offset=start_offset):
        if kind == "line":
            yield line, offset


def tail_raw(
    path: Union[str, os.PathLike],
    poll: Callable[[], bool],
    start_offset: int = 0,
) -> Iterator[Tuple[str, Optional[str], int]]:
    """Follow a growing file, yielding ``('line', text, offset)`` items.

    An ``('eof', None, offset)`` marker is emitted every time the reader
    catches up with the file, *before* ``poll()`` is consulted — a
    batching consumer (the parallel-parse follower) uses it to drain its
    buffered lines so progress made so far is visible to whatever state
    ``poll()`` inspects.  Partial last lines are retained until their
    newline arrives; on shutdown a non-empty partial line is emitted.
    """
    with open(path, "rb") as fh:
        fh.seek(start_offset)
        buffer = b""
        offset = start_offset
        while True:
            chunk = fh.readline()
            if chunk:
                buffer += chunk
                if buffer.endswith(b"\n"):
                    offset += len(buffer)
                    stripped = buffer.decode("utf-8").strip()
                    buffer = b""
                    if stripped and not stripped.startswith("#"):
                        yield "line", stripped, offset
                continue
            yield "eof", None, offset
            if not poll():
                if buffer.strip():
                    offset += len(buffer)
                    yield "line", buffer.decode("utf-8").strip(), offset
                return
