"""Event-stream utilities: filtering, windowing, sampling, splitting.

Composable generators over NLEvent iterables — the glue the paper's
"flexibility in gluing together analysis components" relies on when a
consumer wants a refined view of the stream (a time window, one
workflow's events, a sampled sub-stream for cheap statistics).
"""
from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.bus.topic import topic_matches
from repro.netlogger.events import NLEvent

__all__ = [
    "by_pattern",
    "by_workflow",
    "by_time_window",
    "sample",
    "split_by_workflow",
    "event_counts",
]


def by_pattern(events: Iterable[NLEvent], pattern: str) -> Iterator[NLEvent]:
    """Keep events whose name matches an AMQP topic pattern."""
    for event in events:
        if topic_matches(pattern, event.event):
            yield event


def by_workflow(events: Iterable[NLEvent], xwf_id: str) -> Iterator[NLEvent]:
    """Keep one workflow's events (matching the ``xwf.id`` attribute)."""
    for event in events:
        if str(event.get("xwf.id", "")) == xwf_id:
            yield event


def by_time_window(
    events: Iterable[NLEvent],
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> Iterator[NLEvent]:
    """Keep events with ``start <= ts < end`` (either bound optional)."""
    for event in events:
        if start is not None and event.ts < start:
            continue
        if end is not None and event.ts >= end:
            continue
        yield event


def sample(
    events: Iterable[NLEvent],
    fraction: float,
    seed: int = 0,
    always_keep: str = "stampede.xwf.#",
) -> Iterator[NLEvent]:
    """Randomly keep ~``fraction`` of the stream (deterministic per seed).

    Workflow-lifecycle events matching ``always_keep`` are never dropped,
    so sampled streams still delimit runs correctly.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = np.random.Generator(np.random.PCG64(seed))
    for event in events:
        if topic_matches(always_keep, event.event) or rng.random() < fraction:
            yield event


def split_by_workflow(events: Iterable[NLEvent]) -> Dict[str, List[NLEvent]]:
    """Partition a mixed stream into per-workflow lists (keyed by xwf.id)."""
    streams: Dict[str, List[NLEvent]] = {}
    for event in events:
        key = str(event.get("xwf.id", ""))
        streams.setdefault(key, []).append(event)
    return streams


def event_counts(events: Iterable[NLEvent]) -> Dict[str, int]:
    """Histogram of event types in a stream."""
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.event] = counts.get(event.event, 0) + 1
    return counts
