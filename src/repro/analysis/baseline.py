"""Baseline (suppression) files for stampede-devlint.

A baseline turns existing debt into a tracked, reviewable artifact
instead of noise: ``stampede-devlint --write-baseline`` records every
current finding's fingerprint (rule + file + scope + detail — stable
across line drift), and subsequent runs with ``--baseline`` fail only on
*new* findings.  Entries carry a free-form ``justification`` so an
intentional pattern (a connection lock held across a transaction scope,
say) documents *why* it is exempt right where it is exempted.

Stale entries — fingerprints no longer produced by the analyzers — are
reported so the baseline shrinks as debt is paid down, but they never
fail the run on their own.
"""
from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.rules import Finding

__all__ = ["Baseline", "BaselineEntry", "split_findings"]

_VERSION = 1


@dataclass
class BaselineEntry:
    fingerprint: str
    rule: str = ""
    file: str = ""
    scope: str = ""
    detail: str = ""
    justification: str = ""

    def to_dict(self) -> Dict[str, str]:
        out = {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "file": self.file,
            "scope": self.scope,
            "detail": self.detail,
        }
        if self.justification:
            out["justification"] = self.justification
        return out


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)

    @property
    def fingerprints(self) -> Dict[str, BaselineEntry]:
        return {e.fingerprint: e for e in self.entries}

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict) or "suppressions" not in doc:
            raise ValueError(f"{path}: not a devlint baseline file")
        entries = [
            BaselineEntry(
                fingerprint=str(e["fingerprint"]),
                rule=str(e.get("rule", "")),
                file=str(e.get("file", "")),
                scope=str(e.get("scope", "")),
                detail=str(e.get("detail", "")),
                justification=str(e.get("justification", "")),
            )
            for e in doc["suppressions"]
        ]
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        seen: Dict[str, BaselineEntry] = {}
        for f in findings:
            fp = f.fingerprint()
            if fp not in seen:
                seen[fp] = BaselineEntry(
                    fingerprint=fp,
                    rule=f.rule_id,
                    file=f.file,
                    scope=f.scope,
                    detail=f.detail,
                    justification="",
                )
        return cls(entries=list(seen.values()))

    def save(self, path: str) -> None:
        doc = {
            "version": _VERSION,
            "tool": "stampede-devlint",
            "suppressions": [
                e.to_dict()
                for e in sorted(self.entries, key=lambda e: (e.file, e.rule, e.scope))
            ],
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)


def split_findings(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Partition into (new, suppressed, stale-baseline-entries)."""
    known = baseline.fingerprints
    new: List[Finding] = []
    suppressed: List[Finding] = []
    seen_fps = set()
    for f in findings:
        fp = f.fingerprint()
        if fp in known:
            suppressed.append(f)
            seen_fps.add(fp)
        else:
            new.append(f)
    stale = [e for fp, e in known.items() if fp not in seen_fps]
    return new, suppressed, stale
