"""repro.analysis — concurrency-correctness tooling for the pipeline's code.

Two prongs:

* **Static** (:mod:`repro.analysis.guards`, :mod:`repro.analysis.rules`,
  the ``stampede-devlint`` CLI in :mod:`repro.analysis.cli`): an AST pass
  over ``src/repro`` that infers per-class lock-guard relationships and
  reports unguarded accesses, blocking calls under locks, manual
  acquire/release, and project invariants (hot-loop counter increments,
  wall-clock interval math, bare excepts) — with a committed baseline
  (:mod:`repro.analysis.baseline`) so existing debt is tracked, not
  ignored.

* **Runtime** (:mod:`repro.analysis.sanitizer`): instrumented
  ``Lock``/``RLock``/``Condition`` factories that record per-thread
  acquisition stacks, maintain a lock-order graph over lock *classes*
  (allocation sites, à la lockdep), flag cycles (potential ABBA
  deadlocks) and contention/hold hot spots, and emit a JSON report.
  Opt-in via ``STAMPEDE_SANITIZE=1`` (the test suite's conftest installs
  it) — zero overhead when disabled.
"""
from repro.analysis.baseline import Baseline, BaselineEntry, split_findings
from repro.analysis.cli import analyze_path, analyze_source, iter_python_files, main
from repro.analysis.guards import check_guards
from repro.analysis.rules import DEV_RULES, DevRule, Finding, Severity, check_invariants
from repro.analysis.sanitizer import LockSanitizer

__all__ = [
    "Baseline",
    "BaselineEntry",
    "split_findings",
    "analyze_path",
    "analyze_source",
    "iter_python_files",
    "main",
    "check_guards",
    "check_invariants",
    "DEV_RULES",
    "DevRule",
    "Finding",
    "Severity",
    "LockSanitizer",
]
