"""Runtime lock-order sanitizer: instrumented threading primitives.

The static pass (:mod:`repro.analysis.guards`) sees one class at a time;
deadlocks live *between* classes.  This module wraps
``threading.Lock``/``RLock``/``Condition`` with recording versions that:

* group locks into **lock classes** by allocation site (every
  ``MessageQueue._lock`` is one node — the lockdep model), so ordering
  facts generalize across instances;
* keep a per-thread stack of held locks with acquisition backtraces;
* maintain a global **lock-order graph**: holding A while acquiring B
  adds edge A→B; a cycle in that graph is a potential deadlock (the
  ABBA pattern) and is reported with both acquisition stacks even though
  no thread ever actually blocked;
* measure **contention** (time spent waiting to acquire) and **hold
  times** per lock class;
* detect same-thread re-acquisition of a non-reentrant lock (certain
  self-deadlock) and raise instead of hanging the test run.

Activation is opt-in: ``LockSanitizer().install()`` monkeypatches the
``threading`` factories, attributing each creation to the module that
called the factory — only modules matching the configured prefixes
(default ``repro``) get sanitized locks, so pytest/stdlib internals stay
untouched.  ``STAMPEDE_SANITIZE=1`` makes the test suite's conftest
install one for the whole session and write a JSON report
(``STAMPEDE_SANITIZE_REPORT``, default ``lock-order-report.json``);
``python -m repro.analysis.sanitizer --check report.json`` gates CI on a
cycle-free graph.  When not installed, nothing is patched — the
disabled-mode overhead is exactly zero.

Known limits (documented in docs/analysis.md): locks created before
``install()`` are invisible, as are locks whose factory reference was
captured at import time (``field(default_factory=threading.Lock)``
stores the original factory), and ordering is only observed, never
proven absent — an untraveled code path contributes no edges.
"""
from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "LockSanitizer",
    "SelfDeadlockError",
    "ENV_FLAG",
    "ENV_REPORT",
    "enabled_from_env",
    "main",
]

ENV_FLAG = "STAMPEDE_SANITIZE"
ENV_REPORT = "STAMPEDE_SANITIZE_REPORT"

#: acquire-wait above this counts as a contended acquisition
CONTENTION_THRESHOLD = 1e-3
#: holds above this are tallied as long holds
LONG_HOLD_THRESHOLD = 0.05

_TRUTHY = ("1", "true", "yes", "on")

#: modules whose frames are "transparent" when attributing lock creation
_SKIP_MODULES = (__name__, "threading", "dataclasses", "contextlib", "functools")


def enabled_from_env() -> bool:
    return os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY


class SelfDeadlockError(RuntimeError):
    """A thread re-acquired a non-reentrant lock it already holds."""


class _LockClass:
    """Aggregate stats for every lock allocated at one source site."""

    __slots__ = (
        "key", "kind", "created", "acquisitions", "contended",
        "total_wait", "total_hold", "max_hold", "long_holds",
    )

    def __init__(self, key: str, kind: str):
        self.key = key
        self.kind = kind
        self.created = 0
        self.acquisitions = 0
        self.contended = 0
        self.total_wait = 0.0
        self.total_hold = 0.0
        self.max_hold = 0.0
        self.long_holds = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "created": self.created,
            "acquisitions": self.acquisitions,
            "contended": self.contended,
            "total_wait_s": round(self.total_wait, 6),
            "total_hold_s": round(self.total_hold, 6),
            "max_hold_s": round(self.max_hold, 6),
            "long_holds": self.long_holds,
        }


class _Edge:
    """First-observed stacks + tally for one ordered lock-class pair."""

    __slots__ = ("count", "threads", "from_stack", "to_stack")

    def __init__(self, from_stack: List[str], to_stack: List[str]):
        self.count = 0
        self.threads: Set[str] = set()
        self.from_stack = from_stack
        self.to_stack = to_stack


class _Held:
    """One entry on a thread's held-lock stack."""

    __slots__ = ("lock", "t0", "stack", "count")

    def __init__(self, lock: "_SanitizedLock", t0: float, stack: List[str]):
        self.lock = lock
        self.t0 = t0
        self.stack = stack
        self.count = 1


class _SanitizedLock:
    """Recording proxy around a real Lock/RLock.

    Implements the full lock protocol plus the private hooks
    (``_release_save``/``_acquire_restore``/``_is_owned``) that
    ``threading.Condition`` uses, so a condition built over a sanitized
    lock keeps the held-state bookkeeping exact across ``wait()``.
    """

    __slots__ = ("_san", "_real", "_lclass", "_reentrant")

    def __init__(self, san: "LockSanitizer", real, lclass: _LockClass, reentrant: bool):
        self._san = san
        self._real = real
        self._lclass = lclass
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        san = self._san
        if not self._reentrant and blocking and timeout < 0:
            for held in san._thread_held():
                if held.lock is self:
                    san._record_self_deadlock(self, held)
                    raise SelfDeadlockError(
                        f"thread {threading.current_thread().name!r} would "
                        f"deadlock re-acquiring {self._lclass.key}"
                    )
        t0 = time.monotonic()
        ok = self._real.acquire(blocking, timeout)
        if ok:
            san._on_acquired(self, time.monotonic() - t0)
        return ok

    def release(self) -> None:
        self._san._on_release(self)
        self._real.release()

    def locked(self) -> bool:
        real_locked = getattr(self._real, "locked", None)
        if real_locked is not None:
            return real_locked()
        return self._san._held_count(self) > 0  # RLock < 3.12

    def __enter__(self) -> "_SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    # -- threading.Condition integration --------------------------------
    def _release_save(self) -> int:
        count = self._san._held_count(self)
        if count <= 0:
            raise RuntimeError("cannot wait on an un-acquired lock")
        for _ in range(count):
            self.release()
        return count

    def _acquire_restore(self, saved: int) -> None:
        for _ in range(saved):
            self.acquire()

    def _is_owned(self) -> bool:
        return self._san._held_count(self) > 0

    def __repr__(self) -> str:
        return f"<sanitized {self._lclass.kind} {self._lclass.key}>"


class LockSanitizer:
    """Builds sanitized primitives, tracks ordering, reports violations."""

    _installed: Optional["LockSanitizer"] = None

    def __init__(self, stack_limit: int = 16, prefixes: Sequence[str] = ("repro",)):
        self.stack_limit = stack_limit
        self.prefixes = tuple(prefixes)
        # real factories captured now, in case install() patches later
        self._real_lock = threading.Lock
        self._real_rlock = threading.RLock
        self._real_condition = threading.Condition
        self._mu = self._real_lock()  # internal; never sanitized
        self._tls = threading.local()
        self._classes: Dict[str, _LockClass] = {}
        self._graph: Dict[str, Dict[str, _Edge]] = {}
        self._cycles: List[Dict[str, object]] = []
        self._cycle_sigs: Set[frozenset] = set()
        self._self_nesting: Dict[str, int] = {}
        self._self_deadlocks: List[Dict[str, object]] = []
        self._saved_factories: Optional[Tuple] = None

    # -- public construction (direct use; tests, explicit wiring) --------
    def lock(self, name: Optional[str] = None) -> _SanitizedLock:
        return self._new(False, name)

    def rlock(self, name: Optional[str] = None) -> _SanitizedLock:
        return self._new(True, name)

    def condition(self, lock=None, name: Optional[str] = None):
        if lock is None:
            lock = self.rlock(name=name)
        return self._real_condition(lock)

    def _new(self, reentrant: bool, name: Optional[str]) -> _SanitizedLock:
        key = name or self._creation_site()
        kind = "RLock" if reentrant else "Lock"
        with self._mu:
            lclass = self._classes.get(key)
            if lclass is None:
                lclass = self._classes[key] = _LockClass(key, kind)
            lclass.created += 1
        real = self._real_rlock() if reentrant else self._real_lock()
        return _SanitizedLock(self, real, lclass, reentrant)

    # -- install / uninstall ---------------------------------------------
    def install(self) -> "LockSanitizer":
        """Patch the ``threading`` factories (LIFO-nestable)."""
        if self._saved_factories is not None:
            raise RuntimeError("sanitizer already installed")
        self._saved_factories = (
            threading.Lock, threading.RLock, threading.Condition,
        )
        san = self

        def lock_factory():
            if san._watched_caller():
                return san._new(False, None)
            return san._real_lock()

        def rlock_factory():
            if san._watched_caller():
                return san._new(True, None)
            return san._real_rlock()

        def condition_factory(lock=None):
            if san._watched_caller():
                if lock is None:
                    lock = san._new(True, None)
                return san._real_condition(lock)
            return san._real_condition(lock)

        threading.Lock = lock_factory  # type: ignore[assignment]
        threading.RLock = rlock_factory  # type: ignore[assignment]
        threading.Condition = condition_factory  # type: ignore[assignment]
        LockSanitizer._installed = self
        return self

    def uninstall(self) -> None:
        if self._saved_factories is None:
            return
        threading.Lock, threading.RLock, threading.Condition = (  # type: ignore[misc]
            self._saved_factories
        )
        self._saved_factories = None
        if LockSanitizer._installed is self:
            LockSanitizer._installed = None

    # -- frame attribution ------------------------------------------------
    def _walk_frames(self, skip: int = 2):
        try:
            frame = sys._getframe(skip)
        except ValueError:  # pragma: no cover - shallow stack
            return
        depth = 0
        while frame is not None and depth < self.stack_limit + 8:
            yield frame
            frame = frame.f_back
            depth += 1

    def _watched_caller(self) -> bool:
        for frame in self._walk_frames(skip=2):
            mod = frame.f_globals.get("__name__", "")
            if mod in _SKIP_MODULES or not mod:
                continue
            return any(
                mod == p or mod.startswith(p + ".") for p in self.prefixes
            )
        return False

    def _creation_site(self) -> str:
        for frame in self._walk_frames(skip=3):
            mod = frame.f_globals.get("__name__", "")
            if mod in _SKIP_MODULES or not mod:
                continue
            return f"{_short_path(frame.f_code.co_filename)}:{frame.f_lineno}"
        return "<unknown>"

    def _capture_stack(self) -> List[str]:
        frames = []
        for frame in self._walk_frames(skip=3):
            mod = frame.f_globals.get("__name__", "")
            if mod == __name__:
                continue
            frames.append(
                f"{_short_path(frame.f_code.co_filename)}:{frame.f_lineno} "
                f"in {frame.f_code.co_name}"
            )
            if len(frames) >= self.stack_limit:
                break
        return frames

    # -- held-state bookkeeping -------------------------------------------
    def _thread_held(self) -> List[_Held]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def _held_count(self, lock: _SanitizedLock) -> int:
        for held in self._thread_held():
            if held.lock is lock:
                return held.count
        return 0

    def _on_acquired(self, lock: _SanitizedLock, wait: float) -> None:
        lclass = lock._lclass
        with self._mu:
            lclass.acquisitions += 1
            lclass.total_wait += wait
            if wait > CONTENTION_THRESHOLD:
                lclass.contended += 1
        held = self._thread_held()
        for entry in held:
            if entry.lock is lock:  # reentrant re-acquire
                entry.count += 1
                return
        stack = self._capture_stack()
        for entry in held:
            if entry.lock._lclass.key == lclass.key:
                # same class, different instance: ordering between
                # instances is unknowable from sites alone — reported
                # separately, not as a cycle
                with self._mu:
                    self._self_nesting[lclass.key] = (
                        self._self_nesting.get(lclass.key, 0) + 1
                    )
            else:
                self._add_edge(entry, lock, stack)
        held.append(_Held(lock, time.monotonic(), stack))

    def _on_release(self, lock: _SanitizedLock) -> None:
        held = self._thread_held()
        for i in range(len(held) - 1, -1, -1):
            entry = held[i]
            if entry.lock is lock:
                if entry.count > 1:
                    entry.count -= 1
                    return
                del held[i]
                hold = time.monotonic() - entry.t0
                lclass = lock._lclass
                with self._mu:
                    lclass.total_hold += hold
                    if hold > lclass.max_hold:
                        lclass.max_hold = hold
                    if hold > LONG_HOLD_THRESHOLD:
                        lclass.long_holds += 1
                return
        # releasing a lock this thread never acquired: let the real
        # primitive raise its own error on the outer release() call

    def _add_edge(self, from_held: _Held, to_lock: _SanitizedLock, to_stack: List[str]) -> None:
        a = from_held.lock._lclass.key
        b = to_lock._lclass.key
        thread = threading.current_thread().name
        with self._mu:
            edges = self._graph.setdefault(a, {})
            edge = edges.get(b)
            is_new = edge is None
            if edge is None:
                edge = edges[b] = _Edge(list(from_held.stack), list(to_stack))
            edge.count += 1
            edge.threads.add(thread)
            if is_new:
                self._check_cycle_locked(a, b)

    def _check_cycle_locked(self, a: str, b: str) -> None:
        """After adding a→b, search b→…→a; must hold ``self._mu``."""
        path = self._find_path(b, a)
        if path is None:
            return
        nodes = [a] + path  # a → b → … → a
        sig = frozenset(nodes)
        if sig in self._cycle_sigs:
            return
        self._cycle_sigs.add(sig)
        cycle_edges = []
        hops = [(a, b)] + [(path[i], path[i + 1]) for i in range(len(path) - 1)]
        for src, dst in hops:
            edge = self._graph[src][dst]
            cycle_edges.append({
                "from": src,
                "to": dst,
                "count": edge.count,
                "threads": sorted(edge.threads),
                "holding_stack": edge.from_stack,
                "acquiring_stack": edge.to_stack,
            })
        self._cycles.append({"nodes": nodes[:-1], "edges": cycle_edges})

    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS path start→…→goal through the order graph (inclusive)."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in self._graph.get(node, {}):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def _record_self_deadlock(self, lock: _SanitizedLock, held: _Held) -> None:
        with self._mu:
            self._self_deadlocks.append({
                "lock": lock._lclass.key,
                "thread": threading.current_thread().name,
                "first_acquired_at": held.stack,
                "reacquired_at": self._capture_stack(),
            })

    # -- reporting ---------------------------------------------------------
    @property
    def cycles(self) -> List[Dict[str, object]]:
        with self._mu:
            return list(self._cycles)

    @property
    def self_deadlocks(self) -> List[Dict[str, object]]:
        with self._mu:
            return list(self._self_deadlocks)

    def report(self) -> Dict[str, object]:
        with self._mu:
            return {
                "tool": "lock-order-sanitizer",
                "prefixes": list(self.prefixes),
                "lock_classes": {
                    key: lclass.to_dict()
                    for key, lclass in sorted(self._classes.items())
                },
                "edges": [
                    {
                        "from": a,
                        "to": b,
                        "count": edge.count,
                        "threads": sorted(edge.threads),
                    }
                    for a, targets in sorted(self._graph.items())
                    for b, edge in sorted(targets.items())
                ],
                "cycles": list(self._cycles),
                "self_nesting": dict(sorted(self._self_nesting.items())),
                "self_deadlocks": list(self._self_deadlocks),
            }

    def write_report(self, path: str) -> Dict[str, object]:
        doc = self.report()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return doc


def _short_path(path: str) -> str:
    norm = path.replace(os.sep, "/")
    for anchor in ("/src/", "/tests/"):
        idx = norm.rfind(anchor)
        if idx >= 0:
            return norm[idx + 1:]
    return "/".join(norm.rsplit("/", 2)[-2:])


# --------------------------------------------------------------------------
# report gate: python -m repro.analysis.sanitizer --check report.json
# --------------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.sanitizer",
        description="Inspect/gate a lock-order sanitizer JSON report.",
    )
    parser.add_argument("--check", metavar="REPORT", required=True,
                        help="fail (exit 1) if the report contains lock-order "
                             "cycles or self-deadlocks")
    args = parser.parse_args(argv)
    try:
        with open(args.check, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"sanitizer-check: cannot read report: {exc}", file=sys.stderr)
        return 2
    classes = doc.get("lock_classes", {})
    cycles = doc.get("cycles", [])
    deadlocks = doc.get("self_deadlocks", [])
    total_acq = sum(c.get("acquisitions", 0) for c in classes.values())
    print(
        f"lock classes: {len(classes)}, acquisitions: {total_acq}, "
        f"order edges: {len(doc.get('edges', []))}, cycles: {len(cycles)}, "
        f"self-deadlocks: {len(deadlocks)}"
    )
    for cycle in cycles:
        print(f"CYCLE: {' -> '.join(cycle['nodes'])} -> {cycle['nodes'][0]}")
        for edge in cycle["edges"]:
            print(f"  {edge['from']} held while acquiring {edge['to']} "
                  f"(x{edge['count']}, threads: {', '.join(edge['threads'])})")
            for line in edge["acquiring_stack"][:6]:
                print(f"    {line}")
    for dl in deadlocks:
        print(f"SELF-DEADLOCK: {dl['lock']} re-acquired by {dl['thread']}")
    return 1 if cycles or deadlocks else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
