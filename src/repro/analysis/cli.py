"""stampede-devlint: concurrency/code lint for the pipeline's own source.

Usage::

    stampede-devlint src/repro
    stampede-devlint --baseline analysis-baseline.json src/repro
    stampede-devlint --write-baseline analysis-baseline.json src/repro
    stampede-devlint --format json --select SDL1 src/repro
    stampede-devlint --list-rules

Exit codes mirror stampede-lint: 0 = no (non-baselined) findings at or
above ``--fail-on`` (default ``warning``); 1 = findings; 2 = usage
error.
"""
from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from typing import Iterator, List, Optional, Sequence

from repro.analysis.baseline import Baseline, split_findings
from repro.analysis.guards import check_guards
from repro.analysis.rules import (
    DEV_RULES,
    Finding,
    Severity,
    apply_suppressions,
    check_invariants,
    make_finding,
)

__all__ = [
    "analyze_source",
    "analyze_path",
    "iter_python_files",
    "build_parser",
    "main",
]

USAGE_ERROR = 2


def analyze_source(text: str, path: str) -> List[Finding]:
    """All devlint findings for one module's source text."""
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return [make_finding(
            "SDL001", f"cannot parse: {exc.msg}", path, exc.lineno or 0
        )]
    findings = check_guards(tree, path) + check_invariants(tree, path)
    findings = apply_suppressions(findings, text)
    findings.sort(key=lambda f: (f.file, f.line, f.rule_id))
    return findings


def analyze_path(path: str) -> List[Finding]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        return [make_finding("SDL001", f"cannot read input: {exc}", path, 0)]
    return analyze_source(text, path)


def iter_python_files(root: str) -> Iterator[str]:
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith((".", "__pycache__")))
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _match_rules(finding: Finding, prefixes: Sequence[str]) -> bool:
    return any(finding.rule_id.startswith(p) for p in prefixes)


def _render_text(
    new: List[Finding], suppressed: List[Finding], stale: list, verbose: bool
) -> str:
    lines = [str(f) for f in new]
    if new:
        lines.append(f"{len(new)} finding(s)")
    else:
        lines.append("no findings")
    if suppressed:
        lines.append(f"{len(suppressed)} baselined finding(s) suppressed")
    for entry in stale:
        lines.append(
            f"stale baseline entry {entry.fingerprint} "
            f"({entry.rule} {entry.file} {entry.scope}) — remove it"
        )
    if verbose and new:
        lines.append("")
        for rule_id in sorted({f.rule_id for f in new}):
            rule = DEV_RULES[rule_id]
            lines.append(f"  {rule}: {rule.summary}")
    return "\n".join(lines)


def _render_json(new: List[Finding], suppressed: List[Finding], stale: list) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in new],
            "suppressed": len(suppressed),
            "stale_baseline": [e.to_dict() for e in stale],
            "summary": {
                "total": len(new),
                **{
                    str(sev): sum(1 for f in new if f.severity == sev)
                    for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
                },
            },
        },
        indent=2,
        sort_keys=True,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stampede-devlint",
        description=(
            "Static concurrency-correctness analysis over the monitoring "
            "pipeline's own Python source: lock-guard inference, blocking-"
            "under-lock, manual acquire/release, and project invariants."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", action="append", default=[], metavar="RULES",
        help="comma-separated rule ids/prefixes to run exclusively",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="RULES",
        help="comma-separated rule ids/prefixes to skip",
    )
    parser.add_argument(
        "--fail-on", choices=("error", "warning", "info"), default="warning",
        help="lowest severity that makes the exit code non-zero",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="suppress findings fingerprinted in this baseline file",
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


def _split_ids(values: List[str]) -> List[str]:
    return [part for value in values for part in value.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print("\n".join(
            f"{rule.rule_id}  {str(rule.severity):7s}  "
            f"{rule.name}: {rule.summary}"
            for rule in DEV_RULES.values()
        ))
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("stampede-devlint: error: no paths given", file=sys.stderr)
        return USAGE_ERROR

    findings: List[Finding] = []
    for root in args.paths:
        if not os.path.exists(root):
            print(f"stampede-devlint: error: no such path {root!r}", file=sys.stderr)
            return USAGE_ERROR
        for path in iter_python_files(root):
            findings.extend(analyze_path(path))

    select = _split_ids(args.select)
    ignore = _split_ids(args.ignore)
    if select:
        findings = [f for f in findings if _match_rules(f, select)]
    if ignore:
        findings = [f for f in findings if not _match_rules(f, ignore)]

    if args.write_baseline:
        Baseline.from_findings(findings).save(args.write_baseline)
        print(
            f"wrote {len({f.fingerprint() for f in findings})} suppression(s) "
            f"to {args.write_baseline}"
        )
        return 0

    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"stampede-devlint: error: {exc}", file=sys.stderr)
            return USAGE_ERROR
        new, suppressed, stale = split_findings(findings, baseline)
    else:
        new, suppressed, stale = findings, [], []

    print(
        _render_json(new, suppressed, stale) if args.format == "json"
        else _render_text(new, suppressed, stale, verbose=args.verbose)
    )
    threshold = Severity.parse(args.fail_on)
    return 1 if any(f.severity >= threshold for f in new) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
