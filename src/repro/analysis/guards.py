"""Lock-guard inference and concurrency checks over Python source (SDL1xx).

The model, per class:

1. **Lock discovery.**  An attribute is a *lock* when it is assigned a
   ``threading.Lock()`` / ``threading.RLock()`` (or a dataclass field
   with one of those as ``default_factory``), when its name suggests one
   (``lock``/``mutex`` substrings on ``__init__`` assignments), or when
   it is a ``threading.Condition``: a condition constructed around
   ``self.X`` *aliases* to lock ``X`` (entering the condition enters the
   lock — the two-condition/one-lock protocol ``bus.queues`` uses), and
   an argument-less condition is its own lock.

2. **Guarded regions.**  Statements inside ``with self.<lock>:`` (or an
   aliased condition) run with the lock held.  Held state propagates two
   more ways: a private method whose every intra-class call site is
   inside a guarded region is analyzed as *guarded context* (the
   ``_require``-style helper pattern), and a method called only from
   ``__init__``/``__new__``/``__post_init__`` is *construction context*
   — the instance is not shared yet, so its accesses are exempt.

3. **Inference.**  An attribute is *guarded* when it is accessed under
   the lock at least :data:`MIN_GUARDED_ACCESSES` times and more often
   guarded than not (construction context excluded).  Every remaining
   unguarded access to a guarded attribute is an SDL101 finding — the
   shape of the LoaderStats torn-read bug PR 5 fixed by hand.

While walking, two more checks ride along: SDL102 (a blocking call —
``time.sleep``, queue ``get``/``put``, socket ops, bus ``publish``,
``Database.transaction`` — while any lock is held) and SDL103 (a manual
``.acquire()`` statement whose very next statement is not a
``try/finally`` releasing the same lock).  ``Condition.wait`` is *not*
blocking-under-lock: it releases the lock it waits on.

Module-level locks (``_default_lock = threading.Lock()``) participate in
held-state tracking for SDL102/103, but guard inference is per-class
only — cross-object patterns (``loader.stats.x += 1``) are out of scope
and belong to the runtime sanitizer.
"""
from __future__ import annotations

import ast
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.analysis.rules import Finding, make_finding

__all__ = ["check_guards", "MIN_GUARDED_ACCESSES", "BLOCKING_METHODS"]

#: Minimum locked accesses before an attribute can be inferred guarded.
MIN_GUARDED_ACCESSES = 2

#: Method names whose invocation blocks (or may block) the caller.
BLOCKING_METHODS = frozenset({
    "publish", "transaction", "recv", "send", "sendall", "accept",
    "connect", "create_connection", "getaddrinfo", "urlopen",
})

#: Constructor-shaped methods: the instance is not yet shared, so
#: unguarded accesses there are safe and excluded from inference.
_CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})


def _factory_kind(node: ast.AST) -> Optional[str]:
    """'Lock' / 'RLock' / 'Condition' when node calls a threading factory."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
    ):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    else:
        return None
    return name if name in (_LOCK_FACTORIES | {"Condition"}) else None


def _factory_ref_kind(node: ast.AST) -> Optional[str]:
    """Same, for a bare reference (``default_factory=threading.Lock``)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "threading"
        and node.attr in _LOCK_FACTORIES
    ):
        return node.attr
    if isinstance(node, ast.Name) and node.id in _LOCK_FACTORIES:
        return node.id
    return None


def _is_self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lockish_name(name: str) -> bool:
    # token match, not substring: 'seq_lock' and 'mutex' qualify, but
    # 'clock'/'blocked' must not
    tokens = name.lower().split("_")
    return any(t in ("lock", "rlock", "mutex", "mu") for t in tokens)


class _Access(NamedTuple):
    attr: str
    line: int
    guarded: bool
    store: bool
    method: str


class _SelfCall(NamedTuple):
    callee: str
    guarded: bool
    caller: str


class _ClassLocks:
    """Lock attributes of one class, with condition aliasing."""

    def __init__(self) -> None:
        self.locks: Set[str] = set()
        self.aliases: Dict[str, str] = {}  # condition attr -> lock attr

    def canonical(self, attr: str) -> Optional[str]:
        if attr in self.locks:
            return attr
        if attr in self.aliases:
            return self.aliases[attr]
        if _lockish_name(attr):
            return attr
        return None

    def is_lock_attr(self, attr: str) -> bool:
        return self.canonical(attr) is not None


def _discover_locks(cls: ast.ClassDef) -> _ClassLocks:
    info = _ClassLocks()
    pending_conditions: List[Tuple[str, Optional[str]]] = []
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        kind = _factory_kind(value)
        # dataclass field(default_factory=threading.Lock)
        if (
            kind is None
            and isinstance(value, ast.Call)
            and isinstance(value.func, (ast.Name, ast.Attribute))
            and (
                value.func.id if isinstance(value.func, ast.Name)
                else value.func.attr
            ) == "field"
        ):
            for kw in value.keywords:
                if kw.arg == "default_factory" and _factory_ref_kind(kw.value):
                    kind = _factory_ref_kind(kw.value)
        for target in targets:
            attr = _is_self_attr(target)
            if attr is None and isinstance(target, ast.Name):
                attr = target.id  # class-body assignment / dataclass field
            if attr is None:
                continue
            if kind in _LOCK_FACTORIES:
                info.locks.add(attr)
            elif kind == "Condition":
                arg = None
                if isinstance(value, ast.Call) and value.args:
                    arg = _is_self_attr(value.args[0])
                pending_conditions.append((attr, arg))
            elif _lockish_name(attr) and attr not in info.locks:
                # e.g. ``self._lock = lock`` (injected lock)
                info.locks.add(attr)
    for cond_attr, lock_attr in pending_conditions:
        if lock_attr is not None and lock_attr in info.locks:
            info.aliases[cond_attr] = lock_attr
        else:
            info.locks.add(cond_attr)  # argless Condition owns its lock
    return info


class _FuncWalker(ast.NodeVisitor):
    """Walk one function/method tracking held locks.

    Records self-attribute accesses and intra-class calls (for guard
    inference) and emits SDL102 findings inline.
    """

    def __init__(
        self,
        path: str,
        scope: str,
        method: str,
        class_locks: Optional[_ClassLocks],
        module_locks: Set[str],
        findings: List[Finding],
    ):
        self.path = path
        self.scope = scope
        self.method = method
        self.class_locks = class_locks
        self.module_locks = module_locks
        self.findings = findings
        self.held: List[str] = []  # display names, innermost last
        self.held_class: List[str] = []  # canonical class-lock names
        self.accesses: List[_Access] = []
        self.self_calls: List[_SelfCall] = []

    # -- lock resolution -----------------------------------------------
    def _as_lock(self, expr: ast.AST) -> Optional[Tuple[str, Optional[str]]]:
        """(display, canonical-class-lock) when expr denotes a lock."""
        attr = _is_self_attr(expr)
        if attr is not None and self.class_locks is not None:
            canon = self.class_locks.canonical(attr)
            if canon is not None:
                return (f"self.{attr}", canon)
            return None
        if isinstance(expr, ast.Name) and (
            expr.id in self.module_locks or _lockish_name(expr.id)
        ):
            return (expr.id, None)
        return None

    # -- with / held tracking ------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        pushed_class = 0
        for item in node.items:
            lock = self._as_lock(item.context_expr)
            if lock is not None:
                display, canon = lock
                self.held.append(display)
                pushed += 1
                if canon is not None:
                    self.held_class.append(canon)
                    pushed_class += 1
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for stmt in node.body:
            self.visit(stmt)
        if pushed:
            del self.held[-pushed:]
        if pushed_class:
            del self.held_class[-pushed_class:]

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    # -- accesses -------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _is_self_attr(node)
        if (
            attr is not None
            and self.class_locks is not None
            and not self.class_locks.is_lock_attr(attr)
        ):
            self.accesses.append(_Access(
                attr=attr,
                line=node.lineno,
                guarded=bool(self.held),
                store=isinstance(node.ctx, (ast.Store, ast.Del)),
                method=self.method,
            ))
        self.generic_visit(node)

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if _is_self_attr(func) is not None:
                self.self_calls.append(_SelfCall(
                    callee=func.attr, guarded=bool(self.held), caller=self.method
                ))
            if self.held:
                reason = self._blocking_reason(func, receiver)
                if reason is not None:
                    self.findings.append(make_finding(
                        "SDL102",
                        f"{reason} while holding {self.held[-1]}; blocking "
                        "under a lock serializes every other participant",
                        self.path, node.lineno,
                        scope=self.scope, detail=reason,
                    ))
        self.generic_visit(node)

    @staticmethod
    def _leaf_name(expr: ast.AST) -> str:
        if isinstance(expr, ast.Attribute):
            return expr.attr
        if isinstance(expr, ast.Name):
            return expr.id
        return ""

    def _blocking_reason(
        self, func: ast.Attribute, receiver: ast.AST
    ) -> Optional[str]:
        name = func.attr
        if name == "sleep" and self._leaf_name(receiver) == "time":
            return "time.sleep()"
        if name in BLOCKING_METHODS:
            return f".{name}()"
        if name in ("get", "put"):
            leaf = self._leaf_name(receiver).lower()
            if "queue" in leaf or leaf == "q" or leaf.endswith("_q"):
                return f"{self._leaf_name(receiver)}.{name}()"
        return None


# -- SDL103: manual acquire/release ------------------------------------


def _iter_bodies(func: ast.AST) -> Sequence[List[ast.stmt]]:
    bodies: List[List[ast.stmt]] = []
    for node in ast.walk(func):
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                bodies.append(block)
    return bodies


def _lock_method_call(stmt: ast.stmt, method: str) -> Optional[ast.AST]:
    """The receiver expr when stmt is ``<recv>.{method}(...)``."""
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == method
    ):
        return stmt.value.func.value
    return None


def _check_manual_acquire(
    func: ast.AST,
    path: str,
    scope: str,
    class_locks: Optional[_ClassLocks],
    module_locks: Set[str],
    findings: List[Finding],
) -> None:
    def lock_like(expr: ast.AST) -> bool:
        attr = _is_self_attr(expr)
        if attr is not None:
            return class_locks is not None and class_locks.is_lock_attr(attr)
        if isinstance(expr, ast.Name):
            return expr.id in module_locks or _lockish_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return _lockish_name(expr.attr)
        return False

    for body in _iter_bodies(func):
        for i, stmt in enumerate(body):
            receiver = _lock_method_call(stmt, "acquire")
            if receiver is None or not lock_like(receiver):
                continue
            nxt = body[i + 1] if i + 1 < len(body) else None
            released_in_finally = False
            if isinstance(nxt, ast.Try) and nxt.finalbody:
                want = ast.dump(receiver)
                for final_stmt in nxt.finalbody:
                    for sub in ast.walk(final_stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "release"
                            and ast.dump(sub.func.value) == want
                        ):
                            released_in_finally = True
            if not released_in_finally:
                display = ast.unparse(receiver) if hasattr(ast, "unparse") else "lock"
                findings.append(make_finding(
                    "SDL103",
                    f"{display}.acquire() without an immediate try/finally "
                    "release; an exception leaks the lock — use 'with'",
                    path, stmt.lineno,
                    scope=scope, detail=display,
                ))


# -- per-class analysis --------------------------------------------------


def _analyze_class(
    cls: ast.ClassDef,
    path: str,
    module_locks: Set[str],
    findings: List[Finding],
    prefix: str = "",
) -> None:
    qualname = f"{prefix}{cls.name}"
    locks = _discover_locks(cls)
    methods: Dict[str, _FuncWalker] = {}
    for node in cls.body:
        if isinstance(node, ast.ClassDef):
            _analyze_class(node, path, module_locks, findings, f"{qualname}.")
            continue
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        scope = f"{qualname}.{node.name}"
        walker = _FuncWalker(path, scope, node.name, locks, module_locks, findings)
        for stmt in node.body:
            walker.visit(stmt)
        _check_manual_acquire(node, path, scope, locks, module_locks, findings)
        methods[node.name] = walker

    if not locks.locks:
        return

    # call sites per callee, for context propagation
    call_sites: Dict[str, List[_SelfCall]] = {}
    for walker in methods.values():
        for call in walker.self_calls:
            if call.callee in methods:
                call_sites.setdefault(call.callee, []).append(call)

    guarded_ctx: Set[str] = set()
    construction_ctx: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in methods:
            if name in _CONSTRUCTION_METHODS:
                continue
            sites = call_sites.get(name)
            if not sites:
                continue
            if name not in guarded_ctx and all(
                s.guarded or s.caller in guarded_ctx for s in sites
            ):
                guarded_ctx.add(name)
                changed = True
            if name not in construction_ctx and all(
                s.caller in _CONSTRUCTION_METHODS or s.caller in construction_ctx
                for s in sites
            ):
                construction_ctx.add(name)
                changed = True

    # tally accesses per attribute
    guarded_count: Dict[str, int] = {}
    unguarded: Dict[str, List[_Access]] = {}
    for name, walker in methods.items():
        if name in _CONSTRUCTION_METHODS or name in construction_ctx:
            continue
        in_guarded_method = name in guarded_ctx
        for access in walker.accesses:
            if access.guarded or in_guarded_method:
                guarded_count[access.attr] = guarded_count.get(access.attr, 0) + 1
            else:
                unguarded.setdefault(access.attr, []).append(access)

    for attr, count in sorted(guarded_count.items()):
        misses = unguarded.get(attr, [])
        if count < MIN_GUARDED_ACCESSES or count <= len(misses):
            continue
        for access in misses:
            kind = "write" if access.store else "read"
            findings.append(make_finding(
                "SDL101",
                f"unguarded {kind} of '{attr}' (accessed under the lock in "
                f"{count} of {count + len(misses)} sites in {qualname})",
                path, access.line,
                scope=f"{qualname}.{access.method}", detail=attr,
            ))


def _module_locks(tree: ast.Module) -> Set[str]:
    locks: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign) and _factory_kind(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    locks.add(target.id)
    return locks


def check_guards(tree: ast.Module, path: str) -> List[Finding]:
    """Run the SDL1xx lock/guard checks over a parsed module."""
    findings: List[Finding] = []
    module_locks = _module_locks(tree)
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            _analyze_class(node, path, module_locks, findings)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope = node.name
            walker = _FuncWalker(path, scope, node.name, None, module_locks, findings)
            for stmt in node.body:
                walker.visit(stmt)
            _check_manual_acquire(node, path, scope, None, module_locks, findings)
    return findings
