"""The stampede-devlint rule registry plus module-level invariant checks.

Where ``repro.lint`` (stampede-lint) analyzes workflow *data* — DAX
definitions and BP event streams — this package analyzes the pipeline's
own *code*.  Every check carries a stable ``SDL###`` identifier (Stampede
Dev Lint) so findings are scriptable: baselines reference them, CLI
``--select``/``--ignore`` filter on them, and docs/analysis.md catalogs
them.  Concurrency/guard rules live in the ``SDL1xx`` block (see
:mod:`repro.analysis.guards`), project-invariant rules in ``SDL2xx``
(this module).

The severity model is shared with stampede-lint
(:class:`repro.lint.rules.Severity`), so both linters mean the same
thing by "error" and CI thresholds compose.
"""
from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.lint.rules import Severity

__all__ = [
    "Severity",
    "DevRule",
    "Finding",
    "DEV_RULES",
    "register_rule",
    "get_rule",
    "check_invariants",
    "suppressed_lines",
    "HOT_PATH_SEGMENTS",
]


@dataclass(frozen=True)
class DevRule:
    """One named code check with a stable ID and a default severity."""

    rule_id: str
    name: str
    severity: Severity
    summary: str

    def __str__(self) -> str:
        return f"{self.rule_id} [{self.severity}] {self.name}"


DEV_RULES: Dict[str, DevRule] = {}


def register_rule(rule_id: str, name: str, severity: Severity, summary: str) -> DevRule:
    if rule_id in DEV_RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    rule = DevRule(rule_id, name, severity, summary)
    DEV_RULES[rule_id] = rule
    return rule


def get_rule(rule_id: str) -> DevRule:
    return DEV_RULES[rule_id]


@dataclass
class Finding:
    """One problem at one location, with a line-drift-stable fingerprint.

    ``scope`` is the enclosing ``Class.method`` (or ``<module>``) and
    ``detail`` the smallest stable token of the finding (an attribute
    name, a callee) — together with rule id and file they form the
    fingerprint baselines suppress on, so findings survive unrelated
    edits that shift line numbers.
    """

    rule_id: str
    severity: Severity
    message: str
    file: str = "<input>"
    line: int = 0
    scope: str = "<module>"
    detail: str = ""
    context: Dict[str, str] = field(default_factory=dict)

    def fingerprint(self) -> str:
        raw = "\x1f".join((self.rule_id, self.file, self.scope, self.detail))
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "scope": self.scope,
            "detail": self.detail,
            "fingerprint": self.fingerprint(),
            **({"context": dict(self.context)} if self.context else {}),
        }

    def __str__(self) -> str:
        return (
            f"{self.file}:{self.line}: {self.rule_id} "
            f"{self.severity}: {self.message}"
        )


def make_finding(
    rule_id: str,
    message: str,
    file: str,
    line: int,
    scope: str = "<module>",
    detail: str = "",
    severity: Optional[Severity] = None,
    **context: str,
) -> Finding:
    rule = get_rule(rule_id)
    return Finding(
        rule_id=rule_id,
        severity=rule.severity if severity is None else severity,
        message=message,
        file=file,
        line=line,
        scope=scope,
        detail=detail,
        context=dict(context),
    )


# --------------------------------------------------------------------------
# rule catalog
# --------------------------------------------------------------------------
register_rule(
    "SDL001", "unparsable-source", Severity.ERROR,
    "source file cannot be read or parsed",
)
register_rule(
    "SDL101", "unguarded-attribute-access", Severity.ERROR,
    "attribute consistently accessed under a lock is read/written unguarded",
)
register_rule(
    "SDL102", "blocking-call-under-lock", Severity.WARNING,
    "blocking operation (sleep, queue/socket I/O, publish, transaction) "
    "invoked while a lock is held",
)
register_rule(
    "SDL103", "manual-acquire-without-finally", Severity.ERROR,
    "lock.acquire() not paired with release() in try/finally or 'with'",
)
register_rule(
    "SDL201", "hot-loop-counter-inc", Severity.WARNING,
    "per-event metric .inc() inside a loop on a hot parse/insert path "
    "(mirror an authoritative total via set_total at scrape time instead)",
)
register_rule(
    "SDL202", "wall-clock-elapsed", Severity.WARNING,
    "elapsed time measured with time.time(); use time.monotonic() or "
    "time.perf_counter() for intervals and deadlines",
)
register_rule(
    "SDL203", "bare-except", Severity.WARNING,
    "bare 'except:' swallows KeyboardInterrupt/SystemExit; name the "
    "exceptions (pipeline code must stay interruptible)",
)


# --------------------------------------------------------------------------
# inline suppression:   some_call()  # devlint: ignore[SDL102]
# --------------------------------------------------------------------------
_MARKER = "devlint:"


def suppressed_lines(text: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule ids (None = all rules).

    Recognized forms::

        # devlint: ignore
        # devlint: ignore[SDL101]
        # devlint: ignore[SDL101,SDL203]
    """
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        idx = line.find(_MARKER)
        if idx < 0 or "#" not in line[:idx]:
            continue
        directive = line[idx + len(_MARKER):].strip()
        if not directive.startswith("ignore"):
            continue
        rest = directive[len("ignore"):].strip()
        if rest.startswith("[") and "]" in rest:
            ids = {r.strip() for r in rest[1:rest.index("]")].split(",") if r.strip()}
            out[lineno] = ids or None
        else:
            out[lineno] = None
    return out


def apply_suppressions(findings: List[Finding], text: str) -> List[Finding]:
    marks = suppressed_lines(text)
    if not marks:
        return findings
    kept = []
    for f in findings:
        rules = marks.get(f.line, "absent")
        if rules == "absent" or (rules is not None and f.rule_id not in rules):
            kept.append(f)
    return kept


# --------------------------------------------------------------------------
# SDL2xx: project-invariant checks (module-wide walk)
# --------------------------------------------------------------------------

#: Path fragments marking the modules whose per-event loops are the
#: ingest hot path; a metric ``.inc()`` there costs a lock round-trip per
#: event, which is exactly what PR 5's scrape-time ``set_total``
#: mirroring exists to avoid.
HOT_PATH_SEGMENTS = ("loader/", "netlogger/", "archive/", "orm/")


def _is_hot_path(path: str) -> bool:
    norm = path.replace("\\", "/")
    return any(seg in norm for seg in HOT_PATH_SEGMENTS)


def _scope_name(stack: Sequence[str]) -> str:
    return ".".join(stack) if stack else "<module>"


def _is_time_time(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "time"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "time"
    )


class _InvariantVisitor(ast.NodeVisitor):
    """One pass collecting SDL201 / SDL202 / SDL203 findings."""

    def __init__(self, path: str):
        self.path = path
        self.hot = _is_hot_path(path)
        self.findings: List[Finding] = []
        self._scope: List[str] = []
        self._loop_depth = 0
        # names in the current function assigned from time.time()
        self._wall_names: List[Set[str]] = []

    # -- scopes ---------------------------------------------------------
    def _visit_scoped(self, node: ast.AST, name: str) -> None:
        self._scope.append(name)
        self._wall_names.append(set())
        self.generic_visit(node)
        self._wall_names.pop()
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    # -- SDL201 ---------------------------------------------------------
    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = visit_While = visit_AsyncFor = _visit_loop

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self.hot
            and self._loop_depth > 0
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "inc"
        ):
            self.findings.append(make_finding(
                "SDL201",
                "metric .inc() inside a loop on a hot path; mirror the "
                "authoritative counter with set_total at scrape time",
                self.path, node.lineno,
                scope=_scope_name(self._scope), detail="inc",
            ))
        self.generic_visit(node)

    # -- SDL202 ---------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if self._wall_names and _is_time_time(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._wall_names[-1].add(target.id)
        self.generic_visit(node)

    def _is_wall(self, node: ast.AST) -> bool:
        if _is_time_time(node):
            return True
        return (
            bool(self._wall_names)
            and isinstance(node, ast.Name)
            and node.id in self._wall_names[-1]
        )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            isinstance(node.op, ast.Sub)
            and self._is_wall(node.left)
            and self._is_wall(node.right)
        ):
            self.findings.append(make_finding(
                "SDL202",
                "interval computed from two local time.time() readings; "
                "wall clocks step under NTP — use time.monotonic()",
                self.path, node.lineno,
                scope=_scope_name(self._scope), detail="time.time",
            ))
        self.generic_visit(node)

    # -- SDL203 ---------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.findings.append(make_finding(
                "SDL203",
                "bare 'except:' catches KeyboardInterrupt/SystemExit; "
                "catch Exception (or narrower) instead",
                self.path, node.lineno,
                scope=_scope_name(self._scope), detail="except",
            ))
        self.generic_visit(node)


def check_invariants(tree: ast.Module, path: str) -> List[Finding]:
    """Run the SDL2xx module-invariant checks over a parsed module."""
    visitor = _InvariantVisitor(path)
    visitor.visit(tree)
    return visitor.findings


def iter_rules() -> Iterator[DevRule]:
    return iter(DEV_RULES.values())
