"""Standard query interface over the Stampede archive."""
from repro.query.api import JobInstanceDetail, StampedeQuery, WorkflowSummaryCounts

__all__ = ["JobInstanceDetail", "StampedeQuery", "WorkflowSummaryCounts"]
