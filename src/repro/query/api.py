"""The standard Stampede query interface (layer 3 of the three-layer model).

Every analysis tool — statistics, analyzer, dashboard, anomaly detection —
extracts data through this class rather than touching tables directly,
which is exactly the decoupling the paper's architecture prescribes.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.archive.store import StampedeArchive
from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobEdgeRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    TaskEdgeRow,
    TaskRow,
    WorkflowRow,
    WorkflowStateRow,
)
from repro.model.states import JobState, WorkflowState
from repro.schema.stampede import SUCCESS

__all__ = ["JobInstanceDetail", "WorkflowSummaryCounts", "StampedeQuery"]


@dataclass
class JobInstanceDetail:
    """One job instance with its derived timing metrics (jobs.txt row)."""

    exec_job_id: str
    try_number: int
    site: Optional[str]
    hostname: Optional[str]
    queue_time: Optional[float]  # SUBMIT -> EXECUTE delay
    runtime: Optional[float]  # engine-measured duration
    invocation_duration: Optional[float]  # sum of remote durations
    remote_cpu_time: Optional[float]
    exitcode: Optional[int]
    job_instance_id: int
    subwf_id: Optional[int] = None


@dataclass
class WorkflowSummaryCounts:
    """The Table I row set: tasks / jobs / sub-workflows by outcome."""

    tasks_succeeded: int = 0
    tasks_failed: int = 0
    tasks_incomplete: int = 0
    tasks_total: int = 0
    tasks_retries: int = 0
    jobs_succeeded: int = 0
    jobs_failed: int = 0
    jobs_incomplete: int = 0
    jobs_total: int = 0
    jobs_retries: int = 0
    subwf_succeeded: int = 0
    subwf_failed: int = 0
    subwf_incomplete: int = 0
    subwf_total: int = 0
    subwf_retries: int = 0


class StampedeQuery:
    """Read-side API over a StampedeArchive."""

    def __init__(self, archive: StampedeArchive):
        self.archive = archive

    # -- workflows ------------------------------------------------------------
    def workflows(self) -> List[WorkflowRow]:
        return self.archive.query(WorkflowRow).order_by("wf_id").all()

    def workflow(self, wf_id: int) -> Optional[WorkflowRow]:
        return self.archive.query(WorkflowRow).eq("wf_id", wf_id).first()

    def workflow_by_uuid(self, wf_uuid: str) -> Optional[WorkflowRow]:
        return self.archive.query(WorkflowRow).eq("wf_uuid", wf_uuid).first()

    def root_workflows(self) -> List[WorkflowRow]:
        return [w for w in self.workflows() if w.parent_wf_id is None]

    def sub_workflows(self, wf_id: int) -> List[WorkflowRow]:
        return (
            self.archive.query(WorkflowRow)
            .eq("parent_wf_id", wf_id)
            .order_by("wf_id")
            .all()
        )

    def descendant_workflows(self, wf_id: int) -> List[WorkflowRow]:
        """All workflows beneath ``wf_id`` in the hierarchy (excluding it)."""
        out: List[WorkflowRow] = []
        frontier = [wf_id]
        while frontier:
            current = frontier.pop(0)
            children = self.sub_workflows(current)
            out.extend(children)
            frontier.extend(c.wf_id for c in children)
        return out

    def workflow_states(self, wf_id: int) -> List[WorkflowStateRow]:
        return (
            self.archive.query(WorkflowStateRow)
            .eq("wf_id", wf_id)
            .order_by("timestamp")
            .all()
        )

    def workflow_wall_time(self, wf_id: int) -> Optional[float]:
        """Wall time from WORKFLOW_STARTED to WORKFLOW_TERMINATED."""
        states = self.workflow_states(wf_id)
        start = next(
            (s.timestamp for s in states
             if s.state == WorkflowState.WORKFLOW_STARTED.value),
            None,
        )
        end = next(
            (s.timestamp for s in reversed(states)
             if s.state == WorkflowState.WORKFLOW_TERMINATED.value),
            None,
        )
        if start is None or end is None:
            return None
        return end - start

    def workflow_status(self, wf_id: int) -> Optional[int]:
        """Termination status of the most recent run, None while running."""
        states = self.workflow_states(wf_id)
        for state in reversed(states):
            if state.state == WorkflowState.WORKFLOW_TERMINATED.value:
                return state.status
        return None

    # -- static structure ------------------------------------------------------
    def tasks(self, wf_id: int) -> List[TaskRow]:
        return self.archive.query(TaskRow).eq("wf_id", wf_id).order_by("task_id").all()

    def task_edges(self, wf_id: int) -> List[TaskEdgeRow]:
        return self.archive.query(TaskEdgeRow).eq("wf_id", wf_id).all()

    def jobs(self, wf_id: int) -> List[JobRow]:
        return self.archive.query(JobRow).eq("wf_id", wf_id).order_by("job_id").all()

    def job_edges(self, wf_id: int) -> List[JobEdgeRow]:
        return self.archive.query(JobEdgeRow).eq("wf_id", wf_id).all()

    def job_by_exec_id(self, wf_id: int, exec_job_id: str) -> Optional[JobRow]:
        return (
            self.archive.query(JobRow)
            .eq("wf_id", wf_id)
            .eq("exec_job_id", exec_job_id)
            .first()
        )

    # -- execution ------------------------------------------------------------
    def job_instances(self, wf_id: int) -> List[JobInstanceRow]:
        job_ids = [j.job_id for j in self.jobs(wf_id)]
        if not job_ids:
            return []
        return (
            self.archive.query(JobInstanceRow)
            .where("job_id", "in", job_ids)
            .order_by("job_instance_id")
            .all()
        )

    def job_instances_for_job(self, job_id: int) -> List[JobInstanceRow]:
        return (
            self.archive.query(JobInstanceRow)
            .eq("job_id", job_id)
            .order_by("job_submit_seq")
            .all()
        )

    def job_states(self, job_instance_id: int) -> List[JobStateRow]:
        return (
            self.archive.query(JobStateRow)
            .eq("job_instance_id", job_instance_id)
            .order_by("jobstate_submit_seq")
            .all()
        )

    def last_job_state(self, job_instance_id: int) -> Optional[JobStateRow]:
        states = self.job_states(job_instance_id)
        return states[-1] if states else None

    def invocations(self, wf_id: int) -> List[InvocationRow]:
        return (
            self.archive.query(InvocationRow)
            .eq("wf_id", wf_id)
            .order_by("invocation_id")
            .all()
        )

    def invocations_for_instance(self, job_instance_id: int) -> List[InvocationRow]:
        return (
            self.archive.query(InvocationRow)
            .eq("job_instance_id", job_instance_id)
            .order_by("task_submit_seq")
            .all()
        )

    def hosts(self, wf_id: int) -> List[HostRow]:
        return self.archive.query(HostRow).eq("wf_id", wf_id).order_by("host_id").all()

    def host(self, host_id: int) -> Optional[HostRow]:
        return self.archive.query(HostRow).eq("host_id", host_id).first()

    # -- derived metrics ---------------------------------------------------------
    def job_instance_detail(
        self,
        job: JobRow,
        instance: JobInstanceRow,
        hosts_by_id: Optional[Dict[int, HostRow]] = None,
    ) -> JobInstanceDetail:
        states = {s.state: s.timestamp for s in self.job_states(instance.job_instance_id)}
        submit_ts = states.get(JobState.SUBMIT.value)
        execute_ts = states.get(JobState.EXECUTE.value)
        queue_time = (
            execute_ts - submit_ts
            if submit_ts is not None and execute_ts is not None
            else None
        )
        invocations = self.invocations_for_instance(instance.job_instance_id)
        inv_duration = (
            sum(i.remote_duration for i in invocations) if invocations else None
        )
        cpu_times = [
            i.remote_cpu_time for i in invocations if i.remote_cpu_time is not None
        ]
        hostname: Optional[str] = None
        if instance.host_id is not None:
            if hosts_by_id is not None:
                host = hosts_by_id.get(instance.host_id)
            else:
                host = self.host(instance.host_id)
            hostname = host.hostname if host else None
        return JobInstanceDetail(
            exec_job_id=job.exec_job_id,
            try_number=instance.job_submit_seq,
            site=instance.site,
            hostname=hostname,
            queue_time=queue_time,
            runtime=instance.local_duration,
            invocation_duration=inv_duration,
            remote_cpu_time=sum(cpu_times) if cpu_times else None,
            exitcode=instance.exitcode,
            job_instance_id=instance.job_instance_id,
            subwf_id=instance.subwf_id,
        )

    def job_details(self, wf_id: int) -> List[JobInstanceDetail]:
        """All job-instance details of a workflow, in submit order."""
        jobs_by_id = {j.job_id: j for j in self.jobs(wf_id)}
        hosts_by_id = {h.host_id: h for h in self.hosts(wf_id)}
        return [
            self.job_instance_detail(jobs_by_id[inst.job_id], inst, hosts_by_id)
            for inst in self.job_instances(wf_id)
            if inst.job_id in jobs_by_id
        ]

    def failed_job_instances(self, wf_id: int) -> List[Tuple[JobRow, JobInstanceRow]]:
        jobs_by_id = {j.job_id: j for j in self.jobs(wf_id)}
        return [
            (jobs_by_id[inst.job_id], inst)
            for inst in self.job_instances(wf_id)
            if inst.exitcode is not None
            and inst.exitcode != SUCCESS
            and inst.job_id in jobs_by_id
        ]

    def summary_counts(
        self, wf_id: int, include_descendants: bool = True
    ) -> WorkflowSummaryCounts:
        """Aggregate task/job/sub-workflow outcome counts (Table I)."""
        counts = WorkflowSummaryCounts()
        wf_ids = [wf_id] + (
            [w.wf_id for w in self.descendant_workflows(wf_id)]
            if include_descendants
            else []
        )
        for current in wf_ids:
            self._accumulate_counts(current, counts)
        for sub in self.descendant_workflows(wf_id) if include_descendants else []:
            counts.subwf_total += 1
            status = self.workflow_status(sub.wf_id)
            if status is None:
                counts.subwf_incomplete += 1
            elif status == SUCCESS:
                counts.subwf_succeeded += 1
            else:
                counts.subwf_failed += 1
            restarts = max(
                (s.restart_count for s in self.workflow_states(sub.wf_id)), default=0
            )
            counts.subwf_retries += restarts
        return counts

    def _accumulate_counts(self, wf_id: int, counts: WorkflowSummaryCounts) -> None:
        jobs = self.jobs(wf_id)
        instances = self.job_instances(wf_id)
        by_job: Dict[int, List[JobInstanceRow]] = {}
        for inst in instances:
            by_job.setdefault(inst.job_id, []).append(inst)
        tasks = self.tasks(wf_id)
        task_outcome: Dict[str, Optional[int]] = {}
        for inv in self.invocations(wf_id):
            if inv.abs_task_id is not None:
                prev = task_outcome.get(inv.abs_task_id)
                # Any success wins (a retry may have fixed an earlier failure).
                if prev is None or prev != 0:
                    task_outcome[inv.abs_task_id] = inv.exitcode
        for task in tasks:
            counts.tasks_total += 1
            outcome = task_outcome.get(task.abs_task_id)
            if outcome is None:
                counts.tasks_incomplete += 1
            elif outcome == 0:
                counts.tasks_succeeded += 1
            else:
                counts.tasks_failed += 1
        for job in jobs:
            counts.jobs_total += 1
            attempts = sorted(by_job.get(job.job_id, []), key=lambda i: i.job_submit_seq)
            counts.jobs_retries += max(0, len(attempts) - 1)
            if not attempts or attempts[-1].exitcode is None:
                counts.jobs_incomplete += 1
            elif attempts[-1].exitcode == 0:
                counts.jobs_succeeded += 1
            else:
                counts.jobs_failed += 1

    def cumulative_job_wall_time(
        self, wf_id: int, include_descendants: bool = True
    ) -> float:
        """Sum of invocation durations: 'workflow cumulative job wall time'.

        Invocations of job instances that merely wrap a sub-workflow
        (``subwf_id`` set) are excluded — their duration spans the child
        run, whose own invocations are already counted.
        """
        wf_ids = [wf_id] + (
            [w.wf_id for w in self.descendant_workflows(wf_id)]
            if include_descendants
            else []
        )
        total = 0.0
        for current in wf_ids:
            subwf_instances = {
                inst.job_instance_id
                for inst in self.job_instances(current)
                if inst.subwf_id is not None
            }
            total += sum(
                i.remote_duration
                for i in self.invocations(current)
                if i.job_instance_id not in subwf_instances
            )
        return total
