#!/usr/bin/env python
"""Troubleshooting with stampede-analyzer and the anomaly detector.

Runs a CyberShake-shaped workflow on a flaky site (transient failures +
one permanently broken transformation + injected stragglers), then:

* stampede_analyzer drills into the failures with captured stderr;
* the online anomaly detector flags the stragglers that succeeded but
  ran far outside their type's runtime distribution.

Run:  python examples/troubleshooting_failures.py
"""
import numpy as np

from repro.core.analyzer import analyze, render_analysis
from repro.core.anomaly import RobustRuntimeDetector, scan_archive
from repro.core.prediction import failure_score, failure_signals
from repro.loader import load_events
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender
from repro.workloads import cybershake


def main() -> None:
    aw = cybershake(n_ruptures=20)
    # inject stragglers: a few synthesis tasks are 10x slower
    rng = np.random.default_rng(0)
    straggler_ids = []
    for task in aw.tasks():
        if task.transformation == "SeismogramSynthesis" and rng.random() < 0.08:
            task.runtime_estimate *= 10
            straggler_ids.append(task.task_id)

    catalog = SiteCatalog(
        [Site("hpc", slots=24, mean_queue_delay=4.0, failure_rate=0.18,
              hosts_per_site=12)]
    )
    sink = MemoryAppender()
    run = run_pegasus_workflow(
        aw, sink, catalog=catalog,
        planner_config=PlannerConfig(cluster_size=4, max_retries=0),
        seed=3,
    )
    print(f"run finished: ok={run.report.ok} "
          f"succeeded={run.report.succeeded} failed={run.report.failed} "
          f"retries={run.report.retries}\n")

    loader = load_events(sink.events)
    q = StampedeQuery(loader.archive)
    wf = q.workflows()[0]

    print("=" * 72)
    print("stampede-analyzer output")
    print("=" * 72)
    print(render_analysis(analyze(q, wf_id=wf.wf_id)))

    print()
    print("=" * 72)
    print("online anomaly detection (robust z-score per transformation)")
    print("=" * 72)
    detector = scan_archive(q, wf.wf_id,
                            detector=RobustRuntimeDetector(threshold=4.0))
    slow = [a for a in detector.anomalies if a.kind == "slow"]
    failures = [a for a in detector.anomalies if a.kind == "failure"]
    print(f"{detector.observations} invocations scanned: "
          f"{len(slow)} stragglers, {len(failures)} failures flagged")
    for anomaly in slow[:10]:
        print("  ", anomaly)
    print(f"\n(injected stragglers: {len(straggler_ids)}; "
          f"baseline SeismogramSynthesis median "
          f"{detector.baseline('SeismogramSynthesis'):.0f}s)")

    print()
    signals = failure_signals(q, wf.wf_id)
    print(f"workflow failure-risk score: {failure_score(signals):.2f} "
          f"(failure fraction {signals.failure_fraction:.2f}, "
          f"retry fraction {signals.retry_fraction:.2f})")


if __name__ == "__main__":
    main()
