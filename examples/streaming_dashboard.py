#!/usr/bin/env python
"""Real-time monitoring: bus-fed loader + the embedded web dashboard.

Reproduces the paper's deployment loop (Fig. 1): the engine publishes to
the AMQP bus while nl_load drains the queue into the archive on a loader
thread, and the Python dashboard serves live status over HTTP.

Run:  python examples/streaming_dashboard.py
(The dashboard binds an ephemeral localhost port; the script fetches its
own endpoints to show what a browser would see, then exits.)
"""
import json
import threading
import urllib.request

from repro.bus.broker import Broker
from repro.bus.client import BusSink
from repro.core.dashboard import Dashboard
from repro.dart.sweep import sweep_grid
from repro.dart.workflow import run_dart_experiment
from repro.loader import load_from_bus, make_loader
from repro.model.entities import WorkflowStateRow


def main() -> None:
    broker = Broker()
    broker.declare_queue("stampede", durable=True)
    broker.bind_queue("stampede", "stampede.#")
    loader = make_loader("sqlite:///:memory:")

    # loader thread: drains the bus until every workflow has terminated
    def consume():
        load_from_bus(
            broker,
            queue_name="stampede",
            durable=True,
            loader=loader,
            until=lambda ld: ld.archive.query(WorkflowStateRow)
            .eq("state", "WORKFLOW_TERMINATED").count() >= 5,  # root + 4
        )

    thread = threading.Thread(target=consume)
    thread.start()

    # a scaled-down DART run publishing live to the bus
    commands = [c.line for c in sweep_grid()[:32]]
    result = run_dart_experiment(
        BusSink(broker), seed=0, n_nodes=4, chunk_size=8, commands=commands
    )
    thread.join(timeout=30)
    print(f"run complete ({result.n_bundles} bundles); "
          f"loader stored {loader.stats.rows_inserted} rows\n")

    with Dashboard(loader.archive) as dash:
        print(f"dashboard serving at {dash.url}\n")

        def get(path):
            with urllib.request.urlopen(dash.url + path, timeout=5) as resp:
                return json.loads(resp.read())

        workflows = get("/api/workflows")["workflows"]
        print("GET /api/workflows ->")
        for wf in workflows:
            print(f"  wf_id={wf['wf_id']} {wf['state']:8s} {wf['dag_file_name']}")

        root = next(w for w in workflows if w["parent_wf_id"] is None)
        summary = get(f"/api/workflow/{root['wf_id']}")
        print(f"\nGET /api/workflow/{root['wf_id']} ->")
        print(f"  wall_time: {summary['wall_time']:.0f}s")
        print(f"  cumulative: {summary['cumulative_job_wall_time']:.0f}s")
        print(f"  tasks: {summary['counts']['tasks_succeeded']}"
              f"/{summary['counts']['tasks_total']} succeeded")


if __name__ == "__main__":
    main()
