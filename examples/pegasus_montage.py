#!/usr/bin/env python
"""Pegasus-style run: plan a Montage mosaic workflow and execute it.

Demonstrates the planning stage Triana lacks — task clustering and
auxiliary stage-in/stage-out jobs — and shows the SAME monitoring tools
reporting on the result, which is the paper's generality claim.

Run:  python examples/pegasus_montage.py
"""
from repro.core.reports import render_all
from repro.core.statistics import workflow_statistics
from repro.loader import load_events
from repro.pegasus import Planner, PlannerConfig, Site, SiteCatalog, DAGManRun
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender
from repro.workloads import montage


def main() -> None:
    aw = montage(n_images=16)
    print(f"abstract workflow: {len(aw)} tasks, {len(aw.edges())} edges, "
          f"critical path {aw.critical_path_seconds():.0f}s")

    catalog = SiteCatalog(
        [
            Site("local", slots=2, mean_queue_delay=0.1, hosts_per_site=1),
            Site("grid", slots=16, mean_queue_delay=6.0, hosts_per_site=8,
                 speed_factor=0.8),
        ]
    )
    planner = Planner(
        catalog,
        PlannerConfig(cluster_size=4, add_registration=True, add_cleanup=True),
    )
    ew = planner.plan(aw)
    clustered = sum(1 for j in ew.compute_jobs() if j.clustered)
    print(f"executable workflow: {len(ew)} jobs "
          f"({clustered} clustered, "
          f"{len(ew) - len(ew.compute_jobs())} auxiliary)\n")

    sink = MemoryAppender()
    run = DAGManRun(aw, ew, sink, catalog=catalog, seed=7)
    report = run.run()
    print(f"DAGMan: {report.succeeded} jobs succeeded, "
          f"{report.retries} retries, wall time {report.wall_time:.0f}s\n")

    loader = load_events(sink.events)
    q = StampedeQuery(loader.archive)
    print(render_all(workflow_statistics(q)))


if __name__ == "__main__":
    main()
