#!/usr/bin/env python
"""The paper's §VI experiment: the DART music-information-retrieval sweep.

Executes 306 SHS parameter-sweep commands as 20 SHIWA bundles on an
8-node TrianaCloud, loads the live event stream, and prints:

* Table I   — the stampede-statistics summary,
* Table II  — breakdown.txt for one sub-workflow,
* Tables III/IV — jobs.txt for the same sub-workflow,
* Fig. 7    — an ASCII rendering of bundle progress-to-completion,
* the sweep's scientific result (best SHS parameters found).

Run:  python examples/dart_parameter_sweep.py [seed]
"""
import sys

import numpy as np

from repro.core.reports import (
    render_breakdown,
    render_jobs,
    render_jobs_timing,
    render_summary,
)
from repro.core.statistics import job_rows, job_type_breakdown, workflow_statistics
from repro.core.timeseries import bundle_progress
from repro.dart.workflow import run_dart_experiment
from repro.loader import load_events
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender


def ascii_progress(series, width=64) -> str:
    """Fig. 7 as text: one row per bundle, '#' marks progress over time."""
    t_max = max(s.completion_time for s in series)
    times = np.linspace(0, t_max, width)
    lines = [f"wall-clock 0 .. {t_max:.0f}s  (cumulative runtime per bundle)"]
    for s in sorted(series, key=lambda s: s.label):
        samples = s.sample(times)
        final = s.final_cumulative_runtime
        row = "".join(
            "#" if v >= final else ("+" if v > 0 else ".") for v in samples
        )
        lines.append(f"{s.label:>16} |{row}| {final:7.0f}s")
    return "\n".join(lines)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    print("running the DART sweep (306 commands, 20 bundles, 8 nodes)...")
    sink = MemoryAppender()
    result = run_dart_experiment(sink, seed=seed)
    print(f"done: {len(sink)} Stampede events emitted; "
          f"simulated wall time {result.wall_time:.0f}s\n")

    loader = load_events(sink.events)
    q = StampedeQuery(loader.archive)
    root = q.workflow_by_uuid(result.root_xwf_id)

    print("=" * 72)
    print("Table I — stampede-statistics summary")
    print("=" * 72)
    print(render_summary(workflow_statistics(q, wf_id=root.wf_id)))

    sub = q.sub_workflows(root.wf_id)[-1]  # the small trailing bundle
    print()
    print("=" * 72)
    print(f"Table II — breakdown.txt for sub-workflow {sub.dag_file_name}")
    print("=" * 72)
    print(render_breakdown(job_type_breakdown(q, sub.wf_id)))

    rows = job_rows(q, sub.wf_id)
    print()
    print("=" * 72)
    print("Tables III & IV — jobs.txt for the same sub-workflow")
    print("=" * 72)
    print(render_jobs(rows))
    print()
    print(render_jobs_timing(rows))

    print()
    print("=" * 72)
    print("Fig. 7 — progress to completion of the 20 bundles")
    print("=" * 72)
    print(ascii_progress(bundle_progress(q, root.wf_id)))

    best = result.best_result
    print()
    print("sweep result: best SHS parameters "
          f"harmonics={best['harmonics']} compression={best['compression']} "
          f"window={best['window']} (accuracy {best['accuracy']:.2f})")


if __name__ == "__main__":
    main()
