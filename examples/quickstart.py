#!/usr/bin/env python
"""Quickstart: monitor one workflow end-to-end in ~40 lines.

Builds a small Triana task graph, executes it with Stampede logging onto
an in-process AMQP bus, loads the events into a relational archive with
nl_load, and prints the stampede-statistics reports.

Run:  python examples/quickstart.py
"""
from repro.bus.broker import Broker
from repro.bus.client import BusSink, EventConsumer
from repro.core.reports import render_all
from repro.core.statistics import workflow_statistics
from repro.loader import make_loader
from repro.triana.scheduler import Scheduler
from repro.triana.stampede_log import StampedeLog
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import CallableUnit, ConstantUnit, GatherUnit
from repro.util.uuidgen import UUIDFactory


def main() -> None:
    # 1. a four-task diamond workflow: load -> (clean, stats) -> report
    graph = TaskGraph("quickstart")
    load = graph.add(ConstantUnit("load", list(range(100)), seconds=2.0))
    clean = graph.add(
        CallableUnit("clean", lambda ins: [x for x in ins[0] if x % 2 == 0],
                     seconds=5.0)
    )
    stats = graph.add(
        CallableUnit("stats", lambda ins: sum(ins[0]) / len(ins[0]), seconds=4.0)
    )
    report = graph.add(GatherUnit("report", seconds=1.0))
    graph.connect(load, clean)
    graph.connect(load, stats)
    graph.connect(clean, report)
    graph.connect(stats, report)

    # 2. wire the engine to the monitoring bus
    broker = Broker()
    consumer = EventConsumer(broker, "stampede.#", queue_name="monitoring")
    scheduler = Scheduler(graph, seed=0)
    StampedeLog(scheduler, BusSink(broker), xwf_id=UUIDFactory(0).new())

    # 3. run (on the virtual clock: finishes instantly in real time)
    engine_report = scheduler.run()
    print(f"engine: {engine_report.completed} tasks completed, "
          f"wall time {engine_report.wall_time:.1f}s (simulated)\n")

    # 4. load the event stream into the archive
    loader = make_loader("sqlite:///:memory:")
    loader.process_all(consumer.drain())

    # 5. query it with stampede-statistics
    print(render_all(workflow_statistics(loader.archive)))


if __name__ == "__main__":
    main()
