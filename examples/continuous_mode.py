#!/usr/bin/env python
"""Triana continuous mode: a data-driven streaming workflow.

The paper's §V-A describes Triana's second execution mode — components
"run continuously, where a component continuously waits for data, until
it is released through a local condition" — and §VIII leaves a
data-driven continuous-mode experiment as future work.  This example
implements it: a source streams signal chunks into an energy detector
that releases the workflow once accumulated energy crosses a threshold,
producing a job with MANY invocations (one per chunk) under one job
instance, exactly as the Stampede model intends.

Run:  python examples/continuous_mode.py
"""
import numpy as np

from repro.core.statistics import workflow_statistics
from repro.loader import load_events
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender
from repro.triana.scheduler import Scheduler
from repro.triana.stampede_log import StampedeLog
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import CallableUnit, StreamSourceUnit, ThresholdSinkUnit
from repro.util.uuidgen import UUIDFactory


def main() -> None:
    rng = np.random.default_rng(0)
    # 200 chunks of synthetic detector samples; energy ramps up over time
    chunks = [rng.normal(0, 1 + i / 40.0, 64) for i in range(200)]

    graph = TaskGraph("streaming-analysis")
    source = graph.add(StreamSourceUnit("sensor", chunks, seconds=0.5))
    energy = graph.add(
        CallableUnit("energy", lambda ins: float(np.sum(ins[0] ** 2)),
                     seconds=0.8)
    )
    trigger = graph.add(ThresholdSinkUnit("trigger", threshold=25_000.0,
                                          seconds=0.2))
    graph.connect(source, energy)
    graph.connect(energy, trigger)

    sink = MemoryAppender()
    scheduler = Scheduler(graph, seed=0, mode="continuous")
    StampedeLog(scheduler, sink, xwf_id=UUIDFactory(7).new())
    report = scheduler.run()

    chunks_consumed = scheduler.instances["energy"].invocations
    print(f"workflow released after {chunks_consumed} chunks "
          f"(threshold {trigger.unit.threshold:.0f}, "
          f"accumulated {trigger.unit.total:.0f})")
    print(f"simulated wall time: {report.wall_time:.1f}s, "
          f"{report.invocations} invocations total\n")

    loader = load_events(sink.events)
    q = StampedeQuery(loader.archive)
    wf = q.workflows()[0]

    # one job instance per task, many invocations per instance
    print("invocations per job (one job instance each):")
    for job in q.jobs(wf.wf_id):
        (inst,) = q.job_instances_for_job(job.job_id)
        invs = q.invocations_for_instance(inst.job_instance_id)
        print(f"  {job.exec_job_id:8s} instance=1 invocations={len(invs)}")

    stats = workflow_statistics(q, wf_id=wf.wf_id)
    print(f"\ncumulative invocation time: "
          f"{stats.cumulative_job_wall_time:.1f}s over "
          f"{stats.wall_time:.1f}s wall "
          f"(streaming keeps all three units busy concurrently)")


if __name__ == "__main__":
    main()
