#!/usr/bin/env python
"""Corpus mining across many runs (the paper's §VIII future work).

Executes an ensemble of workflows — Montage, Epigenomics, LIGO Inspiral
and CyberShake shapes over two sites — into ONE archive, then mines it:

* per-transformation runtime distributions across all runs,
* per-site reliability and queueing,
* cross-run runtime prediction for a new (bigger) workflow, checked
  against an actual run of that workflow.

Run:  python examples/corpus_mining.py
"""
from repro.core.corpus import build_corpus_report, predict_workflow_runtime
from repro.loader import make_loader
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender
from repro.workloads import cybershake, epigenomics, ligo_inspiral, montage


def main() -> None:
    catalog = SiteCatalog(
        [
            Site("campus_cluster", slots=24, mean_queue_delay=3.0,
                 hosts_per_site=12),
            Site("osg_pool", slots=64, mean_queue_delay=15.0,
                 failure_rate=0.10, speed_factor=1.3, hosts_per_site=32),
        ]
    )
    ensemble = [
        ("montage", lambda s: montage(n_images=12), 3),
        ("epigenomics", lambda s: epigenomics(n_lanes=3, splits_per_lane=3), 2),
        ("ligo", lambda s: ligo_inspiral(n_blocks=3, templates_per_block=4), 2),
        ("cybershake", lambda s: cybershake(n_ruptures=25), 1),
    ]
    loader = make_loader("sqlite:///:memory:")
    total_runs = 0
    run_seed = 0  # unique per run: seeds determine the workflow UUIDs
    for name, factory, repeats in ensemble:
        for seed in range(repeats):
            run_seed += 1
            sink = MemoryAppender()
            run = run_pegasus_workflow(
                factory(seed), sink, catalog=catalog,
                planner_config=PlannerConfig(cluster_size=4), seed=run_seed,
            )
            loader.process_all(sink.events)
            total_runs += 1
            print(f"  ran {name} (seed {seed}): "
                  f"{run.report.succeeded} jobs, {run.report.retries} retries, "
                  f"{run.report.wall_time:.0f}s")
    print(f"\narchive holds {total_runs} runs; mining...\n")

    query = StampedeQuery(loader.archive)
    corpus = build_corpus_report(query)
    print(f"corpus: {corpus.workflows} workflows, "
          f"{corpus.total_invocations} invocations, "
          f"{len(corpus.transformations)} transformation types\n")

    print("slowest transformations (mean seconds across all runs):")
    for profile in corpus.slowest_transformations(top=6):
        print(f"  {profile.transformation:22s} n={profile.invocations:4d} "
              f"mean={profile.mean:7.1f}  p95={profile.p95:7.1f}  "
              f"fail={profile.failure_rate:.1%}")

    print("\nsite reliability:")
    for site in corpus.least_reliable_sites():
        print(f"  {site.site:16s} instances={site.instances:4d} "
              f"failure_rate={site.failure_rate:.1%} "
              f"mean_queue={site.mean_queue_time:.1f}s")

    # provisioning: predict a new, larger Montage before running it
    new_aw = montage(n_images=30)
    prediction = predict_workflow_runtime(new_aw, corpus, parallelism=24)
    print(f"\nprediction for montage(n_images=30) at parallelism 24:")
    print(f"  serial work     : {prediction['serial_seconds']:.0f}s")
    print(f"  critical path   : {prediction['critical_path_seconds']:.0f}s")
    print(f"  queue overhead  : {prediction['queue_overhead_seconds']:.0f}s")
    print(f"  predicted wall  : {prediction['predicted_wall_seconds']:.0f}s "
          f"(coverage {prediction['coverage']:.0%})")

    sink = MemoryAppender()
    actual = run_pegasus_workflow(
        new_aw, sink, catalog=catalog,
        planner_config=PlannerConfig(cluster_size=4), seed=999,
    )
    print(f"  actual wall     : {actual.report.wall_time:.0f}s")


if __name__ == "__main__":
    main()
