"""Soak benchmark: a shaped multi-workload storm with chaos and kill/resume.

The headline robustness number for the traffic harness.  Builds the
standard mixed trace (CyberShake + Montage + Epigenomics + LIGO + DART,
interleaved, identities remapped per copy), multiplies it to the target
storm size, then drives :func:`repro.replay.soak.run_soak`: shaped
replay through a chaos broker into a checkpointing loader, with the
fault plan armed mid-replay and the loader killed and resumed from its
checkpoint mid-storm.

The run *is* the gate: canonical row-identity vs an unshaped fault-free
baseline, zero DLQ/stranded leakage, a throughput floor, a p99
publish→commit latency ceiling (PipelineClock histogram), and a peak
RSS ceiling.  Any gate failure exits nonzero.

Standalone, for CI::

    python benchmarks/bench_soak.py --events 1000000 -o BENCH_soak.json
"""
import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.faults.plan import FaultPlan
from repro.replay.shape import parse_shape
from repro.replay.soak import mixed_trace, run_soak, storm_stream

#: drop + duplicate + reorder, armed only after `--arm-at` of the replay
CHAOS_SPEC = {
    "bus": {"drop": 0.02, "duplicate": 0.02, "reorder": 0.02, "reorder_depth": 4},
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000, help="target storm size")
    parser.add_argument("--seed", type=int, default=11, help="workload/chaos seed")
    parser.add_argument("--scale", type=int, default=1, help="base workload scale")
    parser.add_argument("--shape", default="burst:20000,80000,2.0,0.25")
    parser.add_argument("--no-chaos", action="store_true")
    parser.add_argument("--no-kill", action="store_true")
    parser.add_argument("--arm-at", type=float, default=0.3)
    parser.add_argument("--kill-at", type=float, default=0.55)
    parser.add_argument("--batch-size", type=int, default=500)
    parser.add_argument("--queue-max", type=int, default=20_000)
    parser.add_argument("--min-throughput", type=float, default=1_000.0)
    parser.add_argument("--max-p99-commit", type=float, default=8.0)
    parser.add_argument("--max-rss-mb", type=float, default=1_500.0)
    parser.add_argument("--workdir", default=None, help="archive dir (default: temp)")
    parser.add_argument("-o", "--output", default=None, help="write JSON report here")
    args = parser.parse_args(argv)

    print(f"soak: building mixed trace (seed={args.seed}, scale={args.scale})")
    base = mixed_trace(seed=args.seed, scale=args.scale)
    copies = max(1, -(-args.events // len(base)))  # ceil to the target
    total = len(base) * copies
    print(f"soak: base {len(base)} events x {copies} copies = {total} events")

    plan = None
    if not args.no_chaos:
        plan = FaultPlan.from_dict({"seed": args.seed, **CHAOS_SPEC})
    workdir = args.workdir or tempfile.mkdtemp(prefix="bench-soak-")
    report = run_soak(
        lambda: storm_stream(base, copies, salt=f"bench/{args.seed}"),
        workdir,
        total=total,
        plan=plan,
        shape=parse_shape(args.shape),
        arm_at=args.arm_at,
        kill_at=args.kill_at,
        kill=not args.no_kill,
        batch_size=args.batch_size,
        queue_max=args.queue_max,
        min_throughput=args.min_throughput,
        max_p99_commit=args.max_p99_commit,
        max_rss_mb=args.max_rss_mb,
        progress=lambda msg: print(f"soak: {msg}", flush=True),
    )

    payload = {
        "seed": args.seed,
        "scale": args.scale,
        "base_events": len(base),
        "copies": copies,
        "python": ".".join(map(str, sys.version_info[:3])),
        **report.to_dict(),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.output}")
    if not report.passed:
        failed = [g.name for g in report.gates if not g.ok]
        print(f"SOAK FAILED: gates {failed}", file=sys.stderr)
        return 1
    print(
        f"SOAK PASSED: {report.events} events, {report.throughput:,.0f} ev/s, "
        f"p99 commit {report.p99_commit_s * 1000.0:.1f}ms, "
        f"peak rss {report.peak_rss_mb:.0f}MB"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
