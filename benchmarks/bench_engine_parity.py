"""§VIII hypothesis: "Since both workflow systems use the same Stampede
component (nl_load) to load the logs, we do not expect any performance
penalty when running large workflows through Triana."

The paper leaves testing this to future work; this bench performs it:
equal-sized workflows executed by the Triana-style and Pegasus-style
engines, loaded by the same loader — events/second should be comparable.
"""
import pytest

from repro.loader import load_events
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.triana.appender import MemoryAppender
from repro.triana.scheduler import Scheduler
from repro.triana.stampede_log import StampedeLog
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import CallableUnit, ConstantUnit, GatherUnit
from repro.util.uuidgen import derive_uuid
from repro.workloads import fan

WIDTH = 300


def triana_events():
    g = TaskGraph("parity-fan")
    src = g.add(ConstantUnit("split", 0, seconds=2.0))
    join = g.add(GatherUnit("join", seconds=2.0))
    for i in range(WIDTH):
        w = g.add(CallableUnit(f"work{i}", lambda ins: None, seconds=10.0))
        g.connect(src, w)
        g.connect(w, join)
    sink = MemoryAppender()
    sched = Scheduler(g, seed=0, max_concurrent=32)
    StampedeLog(sched, sink, xwf_id=derive_uuid("parity", "triana-bench"))
    sched.run()
    return list(sink.events)


def pegasus_events():
    sink = MemoryAppender()
    catalog = SiteCatalog(
        [Site("pool", slots=32, mean_queue_delay=1.0, hosts_per_site=8)]
    )
    run_pegasus_workflow(
        fan(width=WIDTH), sink, catalog=catalog,
        planner_config=PlannerConfig(cluster_size=1), seed=0,
    )
    return list(sink.events)


RATES = {}


@pytest.mark.parametrize("engine", ["triana", "pegasus"])
def test_engine_parity_loading(benchmark, engine):
    events = triana_events() if engine == "triana" else pegasus_events()

    loader = benchmark(lambda: load_events(events, batch_size=500))
    assert loader.stats.events_processed == len(events)
    rate = len(events) / benchmark.stats.stats.mean
    RATES[engine] = rate
    print(f"\n{engine}: {len(events)} events, {rate:,.0f} events/s")
    if len(RATES) == 2:
        ratio = max(RATES.values()) / min(RATES.values())
        print(f"parity ratio: {ratio:.2f}x (paper hypothesis: ~1)")
        # no engine-specific penalty: within 2x of each other
        assert ratio < 2.0
