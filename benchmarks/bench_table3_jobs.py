"""Tables III & IV: the two jobs.txt sections for one sub-workflow.

Paper shape: every job ran on one trianaworker node, try = 1, exit 0;
invocation duration ≈ runtime; aux jobs ~1 s; queue times small for jobs
that found a free slot immediately.
"""
from repro.core.reports import render_jobs, render_jobs_timing
from repro.core.statistics import job_rows


def test_table3_and_4_jobs(benchmark, dart_archive):
    archive, query, root, result = dart_archive
    sub = query.sub_workflows(root.wf_id)[0]

    rows = benchmark(job_rows, query, sub.wf_id)

    assert len(rows) == 19  # 16 execs + unit + zipper + Output_0
    worker = rows[0].site
    assert worker.startswith("trianaworker")
    for row in rows:
        # Table III shape
        assert row.try_number == 1
        assert row.site == worker  # whole bundle on one node
        assert row.invocation_duration is not None
        # Table IV shape
        assert row.exitcode == 0
        assert row.hostname == worker
        assert row.queue_time is not None and row.queue_time >= 0
        # engine-measured runtime ≈ invocation duration (no remote gap here)
        assert abs(row.runtime - row.invocation_duration) < 1e-6

    exec_rows = [r for r in rows if r.exec_job_id.startswith("exec")]
    aux_rows = [r for r in rows if not r.exec_job_id.startswith("exec")]
    assert all(r.runtime > 20 for r in exec_rows)
    assert all(r.runtime < 2 for r in aux_rows)
    # the unit task starts immediately: sub-second queue time (paper: 0.06)
    unit_row = next(r for r in rows if r.exec_job_id.startswith("unit:"))
    assert unit_row.queue_time < 1.0

    print("\n--- Table III (measured) ---")
    print(render_jobs(rows[:8]))
    print("\n--- Table IV (measured) ---")
    print(render_jobs_timing(rows[:8]))
