"""Sharded-archive scaling sweep: 1/2/4 shards, memory + file backends.

The single-writer loader tops out around the committed
``BENCH_loader.json`` rate; the sharded archive removes that ceiling by
partitioning the write path across independent WAL writers.  This bench
measures the aggregate insert capacity of an N-shard set and gates on
near-linear scaling.

Method — read before trusting the numbers
-----------------------------------------
Shards scale by giving each writer its *own core and its own database
file*.  This repository's CI container is frequently 1-core
(``cpu_count`` is recorded in the output), where N concurrent writer
threads time-slice one CPU and the wall-clock of a concurrent run stays
flat by construction.  The capacity figure therefore measures what the
architecture actually provides — N *independent* write paths with no
shared locks — the honest way:

* the workload is routed once with the production router
  (``partition_events``: crc32 of the root workflow id, the bus
  partitioner verbatim);
* each shard's slice is loaded through its own ``StampedeLoader``
  (batch 500, the PR 2 transactional-batch machinery), *measured in
  isolation*;
* ``capacity_events_per_second`` is the sum of the per-shard sustained
  rates — the aggregate a deployment sustains when each shard writer
  has its own core, exactly the ISSUE's 4 x ~63k/s arithmetic;
* the true concurrent wall-clock of a ``ShardedLoader`` run is also
  recorded (``concurrent``), untuned and transparent, so nobody
  mistakes capacity for single-box 1-core speedup.

Gates (tunable via flags / ``STAMPEDE_SHARD_MIN_SCALING``):

* file-backend capacity scaling at 4 shards vs 1 shard >= 3.0x;
* absolute aggregate file capacity floor;
* optional regression check against the committed ``BENCH_shard.json``.

Usage::

    python benchmarks/bench_shard.py --scale 30 --roots 8 -o BENCH_shard.json
    python benchmarks/bench_shard.py --baseline BENCH_shard.json  # CI gate
"""
import argparse
import gc
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.archive.shard import ShardSet, ShardedLoader, partition_events
from repro.archive.store import StampedeArchive
from repro.loader import StampedeLoader
from repro.orm import MemoryDatabase
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.triana.appender import MemoryAppender
from repro.workloads import cybershake

SHARD_COUNTS = (1, 2, 4)
BATCH_SIZE = 500


def _events_for_root(n_ruptures: int, seed: int):
    """One seeded CyberShake run — one root workflow hierarchy."""
    sink = MemoryAppender()
    catalog = SiteCatalog(
        [Site("pool", slots=64, mean_queue_delay=2.0, hosts_per_site=16)]
    )
    run_pegasus_workflow(
        cybershake(n_ruptures=n_ruptures),
        sink,
        catalog=catalog,
        planner_config=PlannerConfig(cluster_size=8),
        seed=seed,
    )
    return list(sink.events)


def build_workload(n_ruptures: int, roots: int, max_shards: int):
    """``roots`` distinct hierarchies, guaranteed to touch every shard.

    Root uuids are seed-derived; keep adding seeds (up to 4x the ask)
    until the ``max_shards``-way partition has no empty slice, so the
    capacity sum never silently averages over idle shards.
    """
    events = []
    seed = 0
    while seed < roots or any(
        not s for s in partition_events(events, max_shards)
    ):
        if seed >= roots * 4:
            raise RuntimeError(
                f"{seed} seeds still leave an empty {max_shards}-way shard"
            )
        events.extend(_events_for_root(n_ruptures, seed=seed))
        seed += 1
    return events, seed


def _open_archive(backend: str, path: Path):
    if backend == "memory":
        return StampedeArchive(MemoryDatabase())
    return StampedeArchive.open(f"sqlite:///{path}")


def measure_shard_slice(slice_events, backend: str, path: Path) -> dict:
    """One shard's sustained writer rate, measured in isolation."""
    gc.collect()
    archive = _open_archive(backend, path)
    loader = StampedeLoader(archive, batch_size=BATCH_SIZE)
    start = time.perf_counter()
    for event in slice_events:
        loader.process(event)
    loader.flush()
    wall = time.perf_counter() - start
    snap = loader.stats.snapshot()
    archive.close()
    return {
        "events": len(slice_events),
        "rows_inserted": snap["rows_inserted"],
        "flushes": snap["flushes"],
        "wall_seconds": round(wall, 4),
        "events_per_second": round(len(slice_events) / wall, 1) if wall else 0.0,
    }


def measure_concurrent(events, shards: int, backend: str, workdir: Path) -> dict:
    """Transparent 1-box wall-clock of the real ShardedLoader path."""
    gc.collect()
    if backend == "memory":
        shard_set = ShardSet.create(None, shards, backend="memory")
    else:
        shard_set = ShardSet.create(workdir / f"concurrent-{shards}", shards)
    sharded = ShardedLoader(shard_set, batch_size=BATCH_SIZE)
    sharded.process_all(events)
    sharded.close()
    wall = sharded.wall_seconds
    shard_set.close()
    return {
        "wall_seconds": round(wall, 4),
        "events_per_second": round(len(events) / wall, 1) if wall else 0.0,
    }


def run_sweep(events, runs: int, workdir: Path) -> dict:
    """Per shard-count, per backend: best-of-``runs`` capacity + the
    concurrent wall-clock."""
    results = {}
    for shards in SHARD_COUNTS:
        slices = partition_events(events, shards)
        per_backend = {}
        for backend in ("memory", "file"):
            best = None
            for attempt in range(runs):
                per_shard = []
                for index, slice_events in enumerate(slices):
                    path = (
                        workdir
                        / f"isolated-{backend}-{shards}-{attempt}-{index}.db"
                    )
                    sample = measure_shard_slice(slice_events, backend, path)
                    sample["shard"] = index
                    per_shard.append(sample)
                    if path.exists():
                        path.unlink()
                capacity = round(
                    sum(s["events_per_second"] for s in per_shard), 1
                )
                if best is None or capacity > best["capacity_events_per_second"]:
                    best = {
                        "events": len(events),
                        "per_shard": per_shard,
                        "capacity_events_per_second": capacity,
                    }
            best["concurrent"] = measure_concurrent(
                events, shards, backend, workdir
            )
            per_backend[backend] = best
        results[str(shards)] = per_backend
    return results


def scaling_ratios(sweep: dict) -> dict:
    out = {}
    for backend in ("memory", "file"):
        base = sweep["1"][backend]["capacity_events_per_second"]
        out[backend] = {
            f"capacity_x{n}_vs_x1": round(
                sweep[str(n)][backend]["capacity_events_per_second"] / base, 2
            )
            for n in SHARD_COUNTS
            if str(n) in sweep
        }
    return out


def check_baseline(results: dict, baseline_path: str, threshold: float) -> list:
    """Regression gate vs the committed BENCH_shard.json (loose floor:
    shared runners drift, so only a collapse below ``threshold`` of the
    committed 4-shard file capacity fails)."""
    committed = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    failures = []
    try:
        committed_cap = committed["shards"]["4"]["file"][
            "capacity_events_per_second"
        ]
    except KeyError:
        return [f"baseline {baseline_path} has no 4-shard file capacity"]
    floor = committed_cap * threshold
    measured = results["shards"]["4"]["file"]["capacity_events_per_second"]
    if measured < floor:
        failures.append(
            f"4-shard file capacity {measured:.0f} ev/s fell below "
            f"{threshold:.0%} of committed {committed_cap:.0f} ev/s"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=int, default=30, metavar="N_RUPTURES",
        help="CyberShake ruptures per root workflow (default 30)",
    )
    parser.add_argument(
        "--roots", type=int, default=8,
        help="distinct root workflows (topped up until every shard is hit)",
    )
    parser.add_argument("--runs", type=int, default=3, help="rounds, best-of")
    parser.add_argument("-o", "--output", metavar="PATH", help="write JSON here")
    parser.add_argument(
        "--min-scaling",
        type=float,
        default=float(os.environ.get("STAMPEDE_SHARD_MIN_SCALING", "3.0")),
        help="4-shard vs 1-shard file-backend capacity floor "
        "(default 3.0, env STAMPEDE_SHARD_MIN_SCALING)",
    )
    parser.add_argument(
        "--min-eps",
        type=float,
        default=float(os.environ.get("STAMPEDE_SHARD_MIN_EPS", "10000")),
        help="absolute 4-shard file aggregate capacity floor, events/s",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="committed BENCH_shard.json to regression-check against",
    )
    parser.add_argument(
        "--regression-threshold", type=float, default=0.25,
        help="fraction of the committed capacity below which --baseline fails",
    )
    args = parser.parse_args(argv)

    events, seeds_used = build_workload(args.scale, args.roots, max(SHARD_COUNTS))
    with tempfile.TemporaryDirectory() as tmp:
        sweep = run_sweep(events, args.runs, Path(tmp))

    results = {
        "method": (
            "capacity_events_per_second = sum of per-shard writer rates, each "
            "shard's crc32-routed slice loaded in isolation through its own "
            "StampedeLoader (batch 500) — the aggregate of N independent "
            "write paths, i.e. throughput with one core per shard writer. "
            "'concurrent' records the untuned single-box wall-clock of the "
            "threaded ShardedLoader on this host for transparency; on a "
            "1-core runner it is expected to stay flat."
        ),
        "cpu_count": os.cpu_count(),
        "scale": {
            "n_ruptures": args.scale,
            "roots": seeds_used,
            "events": len(events),
        },
        "batch_size": BATCH_SIZE,
        "runs": args.runs,
        "shards": sweep,
        "scaling": scaling_ratios(sweep),
    }

    failures = []
    file_scaling = results["scaling"]["file"]["capacity_x4_vs_x1"]
    if file_scaling < args.min_scaling:
        failures.append(
            f"file capacity scaling {file_scaling:.2f}x at 4 shards below "
            f"the {args.min_scaling:.2f}x floor"
        )
    file_capacity = sweep["4"]["file"]["capacity_events_per_second"]
    if file_capacity < args.min_eps:
        failures.append(
            f"4-shard file capacity {file_capacity:.0f} ev/s below the "
            f"{args.min_eps:.0f} ev/s floor"
        )
    if args.baseline and os.path.exists(args.baseline):
        failures.extend(
            check_baseline(results, args.baseline, args.regression_threshold)
        )
    results["failures"] = failures
    results["ok"] = not failures

    text = json.dumps(results, indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
    print(text)
    if failures:
        print(f"shard bench FAILED: {len(failures)} gate(s)", file=sys.stderr)
        return 1
    print(
        f"shard bench OK: 4-shard file capacity {file_capacity:.0f} ev/s "
        f"({file_scaling:.2f}x vs 1 shard)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
