"""Loader scaling and ablations (paper §IV-E, §V-D, §VIII).

The paper states the loader "has been shown to scale well for large
workflows", e.g. CyberShake with O(10^6) tasks, and that insert batching
was "implemented to improve the performance of Pegasus workflows logging".
These benches measure:

* event-loading throughput vs workflow size (shape: near-linear, i.e.
  events/second roughly flat as workflows grow);
* the batching ablation (batch 1 vs 50 vs 1000);
* file-stream vs AMQP-queue ingestion;
* sqlite vs pure-memory archive backends;
* the file-backed sqlite path at batch 500 (one fsync'd transaction per
  batch — the transactional-batching win).

Besides the pytest-benchmark suite, the module runs standalone as a CI
smoke check::

    python benchmarks/bench_loader_scaling.py --scale 10 -o bench.json

which loads a reduced workload through the memory- and file-backed
archives and writes throughput + flush-latency numbers as JSON.
"""
import argparse
import gc
import itertools
import json
import os
import sys
import tempfile
import time
from pathlib import Path

try:
    import pytest
except ImportError:  # pragma: no cover - smoke mode must run without pytest
    class _MarkShim:
        @staticmethod
        def parametrize(*_args, **_kwargs):
            return lambda fn: fn

    class _PytestShim:
        mark = _MarkShim()

    pytest = _PytestShim()  # type: ignore[assignment]

from repro.archive.store import StampedeArchive
from repro.bus.broker import Broker
from repro.bus.client import BusSink, EventConsumer
from repro.loader import StampedeLoader, load_events, load_file
from repro.orm import MemoryDatabase
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.triana.appender import MemoryAppender
from repro.workloads import cybershake


def _events_for(n_ruptures: int, seed: int = 0):
    sink = MemoryAppender()
    catalog = SiteCatalog(
        [Site("pool", slots=64, mean_queue_delay=2.0, hosts_per_site=16)]
    )
    run_pegasus_workflow(
        cybershake(n_ruptures=n_ruptures),
        sink,
        catalog=catalog,
        planner_config=PlannerConfig(cluster_size=8),
        seed=seed,
    )
    return list(sink.events)


@pytest.mark.parametrize("n_ruptures", [25, 100, 400])
def test_loader_throughput_vs_size(benchmark, n_ruptures):
    """events/second should stay roughly flat as workflows grow."""
    events = _events_for(n_ruptures)

    def load():
        return load_events(events, batch_size=500)

    loader = benchmark(load)
    n_tasks = 2 + 2 * n_ruptures * 2 + 1
    rate = len(events) / benchmark.stats.stats.mean
    print(
        f"\nloader: {n_tasks} tasks, {len(events)} events, "
        f"{rate:,.0f} events/s"
    )
    assert loader.stats.events_processed == len(events)


@pytest.mark.parametrize("batch_size", [1, 50, 1000])
def test_batching_ablation(benchmark, batch_size):
    """The paper's batching design choice: bigger batches load faster."""
    events = _events_for(100)

    loader = benchmark(lambda: load_events(events, batch_size=batch_size))
    assert loader.stats.events_processed == len(events)
    print(
        f"\nbatch={batch_size}: {loader.stats.flushes} flushes, "
        f"{len(events) / benchmark.stats.stats.mean:,.0f} events/s"
    )


def test_file_vs_bus_ingestion(benchmark, tmp_path):
    """nl_load supports both inputs; the bus path adds broker overhead."""
    events = _events_for(50)

    def via_bus():
        broker = Broker()
        consumer = EventConsumer(broker, "stampede.#", queue_name="q")
        sink = BusSink(broker)
        for event in events:
            sink.emit(event)
        loader = StampedeLoader(StampedeArchive.open("sqlite:///:memory:"))
        for event in consumer:
            loader.process(event)
        loader.flush()
        return loader

    loader = benchmark(via_bus)
    assert loader.stats.events_processed == len(events)


@pytest.mark.parametrize("backend", ["sqlite", "memory"])
def test_backend_ablation(benchmark, backend):
    """sqlite vs the pure-memory archive backend."""
    events = _events_for(50)

    def load():
        archive = (
            StampedeArchive(MemoryDatabase())
            if backend == "memory"
            else StampedeArchive.open("sqlite:///:memory:")
        )
        loader = StampedeLoader(archive, batch_size=500)
        loader.process_all(events)
        return loader

    loader = benchmark(load)
    assert loader.stats.events_processed == len(events)


def test_file_backend_batched(benchmark, tmp_path):
    """The production-shaped path: file-backed sqlite, batch_size=500.

    Each flush is one WAL transaction (one fsync) instead of a commit
    per statement, which is where the real-time headroom comes from."""
    events = _events_for(100)
    fresh = itertools.count()

    def load():
        db = tmp_path / f"bench-{next(fresh)}.db"
        loader = StampedeLoader(
            StampedeArchive.open(f"sqlite:///{db}"), batch_size=500
        )
        loader.process_all(events)
        return loader

    loader = benchmark(load)
    assert loader.stats.events_processed == len(events)
    pct = loader.stats.latency_percentiles()
    print(
        f"\nfile sqlite batch=500: {loader.stats.flushes} flushes, "
        f"{len(events) / benchmark.stats.stats.mean:,.0f} events/s, "
        f"flush p95={pct['p95'] * 1000:.2f}ms"
    )


def test_large_workflow_loads(benchmark):
    """One big shot: a ~20k-task CyberShake slice (the O(10^6) claim's
    shape at bench-friendly scale — throughput must not collapse)."""
    events = _events_for(2500)  # ~10k tasks

    loader = benchmark.pedantic(
        lambda: load_events(events, batch_size=2000), rounds=1, iterations=1
    )
    rate = len(events) / benchmark.stats.stats.mean
    print(f"\nlarge workflow: {len(events)} events at {rate:,.0f} events/s")
    assert rate > 5_000  # comfortably real-time for any engine


# ---------------------------------------------------------------- smoke --
# The smoke benchmark drives the real ingest entry point (load_file) over
# a rendered BP log, sweeping the parse-pipeline configurations:
#
#   baseline     workers=0, strict parser  — the legacy single-thread path
#   workers-0    workers=0, fast parser    — micro-optimized, inline
#   workers-N    N parse threads, fast parser
#
# and reports events/second + flush-latency percentiles per (config,
# backend), plus each config's speedup over the baseline.  The committed
# BENCH_loader.json at the repo root is this benchmark's output on the
# reference container; CI re-runs the sweep and gates on the speedups
# (and optionally on regression vs the committed numbers).

SMOKE_CONFIGS = [
    {"name": "baseline", "workers": 0, "parse_mode": "strict"},
    {"name": "workers-0", "workers": 0, "parse_mode": "fast"},
    {"name": "workers-1", "workers": 1, "parse_mode": "fast"},
    {"name": "workers-2", "workers": 2, "parse_mode": "fast"},
    {"name": "workers-4", "workers": 4, "parse_mode": "fast"},
]


def _write_bp(events, path) -> int:
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(event.to_bp() + "\n")
    return len(events)


def _smoke_one(
    bp_path, n_events: int, batch_size: int, conn_string: str, config: dict
) -> dict:
    loader = StampedeLoader(
        StampedeArchive.open(conn_string), batch_size=batch_size
    )
    # a GC pause landing inside one config's run and not another's looks
    # like a speedup difference; collect before, disable during
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        load_file(
            str(bp_path),
            loader,
            workers=config["workers"],
            parse_mode=config["parse_mode"],
        )
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    stats = loader.stats
    loader.archive.close()
    assert stats.events_processed == n_events, (
        f"{config['name']}: processed {stats.events_processed} != {n_events}"
    )
    return {
        "events": stats.events_processed,
        "rows_inserted": stats.rows_inserted,
        "rows_updated": stats.rows_updated,
        "flushes": stats.flushes,
        "wall_seconds": round(elapsed, 4),
        "events_per_second": round(stats.events_processed / elapsed, 1),
        "flush_latency_ms": {
            k: round(v * 1000, 3) for k, v in stats.latency_percentiles().items()
        },
    }


def smoke(n_ruptures: int = 10, batch_size: int = 500, runs: int = 2) -> dict:
    """Reduced-scale ingest sweep over parse-pipeline configs and both
    sqlite backends; speedups are each config vs the strict baseline.

    Measurement is **interleaved**: every round measures every config
    back to back, and a config's speedup is its best per-round ratio
    against that same round's baseline.  Shared runners drift (noisy
    neighbors, frequency scaling); comparing measurements taken seconds
    apart within one round is far steadier than comparing each config's
    best absolute number across the whole sweep.  The reported
    events/second per config is still its best round (absolute floors,
    human-readable numbers).
    """
    events = _events_for(n_ruptures)
    runs = max(1, runs)
    results = {
        "scale": {"n_ruptures": n_ruptures, "events": len(events)},
        "batch_size": batch_size,
        "runs": runs,
        "configs": {},
        "speedups": {},
    }
    rounds = {
        config["name"]: {"memory": [], "file": []} for config in SMOKE_CONFIGS
    }
    with tempfile.TemporaryDirectory() as tmp:
        bp_path = Path(tmp) / "smoke.bp"
        n_events = _write_bp(events, bp_path)
        fresh = itertools.count()
        for _round in range(runs):
            for config in SMOKE_CONFIGS:
                rounds[config["name"]]["memory"].append(
                    _smoke_one(
                        bp_path, n_events, batch_size, "sqlite:///:memory:", config
                    )
                )
                rounds[config["name"]]["file"].append(
                    _smoke_one(
                        bp_path,
                        n_events,
                        batch_size,
                        f"sqlite:///{Path(tmp) / f'smoke-{next(fresh)}.db'}",
                        config,
                    )
                )
    for config in SMOKE_CONFIGS:
        name = config["name"]
        results["configs"][name] = {
            "workers": config["workers"],
            "parse_mode": config["parse_mode"],
            "memory": max(
                rounds[name]["memory"], key=lambda r: r["events_per_second"]
            ),
            "file": max(
                rounds[name]["file"], key=lambda r: r["events_per_second"]
            ),
        }
    for backend in ("memory", "file"):
        base_rounds = [
            r["events_per_second"] for r in rounds["baseline"][backend]
        ]
        results["speedups"][backend] = {
            name: round(
                max(
                    per_backend[backend][i]["events_per_second"] / base_rounds[i]
                    for i in range(runs)
                ),
                2,
            )
            for name, per_backend in rounds.items()
        }
    return results


def _check_gates(results: dict, args) -> list:
    """Return a list of failure strings (empty = all gates pass)."""
    failures = []
    file_eps = results["configs"]["workers-4"]["file"]["events_per_second"]
    if file_eps < args.min_eps:
        failures.append(
            f"file-backend throughput below smoke floor "
            f"({file_eps:,.0f} < {args.min_eps:,.0f} events/s)"
        )
    mem_speedup = results["speedups"]["memory"]["workers-4"]
    if mem_speedup < args.min_speedup_memory:
        failures.append(
            f"memory-backend workers-4 speedup below floor "
            f"({mem_speedup:.2f}x < {args.min_speedup_memory:.2f}x vs baseline)"
        )
    file_speedup = results["speedups"]["file"]["workers-4"]
    if file_speedup < args.min_speedup_file:
        failures.append(
            f"file-backend workers-4 speedup below floor "
            f"({file_speedup:.2f}x < {args.min_speedup_file:.2f}x vs baseline)"
        )
    return failures


def _check_baseline(results: dict, baseline_path: str, threshold: float) -> list:
    """Compare against a committed BENCH_loader.json; a config/backend
    dropping below ``threshold`` of its committed events/s is a failure.
    Committed configs absent from this run are ignored (and vice versa),
    so the comparison survives sweep changes."""
    committed = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    failures = []
    for name, entry in committed.get("configs", {}).items():
        current = results["configs"].get(name)
        if current is None:
            continue
        for backend in ("memory", "file"):
            old = entry.get(backend, {}).get("events_per_second")
            new = current.get(backend, {}).get("events_per_second")
            if not old or not new:
                continue
            if new < old * threshold:
                failures.append(
                    f"{name}/{backend} regressed: {new:,.0f} events/s < "
                    f"{threshold:.0%} of committed {old:,.0f}"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Loader ingest-pipeline smoke benchmark (JSON output)."
    )
    parser.add_argument("--scale", type=int, default=10, metavar="N_RUPTURES")
    parser.add_argument("-b", "--batch-size", type=int, default=500)
    parser.add_argument("-o", "--output", metavar="PATH", help="write JSON here")
    parser.add_argument(
        "--runs",
        type=int,
        default=2,
        help="measure each config this many times and keep the best (default 2)",
    )
    parser.add_argument(
        "--min-eps",
        type=float,
        default=float(os.environ.get("BENCH_SMOKE_MIN_EPS", 2_000)),
        help="file-backend events/s floor for the smoke gate "
        "(default 2000, or $BENCH_SMOKE_MIN_EPS)",
    )
    parser.add_argument(
        "--min-speedup-memory",
        type=float,
        default=float(os.environ.get("BENCH_SMOKE_MIN_SPEEDUP_MEM", 2.0)),
        help="workers-4 vs baseline speedup floor, memory backend "
        "(default 2.0, or $BENCH_SMOKE_MIN_SPEEDUP_MEM)",
    )
    parser.add_argument(
        "--min-speedup-file",
        type=float,
        default=float(os.environ.get("BENCH_SMOKE_MIN_SPEEDUP_FILE", 1.3)),
        help="workers-4 vs baseline speedup floor, file backend "
        "(default 1.3, or $BENCH_SMOKE_MIN_SPEEDUP_FILE)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed BENCH_loader.json to compare against "
        "(fails on per-config regression past --regression-threshold)",
    )
    parser.add_argument(
        "--regression-threshold",
        type=float,
        default=float(os.environ.get("BENCH_SMOKE_REGRESSION_THRESHOLD", 0.5)),
        help="fraction of committed events/s below which the baseline "
        "comparison fails (default 0.5: CI runners vary a lot, so only "
        "a halving is treated as a real regression)",
    )
    args = parser.parse_args(argv)

    results = smoke(
        n_ruptures=args.scale, batch_size=args.batch_size, runs=args.runs
    )
    results["gates"] = {
        "min_eps": args.min_eps,
        "min_speedup_memory": args.min_speedup_memory,
        "min_speedup_file": args.min_speedup_file,
    }
    payload = json.dumps(results, indent=2)
    if args.output:
        Path(args.output).write_text(payload + "\n", encoding="utf-8")
    print(payload)

    failures = _check_gates(results, args)
    if args.baseline and os.path.exists(args.baseline):
        failures += _check_baseline(
            results, args.baseline, args.regression_threshold
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
