"""Loader scaling and ablations (paper §IV-E, §V-D, §VIII).

The paper states the loader "has been shown to scale well for large
workflows", e.g. CyberShake with O(10^6) tasks, and that insert batching
was "implemented to improve the performance of Pegasus workflows logging".
These benches measure:

* event-loading throughput vs workflow size (shape: near-linear, i.e.
  events/second roughly flat as workflows grow);
* the batching ablation (batch 1 vs 50 vs 1000);
* file-stream vs AMQP-queue ingestion;
* sqlite vs pure-memory archive backends;
* the file-backed sqlite path at batch 500 (one fsync'd transaction per
  batch — the transactional-batching win).

Besides the pytest-benchmark suite, the module runs standalone as a CI
smoke check::

    python benchmarks/bench_loader_scaling.py --scale 10 -o bench.json

which loads a reduced workload through the memory- and file-backed
archives and writes throughput + flush-latency numbers as JSON.
"""
import argparse
import itertools
import json
import os
import sys
import tempfile
import time
from pathlib import Path

try:
    import pytest
except ImportError:  # pragma: no cover - smoke mode must run without pytest
    class _MarkShim:
        @staticmethod
        def parametrize(*_args, **_kwargs):
            return lambda fn: fn

    class _PytestShim:
        mark = _MarkShim()

    pytest = _PytestShim()  # type: ignore[assignment]

from repro.archive.store import StampedeArchive
from repro.bus.broker import Broker
from repro.bus.client import BusSink, EventConsumer
from repro.loader import StampedeLoader, load_events
from repro.orm import MemoryDatabase
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.triana.appender import MemoryAppender
from repro.workloads import cybershake


def _events_for(n_ruptures: int, seed: int = 0):
    sink = MemoryAppender()
    catalog = SiteCatalog(
        [Site("pool", slots=64, mean_queue_delay=2.0, hosts_per_site=16)]
    )
    run_pegasus_workflow(
        cybershake(n_ruptures=n_ruptures),
        sink,
        catalog=catalog,
        planner_config=PlannerConfig(cluster_size=8),
        seed=seed,
    )
    return list(sink.events)


@pytest.mark.parametrize("n_ruptures", [25, 100, 400])
def test_loader_throughput_vs_size(benchmark, n_ruptures):
    """events/second should stay roughly flat as workflows grow."""
    events = _events_for(n_ruptures)

    def load():
        return load_events(events, batch_size=500)

    loader = benchmark(load)
    n_tasks = 2 + 2 * n_ruptures * 2 + 1
    rate = len(events) / benchmark.stats.stats.mean
    print(
        f"\nloader: {n_tasks} tasks, {len(events)} events, "
        f"{rate:,.0f} events/s"
    )
    assert loader.stats.events_processed == len(events)


@pytest.mark.parametrize("batch_size", [1, 50, 1000])
def test_batching_ablation(benchmark, batch_size):
    """The paper's batching design choice: bigger batches load faster."""
    events = _events_for(100)

    loader = benchmark(lambda: load_events(events, batch_size=batch_size))
    assert loader.stats.events_processed == len(events)
    print(
        f"\nbatch={batch_size}: {loader.stats.flushes} flushes, "
        f"{len(events) / benchmark.stats.stats.mean:,.0f} events/s"
    )


def test_file_vs_bus_ingestion(benchmark, tmp_path):
    """nl_load supports both inputs; the bus path adds broker overhead."""
    events = _events_for(50)

    def via_bus():
        broker = Broker()
        consumer = EventConsumer(broker, "stampede.#", queue_name="q")
        sink = BusSink(broker)
        for event in events:
            sink.emit(event)
        loader = StampedeLoader(StampedeArchive.open("sqlite:///:memory:"))
        for event in consumer:
            loader.process(event)
        loader.flush()
        return loader

    loader = benchmark(via_bus)
    assert loader.stats.events_processed == len(events)


@pytest.mark.parametrize("backend", ["sqlite", "memory"])
def test_backend_ablation(benchmark, backend):
    """sqlite vs the pure-memory archive backend."""
    events = _events_for(50)

    def load():
        archive = (
            StampedeArchive(MemoryDatabase())
            if backend == "memory"
            else StampedeArchive.open("sqlite:///:memory:")
        )
        loader = StampedeLoader(archive, batch_size=500)
        loader.process_all(events)
        return loader

    loader = benchmark(load)
    assert loader.stats.events_processed == len(events)


def test_file_backend_batched(benchmark, tmp_path):
    """The production-shaped path: file-backed sqlite, batch_size=500.

    Each flush is one WAL transaction (one fsync) instead of a commit
    per statement, which is where the real-time headroom comes from."""
    events = _events_for(100)
    fresh = itertools.count()

    def load():
        db = tmp_path / f"bench-{next(fresh)}.db"
        loader = StampedeLoader(
            StampedeArchive.open(f"sqlite:///{db}"), batch_size=500
        )
        loader.process_all(events)
        return loader

    loader = benchmark(load)
    assert loader.stats.events_processed == len(events)
    pct = loader.stats.latency_percentiles()
    print(
        f"\nfile sqlite batch=500: {loader.stats.flushes} flushes, "
        f"{len(events) / benchmark.stats.stats.mean:,.0f} events/s, "
        f"flush p95={pct['p95'] * 1000:.2f}ms"
    )


def test_large_workflow_loads(benchmark):
    """One big shot: a ~20k-task CyberShake slice (the O(10^6) claim's
    shape at bench-friendly scale — throughput must not collapse)."""
    events = _events_for(2500)  # ~10k tasks

    loader = benchmark.pedantic(
        lambda: load_events(events, batch_size=2000), rounds=1, iterations=1
    )
    rate = len(events) / benchmark.stats.stats.mean
    print(f"\nlarge workflow: {len(events)} events at {rate:,.0f} events/s")
    assert rate > 5_000  # comfortably real-time for any engine


# ---------------------------------------------------------------- smoke --
def _smoke_one(events, batch_size: int, conn_string: str) -> dict:
    loader = StampedeLoader(
        StampedeArchive.open(conn_string), batch_size=batch_size
    )
    start = time.perf_counter()
    loader.process_all(events)
    elapsed = time.perf_counter() - start
    stats = loader.stats
    loader.archive.close()
    return {
        "events": stats.events_processed,
        "rows_inserted": stats.rows_inserted,
        "rows_updated": stats.rows_updated,
        "flushes": stats.flushes,
        "wall_seconds": round(elapsed, 4),
        "events_per_second": round(stats.events_processed / elapsed, 1),
        "flush_latency_ms": {
            k: round(v * 1000, 3) for k, v in stats.latency_percentiles().items()
        },
    }


def _best_of(runs: int, events, batch_size: int, make_conn) -> dict:
    """Best-of-N throughput: shared CI runners are noisy, so a single
    slow run should not look like a code regression."""
    best = None
    for i in range(max(1, runs)):
        result = _smoke_one(events, batch_size, make_conn(i))
        if best is None or result["events_per_second"] > best["events_per_second"]:
            best = result
    return best


def smoke(n_ruptures: int = 10, batch_size: int = 500, runs: int = 2) -> dict:
    """Reduced-scale throughput check for both sqlite backends."""
    events = _events_for(n_ruptures)
    results = {
        "scale": {"n_ruptures": n_ruptures, "events": len(events)},
        "batch_size": batch_size,
        "runs": max(1, runs),
        "memory": _best_of(
            runs, events, batch_size, lambda i: "sqlite:///:memory:"
        ),
    }
    with tempfile.TemporaryDirectory() as tmp:
        results["file"] = _best_of(
            runs,
            events,
            batch_size,
            lambda i: f"sqlite:///{Path(tmp) / f'smoke-{i}.db'}",
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Loader throughput smoke benchmark (JSON output)."
    )
    parser.add_argument("--scale", type=int, default=10, metavar="N_RUPTURES")
    parser.add_argument("-b", "--batch-size", type=int, default=500)
    parser.add_argument("-o", "--output", metavar="PATH", help="write JSON here")
    parser.add_argument(
        "--runs",
        type=int,
        default=2,
        help="measure each backend this many times and keep the best (default 2)",
    )
    parser.add_argument(
        "--min-eps",
        type=float,
        default=float(os.environ.get("BENCH_SMOKE_MIN_EPS", 2_000)),
        help="file-backend events/s floor for the smoke gate "
        "(default 2000, or $BENCH_SMOKE_MIN_EPS)",
    )
    args = parser.parse_args(argv)

    results = smoke(
        n_ruptures=args.scale, batch_size=args.batch_size, runs=args.runs
    )
    results["min_eps"] = args.min_eps
    payload = json.dumps(results, indent=2)
    if args.output:
        Path(args.output).write_text(payload + "\n", encoding="utf-8")
    print(payload)
    # smoke gate: the file backend must stay comfortably real-time even
    # at reduced scale; regression here means batching broke.
    if results["file"]["events_per_second"] < args.min_eps:
        print(
            f"FAIL: file-backend throughput below smoke floor "
            f"({results['file']['events_per_second']:,.0f} < {args.min_eps:,.0f} events/s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
