"""Table II: breakdown.txt for one DART sub-workflow.

Paper shape: one unit-range task, Output_0 and zipper at ~1 s each, exec
tasks dominating with runtimes in the tens-to-hundreds of seconds, each
type count 1 with success 1 / failed 0 inside a single sub-workflow.
"""
from repro.core.reports import render_breakdown
from repro.core.statistics import job_type_breakdown


def test_table2_breakdown(benchmark, dart_archive):
    archive, query, root, result = dart_archive
    sub = query.sub_workflows(root.wf_id)[0]

    breakdown = benchmark(job_type_breakdown, query, sub.wf_id)

    by_type = {b.type_name: b for b in breakdown}
    # structural shape of Table II
    exec_types = [n for n in by_type if n.startswith("exec")]
    assert len(exec_types) == 16
    assert any(n.startswith("unit:") for n in by_type)
    assert "file.zipper" in by_type
    assert "file.Output_0" in by_type
    for b in breakdown:
        assert b.count == 1  # distinct types within one sub-workflow
        assert b.failed == 0
        assert b.succeeded == 1
        assert b.min_runtime == b.max_runtime == b.mean_runtime
    # aux tasks ~1 s, exec tasks dominate (paper: 36-75 s band per excerpt)
    assert by_type["file.zipper"].mean_runtime < 2.0
    assert by_type["file.Output_0"].mean_runtime < 2.0
    for name in exec_types:
        assert by_type[name].mean_runtime > 20.0

    print("\n--- Table II (measured, first sub-workflow) ---")
    print(render_breakdown(breakdown))


def test_table2_aggregated_meta_workflow(benchmark, dart_archive):
    """The paper notes aggregated statistics across the meta workflow are
    also available: exec types then accumulate counts across bundles."""
    archive, query, root, result = dart_archive

    breakdown = benchmark(
        job_type_breakdown, query, root.wf_id, True
    )
    by_type = {b.type_name: b for b in breakdown}
    # exec0..exec15 appear once per 16-task bundle (19 full + partial last)
    assert by_type["exec0"].count == 20
    assert by_type["exec15"].count == 19
    assert sum(b.count for n, b in by_type.items() if n.startswith("exec")) == 306
