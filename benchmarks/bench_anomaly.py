"""Anomaly-detection quality and throughput (paper §IV / refs [22],[37]:
"Anomaly detection to distinguish actual failures from normal variation").

Quality: inject stragglers into a clean runtime distribution and measure
recall/false-positive rate.  Throughput: the detector must keep up with
the loader's event rate.
"""
import numpy as np
import pytest

from repro.core.anomaly import EwmaDetector, RobustRuntimeDetector


def _stream(n=5_000, n_stragglers=25, seed=0):
    rng = np.random.default_rng(seed)
    runtimes = rng.normal(60.0, 4.0, n).clip(min=1.0)
    straggler_idx = set(rng.choice(np.arange(100, n), n_stragglers,
                                   replace=False).tolist())
    for i in straggler_idx:
        runtimes[i] *= rng.uniform(4.0, 10.0)
    return runtimes, straggler_idx


def test_robust_detector_quality(benchmark):
    runtimes, stragglers = _stream()

    def detect():
        det = RobustRuntimeDetector(threshold=5.0)
        for i, r in enumerate(runtimes):
            det.observe("exec", float(r), job_id=str(i))
        return det

    det = benchmark(detect)
    flagged = {int(a.job_id) for a in det.anomalies if a.kind == "slow"}
    recall = len(flagged & stragglers) / len(stragglers)
    false_pos = len(flagged - stragglers)
    print(f"\nrecall {recall:.2f}, false positives {false_pos}/"
          f"{len(runtimes) - len(stragglers)}")
    assert recall > 0.9  # catches nearly every straggler
    assert false_pos < len(runtimes) * 0.01  # <1% false-positive rate


def test_ewma_detector_quality(benchmark):
    runtimes, stragglers = _stream()

    def detect():
        det = EwmaDetector(alpha=0.05, threshold=5.0)
        for i, r in enumerate(runtimes):
            det.observe("exec", float(r), job_id=str(i))
        return det

    det = benchmark(detect)
    flagged = {int(a.job_id) for a in det.anomalies if a.kind == "slow"}
    recall = len(flagged & stragglers) / len(stragglers)
    assert recall > 0.8


def test_detector_throughput(benchmark):
    """Observations/second — must exceed the loader's event rate."""
    runtimes, _ = _stream(n=20_000, n_stragglers=0)

    def run():
        det = RobustRuntimeDetector()
        for r in runtimes:
            det.observe("exec", float(r))
        return det

    det = benchmark(run)
    rate = len(runtimes) / benchmark.stats.stats.mean
    print(f"\ndetector: {rate:,.0f} observations/s")
    assert rate > 10_000
