"""Chaos smoke benchmark: the resilience layer under a seeded fault plan.

Runs one Pegasus/CyberShake event stream through the pipeline twice —
once over a clean broker and archive, once through a :class:`FaultPlan`
injecting message drops, duplicates, reorders, a forced consumer
disconnect, transient archive lock failures, and poison payloads — then
checks the chaotic archive is **row-for-row identical** (surrogate keys
included) to the fault-free baseline and that every poison event landed
in the dead-letter queue. That identity is the resilience layer's whole
contract; a mismatch is a regression and exits nonzero.

Standalone, for CI::

    python benchmarks/bench_chaos.py --scale 5 --seed 1234 -o chaos-smoke.json

The JSON output records the injected-fault counters (what the plan threw
at the pipeline) alongside the recovery counters (what the loader did
about it), so a PR artifact shows both sides of every chaos run.
"""
import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

from repro.bus.broker import Broker
from repro.bus.client import EventPublisher
from repro.faults import ChaosBroker, FaultPlan
from repro.loader import load_from_bus, make_loader
from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobEdgeRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    TaskEdgeRow,
    TaskRow,
    WorkflowRow,
    WorkflowStateRow,
)
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.triana.appender import MemoryAppender
from repro.workloads import cybershake

QUEUE = "stampede"

ALL_ROWS = [
    WorkflowRow,
    WorkflowStateRow,
    TaskRow,
    TaskEdgeRow,
    JobRow,
    JobEdgeRow,
    JobInstanceRow,
    JobStateRow,
    InvocationRow,
    HostRow,
]

POISON_BODY = "ts=garbage this is not a BP line"


def _chaos_spec(seed: int) -> dict:
    """The acceptance scenario at smoke scale: drops + duplicates +
    reorders, one forced consumer disconnect, two archive lock failures."""
    return {
        "seed": seed,
        "bus": {
            "drop": 0.1,
            "duplicate": 0.1,
            "reorder": 0.1,
            "reorder_depth": 4,
            "disconnect_after": [40],
        },
        "archive": {"fail_transactions": [2, 5]},
    }


def _events_for(n_ruptures: int, seed: int = 0):
    sink = MemoryAppender()
    catalog = SiteCatalog(
        [Site("pool", slots=64, mean_queue_delay=2.0, hosts_per_site=16)]
    )
    run_pegasus_workflow(
        cybershake(n_ruptures=n_ruptures),
        sink,
        catalog=catalog,
        planner_config=PlannerConfig(cluster_size=8),
        seed=seed,
    )
    return list(sink.events)


def _dump(archive) -> dict:
    """Every row of every Fig. 3 table, surrogate keys included."""
    return {
        row_type.__name__: sorted(
            dataclasses.astuple(r) for r in archive.query(row_type).all()
        )
        for row_type in ALL_ROWS
    }


def _publish(broker, events, poison_every: int = 0) -> int:
    """Bind the loader queue, publish the stream, optionally mixing in
    poison payloads every ``poison_every`` events.

    Poison messages are stamped under their own publisher id so chaos
    duplicates of them dedupe like any other delivery — the DLQ must end
    up with exactly one entry per distinct poison event.
    """
    broker.declare_queue(QUEUE, durable=True)
    broker.bind_queue(QUEUE, "stampede.#")
    publisher = EventPublisher(broker)
    poisoned = 0
    for i, event in enumerate(events):
        if poison_every and i and i % poison_every == 0:
            poisoned += 1
            broker.publish(
                "stampede.inv.end",
                POISON_BODY,
                headers={"x-publisher": "poison-pub", "x-seq": poisoned},
            )
        publisher.publish(event)
    return poisoned


def _recovery_stats(stats) -> dict:
    return {
        "events_processed": stats.events_processed,
        "rows_inserted": stats.rows_inserted,
        "flushes": stats.flushes,
        "retries": stats.retries,
        "redelivered_events": stats.redelivered_events,
        "duplicates_skipped": stats.duplicates_skipped,
        "reconnects": stats.reconnects,
        "dlq_events": stats.dlq_events,
        "spilled_events": stats.spilled_events,
        "spill_drains": stats.spill_drains,
        "archive_outages": stats.archive_outages,
    }


def _baseline_run(events, batch_size: int):
    broker = Broker()
    _publish(broker, events)
    loader = make_loader(batch_size=batch_size)
    start = time.perf_counter()
    load_from_bus(broker, queue_name=QUEUE, durable=True, loader=loader)
    return loader, time.perf_counter() - start


def _chaos_run(events, seed: int, batch_size: int, poison_every: int):
    plan = FaultPlan.from_dict(_chaos_spec(seed))
    broker = ChaosBroker(plan)
    poisoned = _publish(broker, events, poison_every=poison_every)
    loader = make_loader(batch_size=batch_size)
    loader.archive.db = plan.wrap_database(loader.archive.db)
    start = time.perf_counter()
    load_from_bus(
        broker, queue_name=QUEUE, durable=True, loader=loader, dead_letter=True
    )
    return loader, plan, poisoned, time.perf_counter() - start


def smoke(
    n_ruptures: int = 5,
    seed: int = 1234,
    batch_size: int = 100,
    poison_every: int = 150,
) -> dict:
    events = _events_for(n_ruptures)
    clean_loader, clean_wall = _baseline_run(events, batch_size)
    loader, plan, poisoned, chaos_wall = _chaos_run(
        events, seed, batch_size, poison_every
    )
    baseline_match = _dump(loader.archive) == _dump(clean_loader.archive)
    return {
        "scale": {"n_ruptures": n_ruptures, "events": len(events)},
        "seed": seed,
        "batch_size": batch_size,
        "poison_published": poisoned,
        "injected": plan.stats.to_dict(),
        "recovery": _recovery_stats(loader.stats),
        "baseline": {
            "wall_seconds": clean_wall,
            "rows_inserted": clean_loader.stats.rows_inserted,
        },
        "chaos_wall_seconds": chaos_wall,
        "baseline_match": baseline_match,
        "poison_all_quarantined": loader.stats.dlq_events == poisoned,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos resilience smoke benchmark (JSON output)."
    )
    parser.add_argument("--scale", type=int, default=5, metavar="N_RUPTURES")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("-b", "--batch-size", type=int, default=100)
    parser.add_argument(
        "--poison-every",
        type=int,
        default=150,
        help="inject a poison payload every N events (0 disables)",
    )
    parser.add_argument("-o", "--output", metavar="PATH", help="write JSON here")
    args = parser.parse_args(argv)

    results = smoke(
        n_ruptures=args.scale,
        seed=args.seed,
        batch_size=args.batch_size,
        poison_every=args.poison_every,
    )
    payload = json.dumps(results, indent=2)
    if args.output:
        Path(args.output).write_text(payload + "\n", encoding="utf-8")
    print(payload)

    # the smoke gates: chaos must actually have happened, and the
    # resilience layer must have erased every trace of it from the data
    if results["injected"]["total_injected"] == 0:
        print("FAIL: the fault plan injected nothing", file=sys.stderr)
        return 1
    if not results["baseline_match"]:
        print(
            "FAIL: chaos archive diverged from the fault-free baseline",
            file=sys.stderr,
        )
        return 1
    if not results["poison_all_quarantined"]:
        print(
            f"FAIL: {results['poison_published']} poison event(s) published "
            f"but {results['recovery']['dlq_events']} quarantined",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
