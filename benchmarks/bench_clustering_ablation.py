"""Clustering ablation (the planner design choice §VII motivates:
"if a user notices that there are long scheduling delays, they may choose
to restructure their workflows so that each job does a larger unit of
work").

Sweeps cluster_size over a queue-delay-dominated site and measures: jobs
submitted, total queue time paid, events emitted, and makespan.  Expected
shape: clustering cuts per-job queue overhead and event volume, at the
cost of reduced parallelism at large cluster sizes.
"""
import pytest

from repro.loader import load_events
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender
from repro.workloads import cybershake

RESULTS = {}


def _run(cluster_size: int):
    catalog = SiteCatalog(
        [Site("queueing", slots=16, mean_queue_delay=20.0, hosts_per_site=8)]
    )
    sink = MemoryAppender()
    run = run_pegasus_workflow(
        cybershake(n_ruptures=40),
        sink,
        catalog=catalog,
        planner_config=PlannerConfig(cluster_size=cluster_size),
        seed=1,
    )
    return sink, run


@pytest.mark.parametrize("cluster_size", [1, 4, 16])
def test_clustering_ablation(benchmark, cluster_size):
    sink, run = _run(cluster_size)

    loader = benchmark(lambda: load_events(sink.events, batch_size=500))
    q = StampedeQuery(loader.archive)
    wf = q.workflows()[0]
    details = q.job_details(wf.wf_id)
    total_queue = sum(d.queue_time or 0.0 for d in details)
    RESULTS[cluster_size] = {
        "jobs": len(details),
        "events": len(sink.events),
        "queue": total_queue,
        "makespan": run.report.wall_time,
    }
    print(
        f"\ncluster={cluster_size}: {len(details)} jobs, "
        f"{len(sink.events)} events, total queue {total_queue:.0f}s, "
        f"makespan {run.report.wall_time:.0f}s"
    )
    if len(RESULTS) == 3:
        # more clustering -> fewer jobs, fewer events, less queue time paid
        assert RESULTS[1]["jobs"] > RESULTS[4]["jobs"] > RESULTS[16]["jobs"]
        assert RESULTS[1]["events"] > RESULTS[16]["events"]
        assert RESULTS[1]["queue"] > RESULTS[16]["queue"]


def test_normalizer_throughput(benchmark):
    """The raw-log path (jobstate + kickstart -> BP events) keeps up."""
    from repro.pegasus import (
        DAGManRun,
        Planner,
        PlannerConfig,
        RawLogRecorder,
        normalize_run,
    )

    catalog = SiteCatalog(
        [Site("pool", slots=32, mean_queue_delay=1.0, hosts_per_site=8)]
    )
    planner = Planner(catalog, PlannerConfig(cluster_size=4))
    aw = cybershake(n_ruptures=60)
    ew = planner.plan(aw)
    recorder = RawLogRecorder()
    sink = MemoryAppender()
    run = DAGManRun(aw, ew, sink, catalog=catalog, seed=2,
                    raw_recorder=recorder)
    run.run()

    events = benchmark(
        normalize_run, aw, ew, run.xwf_id, recorder.jobstate,
        recorder.kickstart,
    )
    rate = len(events) / benchmark.stats.stats.mean
    print(f"\nnormalizer: {len(events)} events at {rate:,.0f} events/s")
    assert rate > 5_000
