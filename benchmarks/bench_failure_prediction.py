"""Workflow-level failure prediction quality (refs [22], [37]).

"Workflow-level analysis aims to predict workflow failures from basic
aggregations on high-level statistics."  This bench generates a corpus of
runs over sites of varying health, scores each run from its PARTIAL event
stream (the first 60% of events — mid-run, when prediction is useful),
and checks that the score separates runs that go on to fail from runs
that finish clean.
"""
import numpy as np
import pytest

from repro.core.prediction import failure_score, failure_signals
from repro.loader import load_events
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender
from repro.workloads import fan


def _run_and_score(failure_rate: float, seed: int):
    catalog = SiteCatalog(
        [Site("pool", slots=8, mean_queue_delay=1.0,
              failure_rate=failure_rate, hosts_per_site=4)]
    )
    sink = MemoryAppender()
    run = run_pegasus_workflow(
        fan(width=16), sink, catalog=catalog,
        planner_config=PlannerConfig(max_retries=1, add_create_dir=False,
                                     add_stage_in=False, add_stage_out=False),
        seed=seed,
    )
    # mid-run view: first 60% of the event stream
    events = list(sink.events)
    partial = events[: int(len(events) * 0.6)]
    loader = load_events(partial, strict=False)
    q = StampedeQuery(loader.archive)
    wf = q.workflows()[0]
    score = failure_score(failure_signals(q, wf.wf_id))
    return score, run.report.ok


def test_failure_prediction_separates_outcomes(benchmark):
    def evaluate():
        clean_scores, failing_scores = [], []
        for seed in range(10):
            score, ok = _run_and_score(failure_rate=0.0, seed=seed)
            clean_scores.append(score)
        for seed in range(10):
            score, ok = _run_and_score(failure_rate=0.45, seed=100 + seed)
            if ok:
                continue  # retries saved it: not a failing run
            failing_scores.append(score)
        return clean_scores, failing_scores

    clean, failing = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    assert failing, "no failing runs generated; raise the failure rate"
    clean_mean = float(np.mean(clean))
    failing_mean = float(np.mean(failing))
    print(
        f"\nmid-run failure scores: clean {clean_mean:.3f} "
        f"vs failing {failing_mean:.3f} "
        f"({len(clean)} clean / {len(failing)} failing runs)"
    )
    # separation: every clean run scores below every failing run's mean
    assert failing_mean > clean_mean * 3
    assert max(clean) < failing_mean
