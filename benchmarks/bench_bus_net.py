"""Cross-process bus throughput: publisher proc → TCP broker → loader proc.

The in-process bus benches (``bench_bus_throughput``) measure the broker
data structures; this one measures the *deployment shape* the paper
actually describes — monitoring events crossing process boundaries on
their way to the archive.  It stands up a :class:`BrokerServer` in this
process, then drives it with two real subprocesses:

* ``stampede-bus publish`` replaying a CyberShake BP log, and
* ``nl-load --bus`` consuming into a sqlite archive,

and reports end-to-end events/second from first publish to the last
ack.  Runs standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_bus_net.py -o BENCH_bus.json

``--min-eps`` (or env ``STAMPEDE_BUS_MIN_EPS``) turns it into a CI
gate: exit 1 when end-to-end throughput lands under the floor.
"""
import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.bus.broker import Broker  # noqa: E402
from repro.bus.net import BrokerServer  # noqa: E402
from repro.netlogger.stream import write_events  # noqa: E402
from repro.pegasus import (  # noqa: E402
    PlannerConfig,
    Site,
    SiteCatalog,
    run_pegasus_workflow,
)
from repro.triana.appender import MemoryAppender  # noqa: E402
from repro.workloads import cybershake  # noqa: E402

QUEUE = "bench"


def _events(n_ruptures: int, seed: int = 7):
    sink = MemoryAppender()
    run_pegasus_workflow(
        cybershake(n_ruptures=n_ruptures),
        sink,
        catalog=SiteCatalog(
            [Site("pool", slots=64, mean_queue_delay=2.0, hosts_per_site=16)]
        ),
        planner_config=PlannerConfig(cluster_size=8),
        seed=seed,
    )
    return list(sink.events)


def _subenv():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def run_bench(n_ruptures: int, idle_exit: float = 2.0):
    events = _events(n_ruptures)
    results = {"events": len(events), "n_ruptures": n_ruptures}
    with tempfile.TemporaryDirectory(prefix="bench-bus-") as tmp:
        bp = Path(tmp) / "events.bp"
        write_events(bp, events)
        db = Path(tmp) / "bench.db"
        broker = Broker()
        with BrokerServer(broker) as server:
            loader = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.loader.nl_load",
                    "--bus", server.url,
                    "--queue", QUEUE,
                    "--idle-exit", str(idle_exit),
                    "stampede_loader", f"connString=sqlite:///{db}",
                ],
                env=_subenv(),
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            try:
                # the loader's durable queue must exist before publishing
                deadline = time.monotonic() + 30
                while QUEUE not in broker.queue_names():
                    if time.monotonic() > deadline:
                        raise RuntimeError("loader never subscribed")
                    time.sleep(0.02)
                queue = broker.queue(QUEUE)

                start = time.monotonic()
                publish = subprocess.run(
                    [
                        sys.executable, "-m", "repro.bus.cli",
                        "publish", str(bp), "--bus", server.url,
                    ],
                    env=_subenv(),
                    capture_output=True,
                    text=True,
                    timeout=600,
                )
                if publish.returncode != 0:
                    raise RuntimeError(f"publish failed: {publish.stdout}"
                                       f"{publish.stderr}")
                publish_elapsed = time.monotonic() - start
                # end-to-end: until the last delivery is acked (i.e. the
                # batch holding it committed in the loader's archive)
                deadline = time.monotonic() + 600
                while queue.stats.acked < len(events):
                    if time.monotonic() > deadline:
                        raise RuntimeError(
                            f"drain stalled: {queue.stats.acked}/{len(events)}"
                        )
                    time.sleep(0.02)
                ingest_elapsed = time.monotonic() - start
                out, _ = loader.communicate(timeout=idle_exit + 60)
                if loader.returncode != 0:
                    raise RuntimeError(f"loader failed: {out}")
            finally:
                if loader.poll() is None:
                    loader.kill()
        results["publish_s"] = round(publish_elapsed, 4)
        results["publish_eps"] = round(len(events) / publish_elapsed, 1)
        results["ingest_s"] = round(ingest_elapsed, 4)
        results["ingest_eps"] = round(len(events) / ingest_elapsed, 1)
        results["server_publishes"] = server.publishes
        results["server_connections"] = server.connections_total
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="two-process bus loopback benchmark"
    )
    parser.add_argument(
        "--ruptures", type=int, default=100,
        help="CyberShake size (events scale ~56x this; default 100)",
    )
    parser.add_argument("-o", "--out", default=None, help="write JSON here")
    parser.add_argument(
        "--min-eps", type=float,
        default=float(os.environ.get("STAMPEDE_BUS_MIN_EPS", 0)),
        help="fail (exit 1) if end-to-end events/s lands below this floor",
    )
    args = parser.parse_args(argv)

    results = run_bench(args.ruptures)
    results["python"] = sys.version.split()[0]
    results["min_eps"] = args.min_eps
    print(
        f"bus-net: {results['events']} events | "
        f"publish {results['publish_eps']:,.0f} ev/s | "
        f"end-to-end ingest {results['ingest_eps']:,.0f} ev/s "
        f"({results['ingest_s']:.2f}s, two processes via TCP loopback)"
    )
    if args.out:
        Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.min_eps and results["ingest_eps"] < args.min_eps:
        print(
            f"FAIL: ingest {results['ingest_eps']:,.0f} ev/s "
            f"< floor {args.min_eps:,.0f} ev/s"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
