"""Table I: summary output of stampede-statistics for the DART workflow.

Paper values: Tasks 367/367 succeeded, Jobs 367/367, Sub WF 20/20, zero
failures/retries; workflow wall time 661 s; cumulative job wall time
40 224 s.  The counts reproduce exactly; the wall times land in the same
band (the substrate is a simulator, not the Cardiff cloud).
"""
import pytest

from repro.core.reports import render_summary
from repro.core.statistics import workflow_statistics

PAPER_WALL_TIME = 661.0
PAPER_CUMULATIVE = 40224.0


def test_table1_summary(benchmark, dart_archive):
    archive, query, root, result = dart_archive

    stats = benchmark(workflow_statistics, query, wf_id=root.wf_id)

    counts = stats.counts
    # exact structural reproduction of Table I
    assert counts.tasks_total == 367
    assert counts.tasks_succeeded == 367
    assert counts.tasks_failed == 0
    assert counts.tasks_incomplete == 0
    assert counts.jobs_total == 367
    assert counts.jobs_succeeded == 367
    assert counts.subwf_total == 20
    assert counts.subwf_succeeded == 20
    assert counts.jobs_retries == 0

    # wall-time shape: same order of magnitude, same concurrency ratio
    assert stats.wall_time == pytest.approx(PAPER_WALL_TIME, rel=0.5)
    assert stats.cumulative_job_wall_time == pytest.approx(
        PAPER_CUMULATIVE, rel=0.25
    )
    ratio = stats.cumulative_job_wall_time / stats.wall_time
    paper_ratio = PAPER_CUMULATIVE / PAPER_WALL_TIME  # ~60.9
    assert ratio == pytest.approx(paper_ratio, rel=0.5)

    print("\n--- Table I (measured) ---")
    print(render_summary(stats))
    print(f"\npaper: wall 661 s, cumulative 40224 s (ratio 60.9)")
    print(
        f"measured: wall {stats.wall_time:.0f} s, cumulative "
        f"{stats.cumulative_job_wall_time:.0f} s (ratio {ratio:.1f})"
    )
