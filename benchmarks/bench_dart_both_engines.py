"""The full 306-command DART experiment on BOTH engines, through one
monitoring pipeline — the end-to-end cost of the paper's architecture and
the cross-engine comparison of the user experience (§V-A).
"""
import pytest

from repro.dart.pegasus_variant import run_dart_pegasus
from repro.dart.workflow import run_dart_experiment
from repro.loader import load_events
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender

SUMMARIES = {}


@pytest.mark.parametrize("engine", ["triana", "pegasus"])
def test_dart_full_run_both_engines(benchmark, engine):
    """benchmark = engine execution + event emission + loading + querying."""

    def pipeline():
        sink = MemoryAppender()
        if engine == "triana":
            res = run_dart_experiment(sink, seed=0)
            xwf = res.root_xwf_id
            wall = res.wall_time
        else:
            res = run_dart_pegasus(sink, seed=0)
            xwf = res.xwf_id
            wall = res.wall_time
        loader = load_events(sink.events, batch_size=1000)
        q = StampedeQuery(loader.archive)
        root = q.workflow_by_uuid(xwf)
        counts = q.summary_counts(root.wf_id)
        cumulative = q.cumulative_job_wall_time(root.wf_id)
        return counts, wall, cumulative, len(sink.events)

    counts, wall, cumulative, n_events = benchmark.pedantic(
        pipeline, rounds=3, iterations=1
    )
    # Table I accounting identical across engines
    assert counts.tasks_total == 367
    assert counts.tasks_succeeded == 367
    assert counts.subwf_total == 20
    SUMMARIES[engine] = (wall, cumulative, n_events)
    print(
        f"\n{engine}: wall {wall:.0f}s, cumulative {cumulative:.0f}s, "
        f"{n_events} events, pipeline {benchmark.stats.stats.mean:.2f}s real"
    )
    if len(SUMMARIES) == 2:
        t_wall, t_cum, _ = SUMMARIES["triana"]
        p_wall, p_cum, _ = SUMMARIES["pegasus"]
        print(
            f"cross-engine: wall {t_wall:.0f}s vs {p_wall:.0f}s, "
            f"cumulative {t_cum:.0f}s vs {p_cum:.0f}s (paper: 661 / 40224)"
        )
        # both engines land in the paper's band
        for wall_v, cum_v in ((t_wall, t_cum), (p_wall, p_cum)):
            assert 400 < wall_v < 1100
            assert 30_000 < cum_v < 50_000
