"""Message-bus performance (paper §IV-C).

The paper chose AMQP topic queues for "good performance" while "keeping
implementations simple"; these benches measure publish+consume throughput
and the routing-specificity ablation: subscribing to `#` vs a prefix vs
an exact event type.
"""
import pytest

from repro.bus.broker import Broker
from repro.bus.client import EventConsumer, EventPublisher
from repro.netlogger.events import NLEvent

N_EVENTS = 5_000


def _events():
    names = [
        "stampede.job_inst.main.start",
        "stampede.job_inst.main.end",
        "stampede.inv.end",
        "stampede.xwf.start",
    ]
    return [
        NLEvent(names[i % len(names)], float(i), {"job.id": f"j{i}",
                                                  "job_inst.id": 1})
        for i in range(N_EVENTS)
    ]


def test_publish_consume_throughput(benchmark):
    events = _events()

    def pump():
        broker = Broker()
        consumer = EventConsumer(broker, "stampede.#", queue_name="all")
        publisher = EventPublisher(broker)
        publisher.publish_all(events)
        return consumer.drain()

    received = benchmark(pump)
    assert len(received) == N_EVENTS
    rate = N_EVENTS / benchmark.stats.stats.mean
    print(f"\nbus: {rate:,.0f} events/s through one topic queue")


@pytest.mark.parametrize(
    "pattern,expected_fraction",
    [
        ("#", 1.0),
        ("stampede.job_inst.#", 0.5),
        ("stampede.inv.end", 0.25),
    ],
)
def test_routing_specificity_ablation(benchmark, pattern, expected_fraction):
    """Narrower subscriptions deliver fewer messages — the flexibility the
    paper highlights for 'gluing together analysis components'."""
    events = _events()

    def pump():
        broker = Broker()
        consumer = EventConsumer(broker, pattern, queue_name="q")
        EventPublisher(broker).publish_all(events)
        return consumer.drain()

    received = benchmark(pump)
    assert len(received) == int(N_EVENTS * expected_fraction)


def test_multi_consumer_fanout(benchmark):
    """Many consumers of the same stream without blocking the producer."""
    events = _events()

    def pump():
        broker = Broker()
        consumers = [
            EventConsumer(broker, "stampede.#", queue_name=f"c{i}")
            for i in range(5)
        ]
        EventPublisher(broker).publish_all(events)
        return [len(c.drain()) for c in consumers]

    counts = benchmark(pump)
    assert counts == [N_EVENTS] * 5
