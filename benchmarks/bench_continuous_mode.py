"""Continuous-mode (streaming) execution — the §VIII future-work
experiment, benchmarked.

Shape assertions: one job instance per task with MANY invocations (the
data model extension §V-B describes), early release via the local
condition, and loader throughput on multi-invocation streams comparable
to single-step streams.
"""
import pytest

from repro.dart.streaming import run_streaming_dart
from repro.loader import load_events
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender

NOTES = [220.0, 261.6, 329.6, 392.0, 440.0, 523.3]


def test_streaming_pipeline(benchmark):
    """Full continuous-mode pipeline: synth + SHS + engine + loading."""

    def pipeline():
        sink = MemoryAppender()
        res = run_streaming_dart(
            sink, notes=NOTES, frames_per_note=6, target_voiced_frames=30,
            seed=0,
        )
        loader = load_events(sink.events)
        return res, loader

    res, loader = benchmark(pipeline)
    assert res.report.ok
    q = StampedeQuery(loader.archive)
    wf = q.workflow_by_uuid(res.xwf_id)
    analysis = q.job_by_exec_id(wf.wf_id, "shs-analysis")
    (inst,) = q.job_instances_for_job(analysis.job_id)
    invocations = q.invocations_for_instance(inst.job_instance_id)
    # one instance, many invocations: the §V-B mapping
    assert len(invocations) > 10
    counts = q.summary_counts(wf.wf_id)
    assert counts.jobs_total == 3
    print(
        f"\nstreaming: {res.frames_streamed} frames, "
        f"{len(invocations)} invocations on one job instance, "
        f"{len(res.contour)} voiced frames tracked"
    )


def test_early_release_saves_work(benchmark):
    """The local condition releases the run before the stream drains."""

    def run_with_target(target):
        sink = MemoryAppender()
        res = run_streaming_dart(
            sink, notes=NOTES, frames_per_note=8, target_voiced_frames=target,
            seed=1,
        )
        return res

    res_small = benchmark.pedantic(
        lambda: run_with_target(6), rounds=3, iterations=1
    )
    res_full = run_with_target(10_000)  # never satisfied: full drain
    assert res_small.invocations < res_full.invocations
    assert res_full.frames_streamed == len(NOTES) * 8
    print(
        f"\nearly release: {res_small.invocations} invocations vs "
        f"{res_full.invocations} for the full drain"
    )
