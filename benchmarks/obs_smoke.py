"""Observability smoke gate: scrape a live nl-load and check its telemetry.

CI driver for the self-monitoring layer (repro.obs).  The script

1. generates a seeded CyberShake workload and writes it as a BP log;
2. runs ``nl-load`` on it as a *subprocess* with ``--metrics-port 0``
   (ephemeral port, resolved URL on stderr), ``--metrics-linger`` (the
   server stays scrapeable after the load) and ``--self-log``;
3. polls ``/metrics`` until ``stampede_obs_load_complete`` flips to 1,
   keeping the final scrape as the ``obs-smoke.txt`` artifact;
4. gates on the scrape: required metric names present, event/row/flush
   counters non-zero, flush-latency histogram consistent (sum bounded by
   the observed wall time, count == flushes) and the Prometheus content
   type correct;
5. gates on the BP self-log round trip: every emitted line must parse
   under the strict BP parser, load through ``nl_load`` into the
   ``obs_event`` table, and the archived counter values must match the
   scrape;
6. gates on the per-shard instruments in-process: a 2-shard
   ``ShardedLoader`` with ``bind_shards`` attached must expose
   ``stampede_shard_queue_depth`` / ``stampede_shard_flush_seconds``
   (and the per-shard counters) with ``shard`` labels and non-zero
   flush activity.

Exit status 0 only if every gate holds; details land in obs-smoke.json.

Usage::

    python benchmarks/obs_smoke.py --scale 40 -o obs-smoke.json
"""
import argparse
import json
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.netlogger.bp import parse_bp_line
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.triana.appender import MemoryAppender
from repro.workloads import cybershake

#: metric names the scrape must expose (histograms via their _sum sample)
REQUIRED_METRICS = [
    "stampede_loader_events_total",
    "stampede_loader_rows_inserted_total",
    "stampede_loader_flushes_total",
    "stampede_loader_flush_seconds_sum",
    "stampede_loader_flush_seconds_count",
    "stampede_loader_flush_latency_seconds",
    "stampede_archive_transaction_seconds_sum",
    "stampede_archive_transactions_total",
    "stampede_archive_rows_inserted_total",
    "stampede_loader_checkpoint_lag_seconds",
    "stampede_obs_load_complete",
]

#: counters that must be non-zero after loading a real workload
NONZERO_METRICS = [
    "stampede_loader_events_total",
    "stampede_loader_rows_inserted_total",
    "stampede_loader_flushes_total",
    "stampede_archive_transactions_total",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)$"
)


def write_workload(path: Path, n_ruptures: int, seed: int) -> int:
    """Simulate a seeded CyberShake run; write its BP log; return #events."""
    sink = MemoryAppender()
    catalog = SiteCatalog(
        [Site("pool", slots=64, mean_queue_delay=2.0, hosts_per_site=16)]
    )
    run_pegasus_workflow(
        cybershake(n_ruptures=n_ruptures),
        sink,
        catalog=catalog,
        planner_config=PlannerConfig(cluster_size=8),
        seed=seed,
    )
    with path.open("w", encoding="utf-8") as fh:
        for event in sink.events:
            fh.write(event.to_bp() + "\n")
    return len(sink.events)


def parse_metrics(text: str) -> dict:
    """Flatten an exposition into ``name`` / ``name{labels}`` -> float."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            continue
        key = m.group("name") + (m.group("labels") or "")
        value = m.group("value")
        out[key] = float("inf") if value == "+Inf" else float(value)
        # also index by bare name for presence checks (first sample wins)
        out.setdefault(m.group("name"), out[key])
    return out


def scrape(url: str, timeout: float = 5.0):
    """GET the exposition; returns (text, content_type)."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8"), resp.headers.get("Content-Type", "")


def run_smoke(scale: int, seed: int, workdir: Path) -> dict:
    bp_path = workdir / "workload.bp"
    db_path = workdir / "obs-smoke.db"
    selflog_path = workdir / "obs-selflog.bp"
    n_events = write_workload(bp_path, n_ruptures=scale, seed=seed)

    cmd = [
        sys.executable,
        "-m",
        "repro.loader.nl_load",
        str(bp_path),
        "stampede_loader",
        f"connString=sqlite:///{db_path}",
        "--metrics-port",
        "0",
        "--metrics-linger",
        "60",
        "--self-log",
        str(selflog_path),
    ]
    started = time.time()
    proc = subprocess.Popen(
        cmd,
        stderr=subprocess.PIPE,
        stdout=subprocess.DEVNULL,
        text=True,
    )
    failures = []
    result = {
        "workload_events": n_events,
        "scale": scale,
        "seed": seed,
        "failures": failures,
    }
    try:
        url = None
        assert proc.stderr is not None
        for line in proc.stderr:
            if line.startswith("metrics: "):
                url = line.split(" ", 1)[1].strip()
                break
        if url is None:
            failures.append("nl-load never announced a metrics URL")
            return result
        result["url"] = url

        # poll until the final state is visible (the load-complete gauge
        # flips only after the last flush), keeping the last scrape
        text = content_type = ""
        deadline = time.time() + 120
        while time.time() < deadline:
            try:
                text, content_type = scrape(url)
            except (urllib.error.URLError, OSError):
                time.sleep(0.1)
                continue
            if parse_metrics(text).get("stampede_obs_load_complete") == 1.0:
                break
            time.sleep(0.1)
        wall = time.time() - started
        result["wall_seconds"] = round(wall, 3)
        result["content_type"] = content_type
        (workdir / "obs-smoke.txt").write_text(text, encoding="utf-8")

        metrics = parse_metrics(text)
        if metrics.get("stampede_obs_load_complete") != 1.0:
            failures.append("stampede_obs_load_complete never reached 1")
        if content_type != PROMETHEUS_CONTENT_TYPE:
            failures.append(f"wrong content type: {content_type!r}")
        for name in REQUIRED_METRICS:
            if name not in metrics:
                failures.append(f"missing metric: {name}")
        for name in NONZERO_METRICS:
            if metrics.get(name, 0.0) <= 0.0:
                failures.append(f"expected {name} > 0, got {metrics.get(name)}")
        if metrics.get("stampede_loader_events_total") != float(n_events):
            failures.append(
                f"events_total {metrics.get('stampede_loader_events_total')} "
                f"!= workload size {n_events}"
            )
        flush_sum = metrics.get("stampede_loader_flush_seconds_sum", -1.0)
        if not 0.0 <= flush_sum <= wall:
            failures.append(
                f"flush histogram sum {flush_sum} outside [0, wall={wall:.3f}]"
            )
        # a resolved-only flush observes latency without counting as a
        # batch flush, so the histogram may run ahead — never behind
        if metrics.get("stampede_loader_flush_seconds_count", 0.0) < metrics.get(
            "stampede_loader_flushes_total", 0.0
        ):
            failures.append("flush histogram count < flushes counter")
        result["metrics_sampled"] = {
            name: metrics.get(name) for name in REQUIRED_METRICS if name in metrics
        }

        # wait for the self-log to land (written right after the gauge
        # flips), then check the BP round trip in-process
        for _ in range(100):
            if selflog_path.exists() and selflog_path.stat().st_size > 0:
                break
            time.sleep(0.1)
        failures.extend(check_roundtrip(selflog_path, metrics, result))
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            proc.kill()
    return result


def check_roundtrip(selflog_path: Path, metrics: dict, result: dict) -> list:
    """The self-log must strict-parse, load, and agree with the scrape."""
    from repro.loader.nl_load import load_file, make_loader
    from repro.model.entities import ObsEventRow

    failures = []
    if not selflog_path.exists():
        return ["self-log file was never written"]
    lines = [
        line
        for line in selflog_path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    result["selflog_events"] = len(lines)
    if not lines:
        return ["self-log is empty"]
    for line in lines:
        try:
            parse_bp_line(line, strict=True)
        except ValueError as exc:
            failures.append(f"self-log line failed strict BP parse: {exc}")
            break
    loader = make_loader("sqlite:///:memory:")
    load_file(str(selflog_path), loader)
    archived = loader.archive.count(ObsEventRow)
    if archived != len(lines):
        failures.append(f"archived {archived} obs events, expected {len(lines)}")
    # counter values written to the archive must match the scrape
    rows = loader.archive.query(ObsEventRow).eq("event", "stampede.obs.counter").all()
    by_name = {}
    for row in rows:
        labels = json.loads(row.payload) if row.payload else {}
        key = row.name + _labels_suffix(labels)
        by_name[key] = row.value
    for name in ("stampede_loader_events_total", "stampede_loader_flushes_total"):
        if name in by_name and name in metrics:
            if by_name[name] != metrics[name]:
                failures.append(
                    f"self-logged {name}={by_name[name]} disagrees with "
                    f"scrape {metrics[name]}"
                )
        elif name not in by_name:
            failures.append(f"self-log has no counter event for {name}")
    return failures


def check_shard_metrics(scale: int, seed: int) -> dict:
    """In-process gate for the per-shard instruments (``bind_shards``).

    Loads a small workload through a 2-shard memory ``ShardedLoader``
    with the shard binder attached, then asserts the per-shard series
    exist with ``shard`` labels and carry non-zero flush activity.
    """
    from repro.archive.shard import ShardSet, ShardedLoader, partition_events
    from repro.obs.instrument import bind_shards
    from repro.obs.metrics import MetricsRegistry

    catalog = SiteCatalog(
        [Site("pool", slots=64, mean_queue_delay=2.0, hosts_per_site=16)]
    )
    # root uuids are seed-derived; add roots until both shards get events
    events = []
    for offset in range(8):
        sink = MemoryAppender()
        run_pegasus_workflow(
            cybershake(n_ruptures=scale),
            sink,
            catalog=catalog,
            planner_config=PlannerConfig(cluster_size=8),
            seed=seed + offset,
        )
        events.extend(sink.events)
        if all(partition_events(events, 2)):
            break

    failures = []
    registry = MetricsRegistry()
    shard_set = ShardSet.create(None, 2, backend="memory")
    sharded = ShardedLoader(shard_set, batch_size=200)
    bind_shards(registry, sharded)
    sharded.process_all(events)
    snapshot = registry.snapshot()
    sharded.close()
    final = registry.snapshot()
    shard_set.close()

    if snapshot.get("stampede_shard_count") != 2.0:
        failures.append(
            f"stampede_shard_count {snapshot.get('stampede_shard_count')} != 2"
        )
    for shard in ("0", "1"):
        label = '{shard="%s"}' % shard
        for name in (
            "stampede_shard_queue_depth",
            "stampede_shard_routed_total",
            "stampede_shard_events_total",
            "stampede_shard_flush_seconds_sum",
            "stampede_shard_flush_seconds_count",
        ):
            if name + label not in snapshot:
                failures.append(f"missing per-shard series {name}{label}")
        if final.get("stampede_shard_flushes_total" + label, 0.0) <= 0.0:
            failures.append(f"shard {shard} never flushed a batch")
        if final.get("stampede_shard_flush_seconds_count" + label, 0.0) <= 0.0:
            failures.append(f"shard {shard} flush histogram never observed")
    routed = sum(
        final.get('stampede_shard_routed_total{shard="%s"}' % s, 0.0)
        for s in ("0", "1")
    )
    if routed != float(len(events)):
        failures.append(
            f"routed totals {routed:.0f} != workload size {len(events)}"
        )
    return {
        "workload_events": len(events),
        "shards": 2,
        "metrics_sampled": {
            k: v for k, v in final.items() if k.startswith("stampede_shard")
        },
        "failures": failures,
    }


def _labels_suffix(payload: dict) -> str:
    labels = sorted(
        (k[len("label."):], v) for k, v in payload.items() if k.startswith("label.")
    )
    if not labels:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=40, help="CyberShake ruptures")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("-o", "--output", default="obs-smoke.json")
    parser.add_argument(
        "--workdir",
        default=None,
        help="directory for intermediate artifacts (default: a temp dir); "
        "the final scrape is kept here as obs-smoke.txt",
    )
    args = parser.parse_args(argv)

    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        result = run_smoke(args.scale, args.seed, workdir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            result = run_smoke(args.scale, args.seed, Path(tmp))
            scrape_file = Path(tmp) / "obs-smoke.txt"
            if scrape_file.exists():  # keep the artifact out of the temp dir
                Path("obs-smoke.txt").write_text(
                    scrape_file.read_text(encoding="utf-8"), encoding="utf-8"
                )
    shard_result = check_shard_metrics(max(5, args.scale // 4), args.seed)
    result["shard_phase"] = shard_result
    result["failures"].extend(
        f"shard phase: {f}" for f in shard_result.pop("failures")
    )
    result["ok"] = not result["failures"]
    Path(args.output).write_text(json.dumps(result, indent=2), encoding="utf-8")
    print(json.dumps(result, indent=2))
    if result["failures"]:
        print(f"obs smoke FAILED: {len(result['failures'])} gate(s)", file=sys.stderr)
        return 1
    print("obs smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
