"""Shared benchmark fixtures: one full DART run + loaded archive per session."""
import pytest

from repro.dart.workflow import run_dart_experiment
from repro.loader import load_events
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender


@pytest.fixture(scope="session")
def dart_events():
    """The full 306-command / 20-bundle / 8-node DART event stream."""
    sink = MemoryAppender()
    result = run_dart_experiment(sink, seed=0)
    return list(sink.events), result


@pytest.fixture(scope="session")
def dart_archive(dart_events):
    events, result = dart_events
    loader = load_events(events)
    query = StampedeQuery(loader.archive)
    root = query.workflow_by_uuid(result.root_xwf_id)
    return loader.archive, query, root, result
