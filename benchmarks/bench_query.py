"""Dashboard query latency vs archive growth (paper §IV: "Real-time
queries of both detailed and summarized status" over datasets "too
large to fit into memory").

The materialized rollups (``repro.core.rollup``) exist so the dashboard
summary is a handful of point reads instead of a full scan.  This bench
proves the property the design promises: **summary latency stays flat
while the archive grows 100×**.  It loads 1, 10, and 100 independent
workflow runs into one file-backed sqlite archive and measures, at each
scale, the latency of the summary for one fixed target workflow:

* ``rollup_ms``  — ``workflow_statistics`` through the rollup tables
  (the dashboard's uncached read path);
* ``scan_ms``    — the same statistics with ``prefer_rollup=False``
  (what every request would cost without rollups; measured with fewer
  iterations because it grows with the archive);
* ``cached_ms``  — ``DashboardData.workflow_payload`` through the
  commit-seq :class:`~repro.core.live.ReadCache` (what the 2nd..Nth
  concurrent viewer pays).

Gates (all tunable via flags / environment):

* ``--max-ms`` / ``$STAMPEDE_QUERY_MAX_MS`` — uncached rollup-path p95
  ceiling in milliseconds at **every** scale (default 5.0);
* ``--max-flatness`` — ratio of rollup p95 at ×100 over ×1 (default
  3.0: the reads are O(1), so anything beyond runner noise means the
  rollup path regressed into a scan);
* ``--baseline BENCH_query.json`` + ``--regression-threshold`` — as in
  ``bench_loader_scaling.py``: fails when a current p95 exceeds the
  committed one by more than 1/threshold (default 0.5 → a doubling).

Run as a CI smoke check::

    python benchmarks/bench_query.py --smoke --baseline BENCH_query.json \
        -o bench-query.json

The committed ``BENCH_query.json`` at the repo root is this
benchmark's full-scale output on the reference container.
"""
import argparse
import gc
import json
import os
import statistics as stats_mod
import sys
import tempfile
import time
from pathlib import Path

from repro.archive.store import StampedeArchive
from repro.core.dashboard import DashboardData
from repro.core.rollup import commit_seq, verify_rollups
from repro.core.statistics import workflow_statistics
from repro.loader.stampede_loader import StampedeLoader
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.query.api import StampedeQuery
from repro.triana.appender import MemoryAppender
from repro.workloads import cybershake

#: archive growth factors — the flatness claim is "×100 costs what ×1 costs"
SCALE_FACTORS = (1, 10, 100)


def _one_run(n_ruptures: int, seed: int):
    sink = MemoryAppender()
    catalog = SiteCatalog(
        [Site("pool", slots=64, mean_queue_delay=2.0, hosts_per_site=16)]
    )
    run_pegasus_workflow(
        cybershake(n_ruptures=n_ruptures),
        sink,
        catalog=catalog,
        planner_config=PlannerConfig(cluster_size=8),
        seed=seed,
    )
    return list(sink.events)


def _build_archive(path: Path, runs: int, n_ruptures: int):
    """Load ``runs`` independent workflow runs; returns (archive, target
    wf_id) where the target is the first-loaded root workflow — fixed
    across scales, so latency differences are pure archive-size effects."""
    archive = StampedeArchive.open(f"sqlite:///{path}")
    loader = StampedeLoader(archive, batch_size=2000)
    for seed in range(runs):
        loader.process_all(_one_run(n_ruptures, seed=seed))
    loader.flush()
    query = StampedeQuery(archive)
    target = min(w.wf_id for w in query.root_workflows())
    return archive, target


def _time_ms(fn, iterations: int):
    """min/mean/p50/p95 wall milliseconds over ``iterations`` calls."""
    samples = []
    gc.collect()
    gc.disable()
    try:
        for _ in range(iterations):
            start = time.perf_counter()
            fn()
            samples.append((time.perf_counter() - start) * 1000.0)
    finally:
        gc.enable()
    samples.sort()
    return {
        "min": round(samples[0], 4),
        "mean": round(stats_mod.fmean(samples), 4),
        "p50": round(samples[len(samples) // 2], 4),
        "p95": round(samples[min(len(samples) - 1, int(len(samples) * 0.95))], 4),
        "iterations": iterations,
    }


def _measure_scale(
    workdir: Path, factor: int, n_ruptures: int, iterations: int
) -> dict:
    archive, target = _build_archive(
        workdir / f"query-x{factor}.db", runs=factor, n_ruptures=n_ruptures
    )
    try:
        query = StampedeQuery(archive)
        mismatches = verify_rollups(archive)
        if mismatches:
            raise AssertionError(
                f"x{factor}: rollups diverge from scan before measuring: "
                + "; ".join(mismatches[:5])
            )

        rollup_ms = _time_ms(
            lambda: workflow_statistics(
                query, wf_id=target, include_jobs=False
            ),
            iterations,
        )
        # the scan path grows with the archive; a handful of iterations
        # is enough to show the gap without dominating bench wall time
        scan_ms = _time_ms(
            lambda: workflow_statistics(
                query, wf_id=target, include_jobs=False, prefer_rollup=False
            ),
            max(3, iterations // 20),
        )
        data = DashboardData(archive)
        data.workflow_payload(target)  # prime: the one computation
        cached_ms = _time_ms(lambda: data.workflow_payload(target), iterations)
        cache_stats = data.cache.stats()

        from repro.model.entities import WorkflowRow

        return {
            "workflows": archive.count(WorkflowRow),
            "db_bytes": (workdir / f"query-x{factor}.db").stat().st_size,
            "commit_seq": commit_seq(archive),
            "rollup_ms": rollup_ms,
            "scan_ms": scan_ms,
            "cached_ms": cached_ms,
            "cache": {"hits": cache_stats["hits"], "misses": cache_stats["misses"]},
        }
    finally:
        archive.close()


def run_bench(n_ruptures: int, iterations: int) -> dict:
    results = {
        "workload": {"n_ruptures": n_ruptures, "iterations": iterations},
        "scales": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        for factor in SCALE_FACTORS:
            results["scales"][f"x{factor}"] = _measure_scale(
                workdir, factor, n_ruptures, iterations
            )
    first = results["scales"][f"x{SCALE_FACTORS[0]}"]
    last = results["scales"][f"x{SCALE_FACTORS[-1]}"]
    results["flatness"] = {
        "rollup_p95_ratio": round(
            last["rollup_ms"]["p95"] / max(first["rollup_ms"]["p95"], 1e-9), 3
        ),
        "scan_p95_ratio": round(
            last["scan_ms"]["p95"] / max(first["scan_ms"]["p95"], 1e-9), 3
        ),
        "rollup_vs_scan_at_x100": round(
            last["scan_ms"]["p95"] / max(last["rollup_ms"]["p95"], 1e-9), 1
        ),
    }
    return results


def _check_gates(results: dict, args) -> list:
    failures = []
    for name, entry in results["scales"].items():
        p95 = entry["rollup_ms"]["p95"]
        if p95 > args.max_ms:
            failures.append(
                f"{name}: rollup summary p95 {p95:.3f} ms exceeds the "
                f"{args.max_ms:.1f} ms dashboard ceiling"
            )
    ratio = results["flatness"]["rollup_p95_ratio"]
    if ratio > args.max_flatness:
        failures.append(
            f"rollup p95 grew {ratio:.2f}x from x{SCALE_FACTORS[0]} to "
            f"x{SCALE_FACTORS[-1]} (flatness ceiling {args.max_flatness:.1f}x) "
            "— the summary path is scaling with the archive"
        )
    return failures


def _check_baseline(results: dict, baseline_path: str, threshold: float) -> list:
    """Latency analogue of bench_loader_scaling's regression gate: a
    current p95 beyond ``committed / threshold`` (default 2× with the
    0.5 default) is a regression.  Scales absent on either side are
    skipped so the comparison survives sweep changes."""
    committed = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    failures = []
    for name, entry in committed.get("scales", {}).items():
        current = results["scales"].get(name)
        if current is None:
            continue
        old = entry.get("rollup_ms", {}).get("p95")
        new = current.get("rollup_ms", {}).get("p95")
        if not old or not new:
            continue
        if new > old / threshold:
            failures.append(
                f"{name}: rollup p95 regressed to {new:.3f} ms > "
                f"{1 / threshold:.1f}x committed {old:.3f} ms"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Dashboard query-latency benchmark across archive growth."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced workload per run (CI-sized; same 1x/10x/100x sweep)",
    )
    parser.add_argument(
        "--ruptures",
        type=int,
        default=None,
        help="CyberShake ruptures per run (default 5, or 2 with --smoke)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="timed iterations per path (default 200, or 50 with --smoke)",
    )
    parser.add_argument("-o", "--output", metavar="PATH", help="write JSON here")
    parser.add_argument(
        "--max-ms",
        type=float,
        default=float(os.environ.get("STAMPEDE_QUERY_MAX_MS", 5.0)),
        help="rollup summary p95 ceiling in ms at every scale "
        "(default 5.0, or $STAMPEDE_QUERY_MAX_MS)",
    )
    parser.add_argument(
        "--max-flatness",
        type=float,
        default=float(os.environ.get("STAMPEDE_QUERY_MAX_FLATNESS", 3.0)),
        help="ceiling on p95(x100)/p95(x1) for the rollup path "
        "(default 3.0, or $STAMPEDE_QUERY_MAX_FLATNESS)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed BENCH_query.json to compare against",
    )
    parser.add_argument(
        "--regression-threshold",
        type=float,
        default=float(os.environ.get("STAMPEDE_QUERY_REGRESSION_THRESHOLD", 0.5)),
        help="baseline comparison fails when current p95 exceeds "
        "committed/threshold (default 0.5: a doubling)",
    )
    args = parser.parse_args(argv)
    n_ruptures = args.ruptures or (2 if args.smoke else 5)
    iterations = args.iterations or (50 if args.smoke else 200)

    results = run_bench(n_ruptures=n_ruptures, iterations=iterations)
    results["gates"] = {
        "max_ms": args.max_ms,
        "max_flatness": args.max_flatness,
    }
    payload = json.dumps(results, indent=2)
    if args.output:
        Path(args.output).write_text(payload + "\n", encoding="utf-8")
    print(payload)

    failures = _check_gates(results, args)
    if args.baseline and os.path.exists(args.baseline):
        failures += _check_baseline(
            results, args.baseline, args.regression_threshold
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
