"""Fig. 7: progress to completion of the 20 DART bundles.

Paper shape: 20 monotone cumulative-runtime curves starting shortly after
t=0 (bundles dispatched together), climbing for the run's duration, and
finishing staggered near the workflow wall time, with the small trailing
bundle finishing far earlier.
"""
import numpy as np

from repro.core.timeseries import bundle_progress


def test_fig7_bundle_progress(benchmark, dart_archive):
    archive, query, root, result = dart_archive

    series = benchmark(bundle_progress, query, root.wf_id)

    assert len(series) == 20
    finishes = []
    for s in series:
        values = [p[1] for p in s.points]
        assert values == sorted(values)  # cumulative curves are monotone
        assert s.points[0][0] > 0  # nothing completes before the run starts
        finishes.append(s.completion_time)
    finishes.sort()

    # every bundle completes within the workflow's wall time
    assert finishes[-1] <= result.wall_time + 1.0
    # the last finisher defines the makespan (within dispatch latency)
    assert finishes[-1] >= result.wall_time - 10.0
    # staggered completion: a substantial spread between first and last
    assert finishes[-1] - finishes[0] > 30.0
    # the 2-command trailing bundle finishes far earlier than the median
    assert finishes[0] < np.median(finishes) * 0.7

    # full bundles all accumulate roughly 16 execs' worth of runtime
    full = sorted(s.final_cumulative_runtime for s in series)[1:]
    assert max(full) / min(full) < 1.6

    print("\n--- Fig. 7 (measured) ---")
    print(f"bundles: {len(series)}")
    print(f"first completion: {finishes[0]:.0f}s, last: {finishes[-1]:.0f}s")
    print(f"workflow wall time: {result.wall_time:.0f}s (paper: 661s)")
    for s in sorted(series, key=lambda s: s.label)[:5]:
        print(
            f"  {s.label}: {len(s.points)} completions, "
            f"cumulative {s.final_cumulative_runtime:.0f}s, "
            f"done at {s.completion_time:.0f}s"
        )
