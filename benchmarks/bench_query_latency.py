"""Real-time query latency (paper §IV: "Real-time queries of both
detailed and summarized status", over datasets "too large to fit into
memory").

Queries against the loaded DART archive must answer fast enough for an
interactive dashboard: summary statistics, job details, per-bundle
drill-down and failure scans.
"""
from repro.core.analyzer import analyze
from repro.core.statistics import workflow_statistics


def test_summary_statistics_latency(benchmark, dart_archive):
    archive, query, root, result = dart_archive
    stats = benchmark(workflow_statistics, query, wf_id=root.wf_id)
    assert stats.counts.tasks_total == 367
    print(f"\nfull summary over 21 workflows: "
          f"{benchmark.stats.stats.mean * 1000:.1f} ms")


def test_job_details_latency(benchmark, dart_archive):
    archive, query, root, result = dart_archive
    sub = query.sub_workflows(root.wf_id)[0]
    details = benchmark(query.job_details, sub.wf_id)
    assert len(details) == 19


def test_drilldown_latency(benchmark, dart_archive):
    """The analyzer's full hierarchical drill-down across 20 bundles."""
    archive, query, root, result = dart_archive
    analysis = benchmark(
        analyze, query, root.wf_id, None, True, True
    )
    assert analysis.ok
    assert len(analysis.sub_analyses) == 20


def test_workflow_status_poll_latency(benchmark, dart_archive):
    """The dashboard's tightest loop: poll every workflow's status."""
    archive, query, root, result = dart_archive

    def poll():
        return [query.workflow_status(w.wf_id) for w in query.workflows()]

    statuses = benchmark(poll)
    assert all(s == 0 for s in statuses)
    print(f"\nstatus poll of {len(statuses)} workflows: "
          f"{benchmark.stats.stats.mean * 1000:.2f} ms")
