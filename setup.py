"""Legacy setup shim: lets `pip install -e . --no-use-pep517` work in offline
environments where the `wheel` package (needed for PEP 660 editable builds)
is unavailable.  All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
